"""Write-ahead log: the durability backbone of the LSM engine.

Every mutation (put or delete) is appended here *before* it is applied to
the in-memory memtable, so an acknowledged write survives a crash: on the
next open the log is replayed into a fresh memtable.  The log is the only
file the engine ever appends to in place; SSTables are immutable once
written.

Record framing (little-endian, see ``docs/lsm.md``)::

    +----------+----------+--------------------------------------+
    | crc32 u32| len  u32 | payload (len bytes)                  |
    +----------+----------+--------------------------------------+
    payload = op u8 | key_len u32 | key bytes | value bytes

``op`` is 0 for a put and 1 for a delete (deletes carry no value bytes).
The CRC covers the payload only, so a torn header, a torn payload, and a
bit-flipped payload are all detected the same way: the record fails its
frame check and replay stops there.

Torn-tail recovery
------------------
A crash mid-append leaves a prefix of a record at the end of the file.
:func:`WriteAheadLog.replay` reads records until the first frame that is
incomplete or fails its CRC, returns every record before it plus the byte
offset of the valid prefix, and flags whether anything was discarded.  The
store truncates the file back to that offset on open, which is exactly the
set of writes that were ever acknowledged (an append returns only after
the full frame is written).

Group commit
------------
:class:`CommitPipeline` amortizes the per-append ``write``/``fsync`` cost
across concurrent writers, LevelDB/RocksDB-style: writers enqueue their
framed record and block; the first writer to find no leader *becomes* the
leader (no dedicated thread), drains the queue up to the batch bounds,
performs **one** batched write and **one** sync for every frame, runs each
waiter's apply callback in enqueue order, and wakes everyone.  N
concurrent ``fsync=True`` writers pay ~one disk sync per batch instead of
one each.

Sync-failure poisoning
----------------------
A failed ``fsync`` leaves the on-disk state unknowable: the frame may
already be durable even though the caller observes an error, and on Linux
a *retried* fsync can falsely succeed because the kernel clears the
dirty-page error when it is first reported ("fsyncgate").  The log
therefore never retries a sync: after any write/sync error the segment is
**poisoned** -- the un-acknowledged suffix is truncated away best-effort
so recovery cannot resurrect a write whose caller saw a failure, and
every subsequent append raises :class:`~repro.errors.WalPoisonedError`.
Under group commit this is load-bearing: one fsync covers many writers,
so a swallowed sync error would corrupt many acknowledgements at once.
"""

from __future__ import annotations

import os
import struct
import sys
import threading
import time
import zlib
from collections import deque
from pathlib import Path
from typing import Callable, Iterator, NamedTuple

from ..errors import ConfigurationError, StoreClosedError, WalPoisonedError

__all__ = [
    "OP_PUT",
    "OP_DELETE",
    "WalRecord",
    "WalReplay",
    "WriteAheadLog",
    "CommitPipeline",
]

#: Operation tags inside a WAL payload.
OP_PUT = 0
OP_DELETE = 1

_HEADER = struct.Struct("<II")  # crc32, payload length
_PREFIX = struct.Struct("<BI")  # op, key length

#: Replay reads the log through a bounded buffer in chunks of this many
#: bytes, so recovering a multi-gigabyte WAL uses constant memory instead
#: of slurping the whole file (peak buffer = one chunk + one frame).
REPLAY_CHUNK_BYTES = 64 * 1024

# Indirection so tests can observe replay's read pattern (chunked, never
# whole-file) by swapping in a recording opener.
_open = open

# Indirection so tests and the crash-sim gate can inject storage faults --
# a failing fsync, a power-loss snapshot taken mid-sync -- without
# patching the real ``os`` module for everyone.  Group commit makes one
# sync cover many writers, so the sims need to fail or freeze exactly
# this call.
_fsync = os.fsync


class WalRecord(NamedTuple):
    """One replayed mutation."""

    op: int
    key: bytes
    value: bytes


class WalReplay(NamedTuple):
    """Everything :meth:`WriteAheadLog.replay` learned about a log file."""

    records: list[WalRecord]
    valid_length: int      # byte offset of the last complete record's end
    torn: bool             # True when trailing bytes had to be discarded
    discarded_bytes: int   # how many trailing bytes were invalid


def encode_record(op: int, key: bytes, value: bytes = b"") -> bytes:
    """Frame one mutation as an append-ready byte string."""
    payload = _PREFIX.pack(op, len(key)) + key + value
    return _HEADER.pack(zlib.crc32(payload), len(payload)) + payload


class WriteAheadLog:
    """Append-only CRC-framed log over one file.

    Not thread-safe on its own; the owning store serializes appends
    (under group commit, through a single :class:`CommitPipeline`
    leader at a time).  The file is opened unbuffered: a batch is one
    ``write`` syscall, and a sync failure cannot leave stale bytes in a
    user-space buffer that a later flush would silently replay past the
    poisoning truncation.
    """

    def __init__(self, path: str | os.PathLike[str], *, fsync: bool = False) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._file = open(self.path, "ab", buffering=0)
        self._size = os.fstat(self._file.fileno()).st_size
        self._poison_cause: BaseException | None = None

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Bytes currently in the log (header overhead included)."""
        return self._size

    @property
    def closed(self) -> bool:
        return self._file.closed

    @property
    def poisoned(self) -> bool:
        """True once a write/sync failure has disabled this segment."""
        return self._poison_cause is not None

    # ------------------------------------------------------------------
    def write_batch(self, frames: list[bytes]) -> int:
        """Append *frames* with one write and (if configured) one fsync.

        Returns the bytes appended.  The whole batch is acknowledged
        together: nothing is acknowledged until every frame has reached
        the OS (and, with ``fsync=True``, the disk).  On any error the
        segment is poisoned -- the failed suffix is truncated away
        best-effort and this call plus every later append raises
        :class:`WalPoisonedError`.
        """
        self._check_appendable()
        blob = frames[0] if len(frames) == 1 else b"".join(frames)
        acked = self._size
        try:
            written = self._file.write(blob)
            if written < len(blob):  # partial write: push the rest through
                view = memoryview(blob)
                while written < len(blob):
                    written += self._file.write(view[written:])
            if self._fsync:
                _fsync(self._file.fileno())
        except Exception as exc:
            self._poison(exc, acked)
            raise WalPoisonedError(
                f"WAL {self.path} failed to persist a batch of "
                f"{len(frames)} frame(s) ({exc!r}); segment poisoned"
            ) from exc
        self._size = acked + len(blob)
        return len(blob)

    def append(self, op: int, key: bytes, value: bytes = b"") -> int:
        """Durably append one mutation; returns the bytes written.

        The write is acknowledged only after the frame reaches the OS
        (and, with ``fsync=True``, the disk).
        """
        return self.write_batch([encode_record(op, key, value)])

    def append_put(self, key: bytes, value: bytes) -> int:
        return self.append(OP_PUT, key, value)

    def append_delete(self, key: bytes) -> int:
        return self.append(OP_DELETE, key)

    # ------------------------------------------------------------------
    def _check_appendable(self) -> None:
        if self._file.closed:
            raise StoreClosedError(f"WAL {self.path} is closed")
        if self._poison_cause is not None:
            raise WalPoisonedError(
                f"WAL {self.path} is poisoned by an earlier sync failure "
                f"({self._poison_cause!r}); no further appends are accepted"
            )

    def _poison(self, cause: BaseException, acked_size: int) -> None:
        """Disable the segment and cut the un-acknowledged suffix.

        The truncation is best-effort: it stops recovery from replaying a
        frame whose writer was told it failed.  When even the truncate
        fails, accounting falls back to the file's real size so seal
        thresholds and ``stats()`` stay honest (the suffix then survives
        on disk, which is why the store must be failed rather than
        resumed -- only a reopen re-establishes a trustworthy state).
        """
        self._poison_cause = cause
        try:
            os.ftruncate(self._file.fileno(), acked_size)
            self._size = acked_size
        except OSError:
            try:
                self._size = os.fstat(self._file.fileno()).st_size
            except OSError:
                pass  # keep the last known count; reopen re-stats anyway

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def unlink(self) -> None:
        """Close and delete the log file (its memtable has been flushed)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    @staticmethod
    def replay(
        path: str | os.PathLike[str], *, chunk_size: int = REPLAY_CHUNK_BYTES
    ) -> WalReplay:
        """Read every intact record from *path*, stopping at a torn tail.

        Streams the file through a bounded buffer (*chunk_size* bytes per
        read), so replay memory is O(chunk + largest frame), never O(log
        size) -- a recovery that slurped a multi-GB WAL whole was itself
        a crash risk.
        """
        records: list[WalRecord] = []
        path = Path(path)
        total = os.stat(path).st_size
        buffer = bytearray()
        offset = 0  # file offset of the end of the last intact frame
        with _open(path, "rb") as handle:

            def fill(needed: int) -> bool:
                """Grow the buffer to *needed* bytes; False at early EOF.

                Always reads whole chunks, so the buffer high-water mark
                is ``needed + chunk_size`` and the syscall count is
                O(file size / chunk), not O(records).
                """
                while len(buffer) < needed:
                    chunk = handle.read(chunk_size)
                    if not chunk:
                        return False
                    buffer.extend(chunk)
                return True

            while True:
                if not fill(_HEADER.size):
                    break  # torn header (or clean EOF)
                crc, length = _HEADER.unpack_from(buffer, 0)
                frame_size = _HEADER.size + length
                if offset + frame_size > total:
                    break  # frame claims more bytes than the file holds
                if not fill(frame_size):
                    break  # torn payload
                payload = bytes(buffer[_HEADER.size : frame_size])
                if zlib.crc32(payload) != crc or length < _PREFIX.size:
                    break  # corrupt record: treat the rest as a torn tail
                op, key_len = _PREFIX.unpack_from(payload, 0)
                if op not in (OP_PUT, OP_DELETE) or _PREFIX.size + key_len > length:
                    break
                key = payload[_PREFIX.size : _PREFIX.size + key_len]
                value = payload[_PREFIX.size + key_len :]
                records.append(WalRecord(op, key, value))
                del buffer[:frame_size]
                offset += frame_size
        return WalReplay(records, offset, offset != total, total - offset)

    @staticmethod
    def repair(path: str | os.PathLike[str], replay: WalReplay) -> None:
        """Truncate *path* back to its valid prefix after a torn replay."""
        if not replay.torn:
            return
        with open(path, "rb+") as handle:
            handle.truncate(replay.valid_length)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[WalRecord]:  # pragma: no cover - convenience
        return iter(self.replay(self.path).records)

    def __repr__(self) -> str:
        return f"<WriteAheadLog path={str(self.path)!r} size={self._size}>"


class _Ticket:
    """One queued commit: a framed record, its visibility callback, and
    the gate its writer is parked on.

    The gate is a raw pre-acquired lock, not a ``threading.Event``: a
    follower blocks on ``gate.acquire()`` and the leader ``release``\\ s
    it -- one C-level lock instead of a Condition object per write,
    which matters on a path where python-side work bounds throughput.
    The leader's own ticket has no gate at all: ``_lead`` drains the
    queue before returning, so the leader never waits on itself.
    """

    __slots__ = ("frame", "apply", "gate", "error")

    def __init__(self, frame: bytes, apply: "Callable[[], None] | None") -> None:
        self.frame = frame
        self.apply = apply
        self.gate: threading.Lock | None = None
        self.error: BaseException | None = None


class CommitPipeline:
    """Group commit: concurrent writers share one durable sync per batch.

    Writers call :meth:`submit` with an encoded frame; the first writer
    to find no leader becomes the leader (Rocks/LevelDB-style -- no
    dedicated commit thread), drains the queue up to
    ``max_batch_records``/``max_batch_bytes``, hands every frame of the
    batch to *commit* (one write + one sync), then runs each waiter's
    ``apply`` callback **in enqueue order** and wakes them.  That order
    guarantee is what lets a store equate WAL order with visibility
    order: replaying the log after a crash reconstructs exactly the
    state the appliers built.

    Error propagation is per waiter: a failed *commit* fails every
    waiter whose frame was in that batch (and, because a poisoned WAL
    rejects the next batch too, everyone queued behind it), while a
    failed ``apply`` fails only its own waiter -- the rest of the batch
    is durable and acknowledged normally.

    A frame of ``b""`` is a **barrier**: it costs no I/O but its apply
    runs in queue order, strictly after every batch submitted before it.
    A barrier always commits **alone** -- batch collection cuts at a
    barrier instead of spanning it -- because the owning store seals
    memtables (swapping the active memtable *and* WAL segment) inside a
    barrier's apply: were data frames batched behind a barrier, they
    would be durable only in the pre-seal WAL segment while their
    applies landed in the post-seal memtable, and flushing the sealed
    memtable would unlink the only durable copy of acknowledged writes.
    For the same reason size-triggered seals are deferred to batch
    boundaries: *on_batch_applied* runs after a batch's last apply, so a
    seal can never split a committed batch across two WAL segments.

    Batches fill through an adaptive **gather window** (see
    ``gather_window_s``): the leader briefly waits for the queue to
    reach the highest depth any writer has recently observed before
    paying the next sync, which is what keeps batches full instead of
    committing whatever trickled in during the previous ``fsync``.  The
    wait quiesces as soon as arrivals stop for one grain, and a lone
    writer never triggers it.
    """

    def __init__(
        self,
        commit: Callable[[list[bytes]], None],
        *,
        max_batch_records: int = 128,
        max_batch_bytes: int = 1 << 20,
        gather_window_s: float = 0.0003,
        on_batch_applied: "Callable[[], None] | None" = None,
    ) -> None:
        """:param commit: called by the leader with every non-empty frame
            of one batch, in enqueue order; must persist all of them (or
            raise) before returning.
        :param max_batch_records: most frames a single batch may carry.
        :param max_batch_bytes: byte bound per batch (a single oversized
            frame still commits, alone).
        :param on_batch_applied: called by the leader after the last
            apply of each successfully committed batch -- the one point
            where the owning store may seal (swap memtable + WAL)
            without splitting a committed batch across segments.  An
            exception here is re-raised from the leader's own
            :meth:`submit` once the queue is drained and leadership
            released, so it can never strand queued waiters.
        :param gather_window_s: how long the leader may wait for more
            writers before committing a batch (the Postgres
            ``commit_delay`` idea, made adaptive).  The wait targets the
            highest queue depth any writer has recently observed -- a
            lone writer never pays it -- and ends early the moment the
            target is reached or no new writer arrives for one grain
            (<=50 us).  ``0`` disables gathering.
        """
        if max_batch_records < 1:
            raise ConfigurationError("max_batch_records must be positive")
        if max_batch_bytes < 1:
            raise ConfigurationError("max_batch_bytes must be positive")
        if gather_window_s < 0:
            raise ConfigurationError("gather_window_s cannot be negative")
        self._commit = commit
        self._on_batch_applied = on_batch_applied
        self._max_records = max_batch_records
        self._max_bytes = max_batch_bytes
        self._window = gather_window_s
        # One quiescence grain: long enough for a woken writer to reach
        # submit() under the GIL, short enough that an expired grain is
        # cheap next to a disk sync.
        self._grain = min(gather_window_s, 0.00005) if gather_window_s else 0.0
        self._mutex = threading.Lock()
        self._drained = threading.Condition(self._mutex)
        self._grew = threading.Condition(self._mutex)
        self._queue: deque[_Ticket] = deque()
        self._leading = False
        self._shutdown = False
        self._batches = 0
        self._committed = 0
        self._largest_batch = 0
        # Gather target: the highest queue depth any follower has seen
        # -- a live estimate of writer concurrency.  Decays whenever a
        # gather times out short, so departed writers stop being waited
        # for.
        self._peak = 0
        # Wake threshold for a gathering leader: submitters only notify
        # ``_grew`` once the queue reaches it, so the leader sleeps in
        # whole grains instead of waking (and contending for the mutex)
        # on every arrival.  ``maxsize`` means nobody is gathering.
        self._goal = sys.maxsize
        # Test seam: called in the submitting thread right after its
        # ticket is enqueued (before it blocks), so tests can build
        # multi-frame batches deterministically with zero sleeps.
        self._enqueue_hook: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    def submit(self, frame: bytes, apply: "Callable[[], None] | None" = None) -> None:
        """Enqueue one frame and block until it is durable and applied.

        Raises whatever the batch commit raised (every waiter of the
        batch sees it), or whatever this waiter's own *apply* raised, or
        :class:`~repro.errors.StoreClosedError` after :meth:`close`.
        """
        ticket = _Ticket(frame, apply)
        with self._mutex:
            if self._shutdown:
                raise StoreClosedError("commit pipeline is closed")
            self._queue.append(ticket)
            lead = not self._leading
            if lead:
                self._leading = True
            else:
                # The gate must exist before the mutex drops: the leader
                # pops tickets under this mutex, so once we release it a
                # resolved ticket with no gate would strand us.
                gate = threading.Lock()
                gate.acquire()
                ticket.gate = gate
                if len(self._queue) > self._peak:
                    self._peak = len(self._queue)
                if len(self._queue) >= self._goal:
                    self._grew.notify()
        if self._enqueue_hook is not None:
            self._enqueue_hook()
        if lead:
            # _lead drains the queue before returning, so this ticket is
            # guaranteed resolved -- no gate, no wait.
            self._lead()
        else:
            ticket.gate.acquire()  # parked until the leader releases us
        if ticket.error is not None:
            raise ticket.error

    def _lead(self) -> None:
        """Drain the queue batch by batch until it is empty, then abdicate."""
        deferred: BaseException | None = None
        while True:
            with self._mutex:
                if not self._queue:
                    self._leading = False
                    if self._shutdown:  # only close() ever waits on this
                        self._drained.notify_all()
                    break
                # Gather: wait (bounded by the window) for the queue to
                # reach the observed writer concurrency before paying a
                # sync, so batches fill up instead of committing
                # whatever trickled in during the previous fsync.  A
                # lone writer has peak 0 and never waits, and the wait
                # quiesces early: one grain with no new arrival means the
                # stragglers are not coming, so burn a grain, not the
                # whole window.
                goal = min(self._peak, self._max_records)
                if self._window and not self._shutdown and goal > len(self._queue):
                    self._goal = goal
                    deadline = time.monotonic() + self._window
                    while len(self._queue) < goal and not self._shutdown:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                        before = len(self._queue)
                        self._grew.wait(min(remaining, self._grain))
                        if len(self._queue) == before:
                            break
                    self._goal = sys.maxsize
                batch = [self._queue.popleft()]
                size = len(batch[0].frame)
                # A barrier (empty frame) commits alone: its apply may
                # seal -- swap the memtable *and* the active WAL -- and a
                # data frame batched behind it would be durable only in
                # the pre-seal segment while its apply landed in the
                # post-seal memtable (flushing the sealed memtable then
                # unlinks the acknowledged write's only durable copy).
                if batch[0].frame:
                    while (
                        self._queue
                        and self._queue[0].frame  # never batch across a barrier
                        and len(batch) < self._max_records
                        and size + len(self._queue[0].frame) <= self._max_bytes
                    ):
                        ticket = self._queue.popleft()
                        batch.append(ticket)
                        size += len(ticket.frame)
                self._batches += 1
                self._committed += len(batch)
                self._largest_batch = max(self._largest_batch, len(batch))
                cut_short = batch[0].frame and not (
                    self._queue and not self._queue[0].frame
                )
                if len(batch) < goal and cut_short:
                    # Writers left (not a barrier cut): stop waiting for
                    # them.
                    self._peak = len(batch)
            frames = [ticket.frame for ticket in batch if ticket.frame]
            error: BaseException | None = None
            if frames:
                try:
                    self._commit(frames)
                except BaseException as exc:  # noqa: BLE001 - fanned out per waiter
                    error = exc
            for ticket in batch:
                if error is not None:
                    ticket.error = error
                elif ticket.apply is not None:
                    try:
                        ticket.apply()
                    except BaseException as exc:  # noqa: BLE001
                        ticket.error = exc
                if ticket.gate is not None:
                    ticket.gate.release()
            if error is None and self._on_batch_applied is not None:
                # End-of-batch hook: the store's size-triggered seal runs
                # here, at a batch boundary, never between a batch's
                # applies.  Failures are raised from the leader's submit
                # only after the queue drains, so waiters are never
                # stranded.
                try:
                    self._on_batch_applied()
                except BaseException as exc:  # noqa: BLE001
                    if deferred is None:
                        deferred = exc
        if deferred is not None:
            raise deferred

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain-or-reject shutdown; nothing queued is silently dropped.

        Everything already enqueued is committed (its waiter gets a real
        acknowledgement, or the real commit error -- e.g. a poisoned
        WAL's rejection), any later :meth:`submit` raises
        :class:`~repro.errors.StoreClosedError`, and this call returns
        only once the last in-flight batch has resolved.
        """
        with self._mutex:
            self._shutdown = True
            self._grew.notify_all()  # cut short a leader's gather wait
            while self._leading or self._queue:
                self._drained.wait()

    def stats(self) -> dict[str, int]:
        """Batch accounting (barriers included) for ``store.stats()``."""
        with self._mutex:
            return {
                "batches": self._batches,
                "committed": self._committed,
                "largest_batch": self._largest_batch,
            }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"<CommitPipeline batches={self._batches} "
            f"committed={self._committed} queued={len(self._queue)}>"
        )
