"""Write-ahead log: the durability backbone of the LSM engine.

Every mutation (put or delete) is appended here *before* it is applied to
the in-memory memtable, so an acknowledged write survives a crash: on the
next open the log is replayed into a fresh memtable.  The log is the only
file the engine ever appends to in place; SSTables are immutable once
written.

Record framing (little-endian, see ``docs/lsm.md``)::

    +----------+----------+--------------------------------------+
    | crc32 u32| len  u32 | payload (len bytes)                  |
    +----------+----------+--------------------------------------+
    payload = op u8 | key_len u32 | key bytes | value bytes

``op`` is 0 for a put and 1 for a delete (deletes carry no value bytes).
The CRC covers the payload only, so a torn header, a torn payload, and a
bit-flipped payload are all detected the same way: the record fails its
frame check and replay stops there.

Torn-tail recovery
------------------
A crash mid-append leaves a prefix of a record at the end of the file.
:func:`WriteAheadLog.replay` reads records until the first frame that is
incomplete or fails its CRC, returns every record before it plus the byte
offset of the valid prefix, and flags whether anything was discarded.  The
store truncates the file back to that offset on open, which is exactly the
set of writes that were ever acknowledged (an append returns only after
the full frame is written).
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterator, NamedTuple

from ..errors import StoreClosedError

__all__ = ["OP_PUT", "OP_DELETE", "WalRecord", "WalReplay", "WriteAheadLog"]

#: Operation tags inside a WAL payload.
OP_PUT = 0
OP_DELETE = 1

_HEADER = struct.Struct("<II")  # crc32, payload length
_PREFIX = struct.Struct("<BI")  # op, key length

#: Replay reads the log through a bounded buffer in chunks of this many
#: bytes, so recovering a multi-gigabyte WAL uses constant memory instead
#: of slurping the whole file (peak buffer = one chunk + one frame).
REPLAY_CHUNK_BYTES = 64 * 1024

# Indirection so tests can observe replay's read pattern (chunked, never
# whole-file) by swapping in a recording opener.
_open = open


class WalRecord(NamedTuple):
    """One replayed mutation."""

    op: int
    key: bytes
    value: bytes


class WalReplay(NamedTuple):
    """Everything :meth:`WriteAheadLog.replay` learned about a log file."""

    records: list[WalRecord]
    valid_length: int      # byte offset of the last complete record's end
    torn: bool             # True when trailing bytes had to be discarded
    discarded_bytes: int   # how many trailing bytes were invalid


def encode_record(op: int, key: bytes, value: bytes = b"") -> bytes:
    """Frame one mutation as an append-ready byte string."""
    payload = _PREFIX.pack(op, len(key)) + key + value
    return _HEADER.pack(zlib.crc32(payload), len(payload)) + payload


class WriteAheadLog:
    """Append-only CRC-framed log over one file.

    Not thread-safe on its own; the owning store serializes appends.
    """

    def __init__(self, path: str | os.PathLike[str], *, fsync: bool = False) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._file = open(self.path, "ab")
        self._size = self._file.tell()

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Bytes currently in the log (header overhead included)."""
        return self._size

    @property
    def closed(self) -> bool:
        return self._file.closed

    # ------------------------------------------------------------------
    def append(self, op: int, key: bytes, value: bytes = b"") -> int:
        """Durably append one mutation; returns the bytes written.

        The write is acknowledged only after the frame reaches the OS
        (and, with ``fsync=True``, the disk).
        """
        if self._file.closed:
            raise StoreClosedError(f"WAL {self.path} is closed")
        frame = encode_record(op, key, value)
        self._file.write(frame)
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self._size += len(frame)
        return len(frame)

    def append_put(self, key: bytes, value: bytes) -> int:
        return self.append(OP_PUT, key, value)

    def append_delete(self, key: bytes) -> int:
        return self.append(OP_DELETE, key)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def unlink(self) -> None:
        """Close and delete the log file (its memtable has been flushed)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    @staticmethod
    def replay(
        path: str | os.PathLike[str], *, chunk_size: int = REPLAY_CHUNK_BYTES
    ) -> WalReplay:
        """Read every intact record from *path*, stopping at a torn tail.

        Streams the file through a bounded buffer (*chunk_size* bytes per
        read), so replay memory is O(chunk + largest frame), never O(log
        size) -- a recovery that slurped a multi-GB WAL whole was itself
        a crash risk.
        """
        records: list[WalRecord] = []
        path = Path(path)
        total = os.stat(path).st_size
        buffer = bytearray()
        offset = 0  # file offset of the end of the last intact frame
        with _open(path, "rb") as handle:

            def fill(needed: int) -> bool:
                """Grow the buffer to *needed* bytes; False at early EOF.

                Always reads whole chunks, so the buffer high-water mark
                is ``needed + chunk_size`` and the syscall count is
                O(file size / chunk), not O(records).
                """
                while len(buffer) < needed:
                    chunk = handle.read(chunk_size)
                    if not chunk:
                        return False
                    buffer.extend(chunk)
                return True

            while True:
                if not fill(_HEADER.size):
                    break  # torn header (or clean EOF)
                crc, length = _HEADER.unpack_from(buffer, 0)
                frame_size = _HEADER.size + length
                if offset + frame_size > total:
                    break  # frame claims more bytes than the file holds
                if not fill(frame_size):
                    break  # torn payload
                payload = bytes(buffer[_HEADER.size : frame_size])
                if zlib.crc32(payload) != crc or length < _PREFIX.size:
                    break  # corrupt record: treat the rest as a torn tail
                op, key_len = _PREFIX.unpack_from(payload, 0)
                if op not in (OP_PUT, OP_DELETE) or _PREFIX.size + key_len > length:
                    break
                key = payload[_PREFIX.size : _PREFIX.size + key_len]
                value = payload[_PREFIX.size + key_len :]
                records.append(WalRecord(op, key, value))
                del buffer[:frame_size]
                offset += frame_size
        return WalReplay(records, offset, offset != total, total - offset)

    @staticmethod
    def repair(path: str | os.PathLike[str], replay: WalReplay) -> None:
        """Truncate *path* back to its valid prefix after a torn replay."""
        if not replay.torn:
            return
        with open(path, "rb+") as handle:
            handle.truncate(replay.valid_length)

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[WalRecord]:  # pragma: no cover - convenience
        return iter(self.replay(self.path).records)

    def __repr__(self) -> str:
        return f"<WriteAheadLog path={str(self.path)!r} size={self._size}>"
