"""Size-tiered compaction: merging runs so reads stay fast.

Every memtable flush adds one SSTable, and every SSTable is one more file
a read may have to probe.  Compaction merges several tables of similar
size into one, reclaiming space held by overwritten values and (when safe)
tombstones, and keeping the table count -- and therefore worst-case read
amplification -- bounded.

Policy
------
:class:`SizeTieredPolicy` is the classic size-tiered scheme: tables are
bucketed by size (each bucket spans ``bucket_low``..``bucket_high`` times
the bucket's average), and any bucket holding at least ``min_tables``
tables is a merge candidate (largest eligible bucket first, at most
``max_tables`` per merge).  Newly flushed tables are similar in size, so
they tier up naturally: four small tables merge into one medium, four
mediums into one large, and so on.

Tombstone reclamation
---------------------
A tombstone can only be dropped when no older run might still hold a
version of its key -- otherwise the delete would "resurrect" the old
value.  :func:`merge_tables` therefore drops tombstones only when told the
merge includes the oldest run in the store.

Schedulers
----------
Compaction work is submitted to an injectable scheduler, so the policy is
decoupled from *where* the work runs:

* :class:`InlineScheduler` -- run in the calling thread, immediately (the
  default: deterministic, no background machinery);
* :class:`ManualScheduler` -- queue tasks until :meth:`ManualScheduler.run_pending`
  is called (tests drive compaction step by step, nothing ever sleeps);
* :class:`BackgroundScheduler` -- one daemon worker thread fed by a
  blocking queue (true background compaction; no polling, no sleeps).
"""

from __future__ import annotations

import heapq
import queue
import threading
from typing import Callable, Iterator, Sequence

from ..errors import ConfigurationError
from .memtable import TOMBSTONE, Tombstone
from .sstable import SSTable

__all__ = [
    "SizeTieredPolicy",
    "merge_tables",
    "InlineScheduler",
    "ManualScheduler",
    "BackgroundScheduler",
]


class SizeTieredPolicy:
    """Pick which SSTables to merge, by size tier."""

    def __init__(
        self,
        *,
        min_tables: int = 4,
        max_tables: int = 10,
        bucket_low: float = 0.5,
        bucket_high: float = 1.5,
    ) -> None:
        if min_tables < 2:
            raise ConfigurationError("min_tables must be at least 2")
        if max_tables < min_tables:
            raise ConfigurationError("max_tables must be >= min_tables")
        self.min_tables = min_tables
        self.max_tables = max_tables
        self.bucket_low = bucket_low
        self.bucket_high = bucket_high

    def select(self, tables: Sequence[SSTable]) -> list[SSTable]:
        """Tables to merge now, or ``[]`` when no tier is crowded enough.

        *tables* must be in age order (oldest first); the returned subset
        is an **age-contiguous run** of that order.  Contiguity is a
        correctness requirement, not a preference: the merged output takes
        the newest input's place in the age order, so merging a set that
        skips over a middle table would lift the older inputs' versions of
        a key above the skipped table's newer version (resurrecting
        overwritten values and deleted keys).
        """
        buckets: list[tuple[float, list[SSTable]]] = []  # (avg size, members)
        for table in sorted(tables, key=lambda t: t.size_bytes):
            for index, (average, members) in enumerate(buckets):
                if self.bucket_low * average <= table.size_bytes <= self.bucket_high * average:
                    members.append(table)
                    total = average * (len(members) - 1) + table.size_bytes
                    buckets[index] = (total / len(members), members)
                    break
            else:
                buckets.append((float(table.size_bytes), [table]))
        position = {id(table): index for index, table in enumerate(tables)}
        runs: list[list[SSTable]] = []
        for _avg, members in buckets:
            if len(members) < self.min_tables:
                continue
            # Split the size bucket into maximal runs that are contiguous
            # in the store's age order; only such a run is safe to merge.
            ordered = sorted(members, key=lambda t: position[id(t)])
            run = [ordered[0]]
            for table in ordered[1:]:
                if position[id(table)] == position[id(run[-1])] + 1:
                    run.append(table)
                else:
                    runs.append(run)
                    run = [table]
            runs.append(run)
        eligible = [run for run in runs if len(run) >= self.min_tables]
        if not eligible:
            return []
        # Trim from the newest end so the run stays contiguous (and keeps
        # its chance of being an oldest-first prefix, which is what lets
        # the merge drop tombstones).
        return max(eligible, key=len)[: self.max_tables]


def merge_tables(
    tables: Sequence[SSTable], *, drop_tombstones: bool
) -> Iterator[tuple[bytes, "bytes | Tombstone"]]:
    """K-way merge of *tables* (oldest first) into one sorted entry stream.

    For duplicate keys the entry from the newest table wins.  Tombstones
    pass through unless *drop_tombstones* is true, which is only safe when
    the merge includes the store's oldest run (nothing below could still
    hold a shadowed version).
    """
    # Heap entries: (key, -age, generator). Newer tables get a smaller
    # second element, so for equal keys the newest source pops first and
    # older duplicates are skipped.
    #
    # fill_cache=False: a merge sweeps every block of its inputs exactly
    # once, and the inputs are about to be retired -- letting that sweep
    # populate the block cache would evict the hot read working set for
    # blocks nobody will ever look up again.
    iterators = [iter(table.items(fill_cache=False)) for table in tables]
    heap: list[tuple[bytes, int, Iterator]] = []
    for age, iterator in enumerate(iterators):
        first = next(iterator, None)
        if first is not None:
            heapq.heappush(heap, (first[0], -age, first[1], iterator))  # type: ignore[arg-type]
    previous: bytes | None = None
    while heap:
        key, neg_age, value, iterator = heapq.heappop(heap)  # type: ignore[misc]
        following = next(iterator, None)
        if following is not None:
            heapq.heappush(heap, (following[0], neg_age, following[1], iterator))  # type: ignore[arg-type]
        if key == previous:
            continue  # an older table's version of a key already emitted
        previous = key
        if isinstance(value, Tombstone):
            if not drop_tombstones:
                yield key, TOMBSTONE
            continue
        yield key, value


# ----------------------------------------------------------------------
# Schedulers
# ----------------------------------------------------------------------
class InlineScheduler:
    """Run submitted work immediately in the calling thread."""

    def submit(self, task: Callable[[], None]) -> None:
        task()

    def pending(self) -> int:
        return 0

    def close(self) -> None:
        return None


class ManualScheduler:
    """Queue submitted work until :meth:`run_pending` is called.

    The test harness's scheduler: flushes and compactions happen exactly
    when the test says so, and nothing ever sleeps.
    """

    def __init__(self) -> None:
        self._tasks: list[Callable[[], None]] = []

    def submit(self, task: Callable[[], None]) -> None:
        self._tasks.append(task)

    def pending(self) -> int:
        return len(self._tasks)

    def run_pending(self) -> int:
        """Run every queued task (tasks queued *by* tasks run too)."""
        executed = 0
        while self._tasks:
            task = self._tasks.pop(0)
            task()
            executed += 1
        return executed

    def close(self) -> None:
        self._tasks.clear()


class BackgroundScheduler:
    """One daemon worker draining a blocking queue -- no polling, no sleeps."""

    def __init__(self, name: str = "lsm-compaction") -> None:
        self._queue: "queue.Queue[Callable[[], None] | None]" = queue.Queue()
        self._idle = threading.Event()
        self._idle.set()
        self._worker = threading.Thread(target=self._run, name=name, daemon=True)
        self._worker.start()

    def _run(self) -> None:
        while True:
            task = self._queue.get()
            if task is None:
                return
            self._idle.clear()
            try:
                task()
            except Exception:  # noqa: BLE001 - background task; store logs via events
                pass
            finally:
                if self._queue.unfinished_tasks <= 1:
                    self._idle.set()
                self._queue.task_done()

    def submit(self, task: Callable[[], None]) -> None:
        self._idle.clear()
        self._queue.put(task)

    def pending(self) -> int:
        return self._queue.qsize()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until queued work is done (True) or *timeout* elapses."""
        return self._idle.wait(timeout)

    def close(self) -> None:
        self._queue.put(None)
        self._worker.join(timeout=5.0)
