"""``repro.lsm`` -- an embedded log-structured merge storage engine.

The write-optimized durable backend of the store lineup: an append-only
CRC-framed write-ahead log, an in-memory memtable, immutable sorted
SSTable runs with sparse indexes and per-table Bloom filters, and
size-tiered compaction on an injectable scheduler.  The public entry
point is :class:`~repro.lsm.store.LSMStore`, a full
:class:`~repro.kv.interface.KeyValueStore`, so everything written against
the KV contract -- the enhanced client, the UDSM, migration, the workload
generator, ``StoreServer`` -- works on it unchanged.

Formats and the recovery procedure are documented in ``docs/lsm.md``.
"""

from .blockcache import BlockCache
from .compaction import (
    BackgroundScheduler,
    InlineScheduler,
    ManualScheduler,
    SizeTieredPolicy,
    merge_tables,
)
from .manifest import MANIFEST_NAME, Manifest
from .memtable import TOMBSTONE, Memtable
from .sstable import MISSING, SSTable, write_sstable
from .store import LSMStore
from .wal import OP_DELETE, OP_PUT, CommitPipeline, WalRecord, WriteAheadLog

__all__ = [
    "LSMStore",
    "WriteAheadLog",
    "CommitPipeline",
    "WalRecord",
    "OP_PUT",
    "OP_DELETE",
    "Memtable",
    "TOMBSTONE",
    "SSTable",
    "MISSING",
    "write_sstable",
    "BlockCache",
    "Manifest",
    "MANIFEST_NAME",
    "SizeTieredPolicy",
    "merge_tables",
    "InlineScheduler",
    "ManualScheduler",
    "BackgroundScheduler",
]
