"""The memtable: recent writes, in memory, sorted on demand.

Every mutation lands here (after its WAL append).  Reads consult the
memtable first because it always holds the newest version of a key.  When
the table grows past the store's ``memtable_bytes`` budget it is sealed --
made immutable -- and flushed to an SSTable, after which its WAL segment
can be deleted.

Deletes are recorded as :data:`TOMBSTONE` markers rather than removals:
an older version of the key may live in an SSTable below, and only the
tombstone masks it.  Tombstones survive the flush into SSTables and are
dropped only by a compaction that can prove no older run remains.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["TOMBSTONE", "Tombstone", "Memtable"]


class Tombstone:
    """Singleton marker for a deleted key (distinct from any value bytes)."""

    _instance: "Tombstone | None" = None

    def __new__(cls) -> "Tombstone":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<TOMBSTONE>"


#: The one tombstone marker used throughout the engine.
TOMBSTONE = Tombstone()

#: Fixed per-entry overhead charged against the memtable's byte budget
#: (dict slot, object headers); keeps tiny-value workloads from growing
#: the table unboundedly before tripping the flush threshold.
ENTRY_OVERHEAD = 64


class Memtable:
    """A mutable map of key bytes to value bytes or :data:`TOMBSTONE`.

    Backed by a plain dict (O(1) point ops); :meth:`items` sorts on demand,
    which is where the "sorted run" the SSTable needs comes from.  The
    owning store serializes access.
    """

    __slots__ = ("_entries", "_bytes")

    def __init__(self) -> None:
        self._entries: dict[bytes, bytes | Tombstone] = {}
        self._bytes = 0

    # ------------------------------------------------------------------
    def put(self, key: bytes, value: bytes) -> None:
        self._account(key, self._entries.get(key))
        self._entries[key] = value
        self._bytes += len(key) + len(value) + ENTRY_OVERHEAD

    def delete(self, key: bytes) -> None:
        """Record a tombstone for *key* (even if the key was never here)."""
        self._account(key, self._entries.get(key))
        self._entries[key] = TOMBSTONE
        self._bytes += len(key) + ENTRY_OVERHEAD

    def _account(self, key: bytes, previous: "bytes | Tombstone | None") -> None:
        if previous is None:
            return
        size = 0 if isinstance(previous, Tombstone) else len(previous)
        self._bytes -= len(key) + size + ENTRY_OVERHEAD

    # ------------------------------------------------------------------
    def get(self, key: bytes) -> "bytes | Tombstone | None":
        """Value bytes, :data:`TOMBSTONE`, or ``None`` when never seen."""
        return self._entries.get(key)

    def items(self) -> Iterator[tuple[bytes, "bytes | Tombstone"]]:
        """Entries in key order (tombstones included) -- the flush feed."""
        for key in sorted(self._entries):
            yield key, self._entries[key]

    # ------------------------------------------------------------------
    @property
    def approximate_bytes(self) -> int:
        """Byte budget consumed (keys + values + per-entry overhead)."""
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __repr__(self) -> str:
        return f"<Memtable entries={len(self._entries)} bytes={self._bytes}>"
