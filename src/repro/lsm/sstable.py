"""Immutable sorted-string tables: the on-disk runs of the LSM engine.

An SSTable is written once (by a memtable flush or a compaction merge),
read many times, and never modified; deletion is the only mutation.  That
immutability is what makes the engine's concurrency cheap: readers need no
locks against writers, only a stable file descriptor.

File layout (little-endian; diagrams in ``docs/lsm.md``)::

    +--------------------------------------------------------------+
    | magic "LSMSST01"                                             |
    | data block:  record*                                         |
    |   record = key_len u32 | value_len u32 | key | value         |
    |            (value_len == 0xFFFFFFFF marks a tombstone)       |
    | sparse index: count u32, then every Nth record's             |
    |   key_len u32 | key | file_offset u64                        |
    | bloom block: BloomFilter.to_bytes() payload                  |
    | footer: index_off u64 | bloom_off u64 | record_count u64     |
    |         | magic "LSMSST01"                                   |
    +--------------------------------------------------------------+

Records are sorted by key bytes.  The sparse index holds one entry per
``index_interval`` records (plus always the first), so a point read seeks
to the greatest indexed key <= target and scans at most ``index_interval``
records.  The per-table Bloom filter (reused from
:mod:`repro.caching.bloom`) lets the read path skip tables that definitely
do not hold the key -- the difference between O(tables) file probes per
miss and near-zero.

The run of records between two adjacent index entries is the table's
**block**: the unit of disk I/O (one ``pread`` per block) and the unit of
caching.  With a :class:`~repro.lsm.blockcache.BlockCache` attached,
``get`` and the scan iterators read through the cache, so a hot working
set is served without touching the file at all; without one, reads fall
back to ``pread`` (no shared file position, so concurrent readers never
contend).
"""

from __future__ import annotations

import os
import struct
import tempfile
from bisect import bisect_right
from pathlib import Path
from typing import Iterable, Iterator

from ..caching.bloom import BloomFilter
from ..errors import DataStoreError
from ..fsutil import fsync_dir
from .blockcache import RECORD_OVERHEAD, BlockCache, next_table_id
from .memtable import TOMBSTONE, Tombstone

__all__ = ["MISSING", "SSTable", "write_sstable"]

_MAGIC = b"LSMSST01"
_U32 = struct.Struct("<I")
_RECORD = struct.Struct("<II")            # key_len, value_len
_INDEX_ENTRY_TAIL = struct.Struct("<Q")   # file offset
_FOOTER = struct.Struct("<QQQ8s")         # index_off, bloom_off, records, magic
_TOMBSTONE_LEN = 0xFFFFFFFF


class _Missing:
    """Singleton: the table holds no entry (live or tombstone) for a key."""

    _instance: "_Missing | None" = None

    def __new__(cls) -> "_Missing":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<MISSING>"


#: Returned by :meth:`SSTable.get` when the key is not in the table at all.
MISSING = _Missing()


def write_sstable(
    path: str | os.PathLike[str],
    entries: Iterable[tuple[bytes, "bytes | Tombstone"]],
    *,
    index_interval: int = 16,
    bloom_fp_rate: float = 0.01,
    expected_items: int | None = None,
    fsync: bool = False,
) -> Path:
    """Write *entries* (sorted by key, tombstones included) as one SSTable.

    The table is written to a temp file in the same directory and renamed
    into place, so a crash mid-write never leaves a half table where the
    engine would look for one.  Returns the final path.
    """
    path = Path(path)
    entries = list(entries)
    if any(entries[i][0] >= entries[i + 1][0] for i in range(len(entries) - 1)):
        raise DataStoreError("SSTable entries must be strictly sorted by key")
    bloom = BloomFilter(
        expected_items if expected_items is not None else max(1, len(entries)),
        bloom_fp_rate,
    )
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".sst.tmp")
    try:
        with os.fdopen(fd, "wb") as out:
            out.write(_MAGIC)
            offset = len(_MAGIC)
            index: list[tuple[bytes, int]] = []
            for position, (key, value) in enumerate(entries):
                if position % index_interval == 0:
                    index.append((key, offset))
                bloom.add(key)
                if isinstance(value, Tombstone):
                    frame = _RECORD.pack(len(key), _TOMBSTONE_LEN) + key
                else:
                    frame = _RECORD.pack(len(key), len(value)) + key + value
                out.write(frame)
                offset += len(frame)
            index_off = offset
            out.write(_U32.pack(len(index)))
            for key, record_offset in index:
                out.write(_U32.pack(len(key)) + key + _INDEX_ENTRY_TAIL.pack(record_offset))
            bloom_off = out.tell()
            out.write(bloom.to_bytes())
            out.write(_FOOTER.pack(index_off, bloom_off, len(entries), _MAGIC))
            out.flush()
            if fsync:
                os.fsync(out.fileno())
        os.replace(tmp_name, path)
        if fsync:
            # fsyncing the file makes its *contents* durable; only fsyncing
            # the parent directory makes the rename itself survive power
            # loss (POSIX durability contract for directory entries).
            fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


class SSTable:
    """Read-only view over one on-disk table.

    The sparse index and Bloom filter live in memory; record data is
    fetched block-at-a-time -- through the shared :class:`BlockCache`
    when one is attached, with ``pread`` otherwise (no shared file
    position, so concurrent reads need no lock).
    """

    def __init__(
        self, path: str | os.PathLike[str], *, cache: BlockCache | None = None
    ) -> None:
        self.path = Path(path)
        self.table_id = next_table_id()
        self._cache = cache
        #: Set by the store when compaction retires this table; stops the
        #: table from re-filling the cache it was just invalidated from
        #: (in-flight snapshot readers may still scan it).
        self.defunct = False
        self._fd = os.open(self.path, os.O_RDONLY)
        try:
            self.size_bytes = os.fstat(self._fd).st_size
            if self.size_bytes < len(_MAGIC) + _FOOTER.size:
                raise DataStoreError(f"SSTable {self.path} is truncated")
            footer = os.pread(self._fd, _FOOTER.size, self.size_bytes - _FOOTER.size)
            index_off, bloom_off, self.record_count, magic = _FOOTER.unpack(footer)
            head = os.pread(self._fd, len(_MAGIC), 0)
            if magic != _MAGIC or head != _MAGIC:
                raise DataStoreError(f"{self.path} is not an SSTable (bad magic)")
            index_blob = os.pread(self._fd, bloom_off - index_off, index_off)
            self._index_keys, self._index_offsets = self._parse_index(index_blob)
            bloom_blob = os.pread(
                self._fd, self.size_bytes - _FOOTER.size - bloom_off, bloom_off
            )
            self.bloom = BloomFilter.from_bytes(bloom_blob)
            self._data_end = index_off
        except BaseException:
            os.close(self._fd)
            raise

    @staticmethod
    def _parse_index(blob: bytes) -> tuple[list[bytes], list[int]]:
        (count,) = _U32.unpack_from(blob, 0)
        keys: list[bytes] = []
        offsets: list[int] = []
        cursor = _U32.size
        for _ in range(count):
            (key_len,) = _U32.unpack_from(blob, cursor)
            cursor += _U32.size
            keys.append(blob[cursor : cursor + key_len])
            cursor += key_len
            (record_offset,) = _INDEX_ENTRY_TAIL.unpack_from(blob, cursor)
            cursor += _INDEX_ENTRY_TAIL.size
            offsets.append(record_offset)
        return keys, offsets

    # ------------------------------------------------------------------
    def might_contain(self, key: bytes) -> bool:
        """Bloom gate: False means the key is definitely not in this table."""
        return self.bloom.might_contain(key)

    def get(self, key: bytes) -> "bytes | Tombstone | _Missing":
        """Point lookup: value bytes, :data:`TOMBSTONE`, or :data:`MISSING`."""
        if not self._index_keys or key < self._index_keys[0]:
            return MISSING
        slot = bisect_right(self._index_keys, key) - 1
        for record_key, value in self._load_block(slot):
            if record_key == key:
                return value
            if record_key > key:
                break
        return MISSING

    # ------------------------------------------------------------------
    @property
    def block_count(self) -> int:
        """Number of blocks (= sparse-index entries) in the table."""
        return len(self._index_offsets)

    def _load_block(
        self, slot: int, *, fill_cache: bool = True
    ) -> "tuple[tuple[bytes, bytes | Tombstone], ...]":
        """Decoded records of block *slot*, via the cache when attached.

        One ``pread`` fetches the whole block on a miss (the old
        record-at-a-time path issued two syscalls per record); the
        decoded tuple is immutable, so cached blocks are shared between
        readers without copying.
        """
        if self._cache is not None:
            cached = self._cache.get(self.table_id, slot)
            if cached is not None:
                return cached
        start = self._index_offsets[slot]
        stop = (
            self._index_offsets[slot + 1]
            if slot + 1 < len(self._index_offsets)
            else self._data_end
        )
        blob = os.pread(self._fd, stop - start, start)
        records: list[tuple[bytes, "bytes | Tombstone"]] = []
        nbytes = 0
        offset = 0
        limit = stop - start
        while offset < limit:
            key_len, value_len = _RECORD.unpack_from(blob, offset)
            offset += _RECORD.size
            key = blob[offset : offset + key_len]
            offset += key_len
            if value_len == _TOMBSTONE_LEN:
                records.append((key, TOMBSTONE))
                nbytes += key_len + RECORD_OVERHEAD
            else:
                records.append((key, blob[offset : offset + value_len]))
                offset += value_len
                nbytes += key_len + value_len + RECORD_OVERHEAD
        block = tuple(records)
        if self._cache is not None and fill_cache and not self.defunct:
            self._cache.put(self.table_id, slot, block, nbytes)
        return block

    def items(
        self, *, fill_cache: bool = True
    ) -> Iterator[tuple[bytes, "bytes | Tombstone"]]:
        """Every record in key order (tombstones included).

        Pass ``fill_cache=False`` for one-shot bulk readers (compaction):
        a full-table sweep would otherwise evict the hot working set to
        cache blocks it will never read again.
        """
        for slot in range(len(self._index_offsets)):
            yield from self._load_block(slot, fill_cache=fill_cache)

    def items_from(
        self, start: bytes, *, fill_cache: bool = True
    ) -> Iterator[tuple[bytes, "bytes | Tombstone"]]:
        """Records with ``key >= start`` in key order (sparse-index seek)."""
        if not self._index_keys:
            return
        first = max(0, bisect_right(self._index_keys, start) - 1)
        for slot in range(first, len(self._index_offsets)):
            for key, value in self._load_block(slot, fill_cache=fill_cache):
                if key >= start:
                    yield key, value

    # ------------------------------------------------------------------
    @property
    def min_key(self) -> bytes | None:
        return self._index_keys[0] if self._index_keys else None

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def unlink(self) -> None:
        """Close and remove the table file (after compaction replaced it)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __len__(self) -> int:
        return self.record_count

    def __repr__(self) -> str:
        return (
            f"<SSTable path={self.path.name!r} records={self.record_count} "
            f"bytes={self.size_bytes}>"
        )
