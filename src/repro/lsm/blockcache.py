"""Block cache: decoded SSTable blocks kept hot in memory.

The paper's central argument is that a cache *above* a slow substrate
closes the latency gap (UStore makes the same move inside the engine:
an in-memory cache over immutable on-disk pages is what makes a
log-structured design read-competitive).  This module applies that to
our own SSTables: without it every point read and every prefix scan
issues at least one ``pread`` per probed table; with it a hot working
set is served entirely from memory.

A **block** is the decoded run of records between two adjacent sparse-
index entries -- exactly the unit a point read already scans -- so the
cache key is ``(table_id, index_slot)``.  SSTables are immutable, which
makes the cache trivially coherent: a block never changes, it only
becomes irrelevant when compaction retires its table, at which point the
store calls :meth:`BlockCache.invalidate` for that table id.

One cache is shared by every table of a store (byte budget
``block_cache_bytes``), evicting least-recently-used blocks once the
budget is exceeded.  Thread-safe: readers probe it without holding the
store lock.

Metrics (when an :class:`~repro.obs.Observability` bundle is attached):
``lsm.block_cache.hits`` / ``lsm.block_cache.misses`` /
``lsm.block_cache.evictions`` counters and the ``lsm.block_cache.bytes``
gauge.  The same figures are always available via :meth:`stats` for the
``repro lsm stats`` CLI row.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from itertools import count
from typing import Any

from ..errors import ConfigurationError
from ..obs import Observability, resolve_obs

__all__ = ["BlockCache"]

#: Fixed per-record overhead charged against the cache budget (tuple and
#: object headers), so many-tiny-record blocks do not look free.
RECORD_OVERHEAD = 48

_table_ids = count(1)


def next_table_id() -> int:
    """Process-unique id for one opened SSTable (cache-key namespace)."""
    return next(_table_ids)


class BlockCache:
    """Thread-safe LRU of decoded record blocks, bounded by bytes."""

    def __init__(
        self,
        capacity_bytes: int,
        *,
        obs: Observability | None = None,
    ) -> None:
        if capacity_bytes < 1:
            raise ConfigurationError("block cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.obs = resolve_obs(obs)
        self._lock = threading.Lock()
        # (table_id, slot) -> (block, nbytes); move-to-end on hit = LRU.
        self._blocks: "OrderedDict[tuple[int, int], tuple[Any, int]]" = OrderedDict()
        self._by_table: dict[int, set[int]] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def get(self, table_id: int, slot: int) -> Any:
        """The cached block, or ``None`` (which counts as a miss)."""
        with self._lock:
            entry = self._blocks.get((table_id, slot))
            if entry is None:
                self._misses += 1
            else:
                self._hits += 1
                self._blocks.move_to_end((table_id, slot))
        if self.obs.enabled:
            self.obs.inc(
                "lsm.block_cache.hits" if entry is not None else "lsm.block_cache.misses"
            )
        return entry[0] if entry is not None else None

    def put(self, table_id: int, slot: int, block: Any, nbytes: int) -> None:
        """Insert *block*; evicts LRU entries past the byte budget.

        A single block larger than the whole budget is not cached at all
        (admitting it would evict everything for one entry that cannot
        even fit).
        """
        if nbytes > self.capacity_bytes:
            return
        evicted = 0
        with self._lock:
            key = (table_id, slot)
            previous = self._blocks.pop(key, None)
            if previous is not None:
                self._bytes -= previous[1]
            self._blocks[key] = (block, nbytes)
            self._by_table.setdefault(table_id, set()).add(slot)
            self._bytes += nbytes
            while self._bytes > self.capacity_bytes:
                (old_table, old_slot), (_block, old_bytes) = self._blocks.popitem(last=False)
                self._bytes -= old_bytes
                self._evictions += 1
                evicted += 1
                slots = self._by_table.get(old_table)
                if slots is not None:
                    slots.discard(old_slot)
                    if not slots:
                        del self._by_table[old_table]
        if self.obs.enabled:
            if evicted:
                self.obs.inc("lsm.block_cache.evictions", evicted)
            self.obs.gauge("lsm.block_cache.bytes").set(self._bytes)

    def invalidate(self, table_id: int) -> int:
        """Drop every block of a retired table; returns blocks dropped."""
        with self._lock:
            slots = self._by_table.pop(table_id, None)
            if not slots:
                return 0
            for slot in slots:
                _block, nbytes = self._blocks.pop((table_id, slot))
                self._bytes -= nbytes
            dropped = len(slots)
        if self.obs.enabled:
            self.obs.gauge("lsm.block_cache.bytes").set(self._bytes)
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._blocks.clear()
            self._by_table.clear()
            self._bytes = 0
        if self.obs.enabled:
            self.obs.gauge("lsm.block_cache.bytes").set(0)

    # ------------------------------------------------------------------
    @property
    def bytes_used(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._blocks)

    def stats(self) -> dict[str, int | float]:
        """Hit/size figures for ``store.stats()`` and the CLI."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "capacity_bytes": self.capacity_bytes,
                "bytes": self._bytes,
                "blocks": len(self._blocks),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }

    def __repr__(self) -> str:
        return (
            f"<BlockCache blocks={len(self._blocks)} bytes={self._bytes}"
            f"/{self.capacity_bytes}>"
        )
