"""Adaptive compression: skip the codec when it cannot pay for itself.

The paper (Section III): "since compression entails CPU overhead, the space
saved by compression needs to be balanced against the increase in CPU
cycles".  Two cases where compression is pure loss:

* tiny payloads -- framing overhead exceeds any saving;
* incompressible payloads (already-compressed media, ciphertext, random
  data) -- full CPU cost, output *larger* than input.

:class:`AdaptiveCompressor` wraps any codec and handles both: payloads
below ``min_size`` are stored raw, and compressed output is kept only when
it beats ``min_ratio``.  A one-byte header marks each payload raw (0x00) or
compressed (0x01), so decompression is self-describing.
"""

from __future__ import annotations

from ..errors import CompressionError, ConfigurationError
from .interface import Compressor

__all__ = ["AdaptiveCompressor"]

_RAW = b"\x00"
_COMPRESSED = b"\x01"


class AdaptiveCompressor(Compressor):
    """Only-when-it-helps wrapper around another compressor."""

    def __init__(
        self,
        inner: Compressor,
        *,
        min_size: int = 64,
        min_ratio: float = 0.9,
    ) -> None:
        """Wrap *inner*.

        :param min_size: payloads smaller than this skip compression.
        :param min_ratio: compressed output is kept only when
            ``len(out) <= min_ratio * len(in)``.
        """
        if min_size < 0:
            raise ConfigurationError("min_size must be non-negative")
        if not 0.0 < min_ratio <= 1.0:
            raise ConfigurationError("min_ratio must be in (0, 1]")
        self._inner = inner
        self._min_size = min_size
        self._min_ratio = min_ratio
        self.name = f"adaptive({inner.name})"
        #: payloads stored raw / compressed (diagnostics)
        self.raw_count = 0
        self.compressed_count = 0

    # ------------------------------------------------------------------
    def compress(self, data: bytes) -> bytes:
        if len(data) >= self._min_size:
            compressed = self._inner.compress(data)
            if len(compressed) <= self._min_ratio * len(data):
                self.compressed_count += 1
                return _COMPRESSED + compressed
        self.raw_count += 1
        return _RAW + data

    def decompress(self, data: bytes) -> bytes:
        if not data:
            raise CompressionError("empty adaptive-compression payload")
        marker, body = data[:1], data[1:]
        if marker == _RAW:
            return body
        if marker == _COMPRESSED:
            return self._inner.decompress(body)
        raise CompressionError(f"unknown adaptive marker 0x{data[0]:02x}")
