"""Client-side compression (paper Sections I-III, Figure 21).

Compression at the client shrinks what crosses the network, what the server
stores (and bills for), and what the cache holds.  The paper benchmarks gzip
(Figure 21); this package provides a pluggable
:class:`~repro.compression.interface.Compressor` interface with gzip, zlib,
and LZMA codecs from the standard library.
"""

from .interface import Compressor, NullCompressor
from .codecs import GzipCompressor, LzmaCompressor, ZlibCompressor
from .adaptive import AdaptiveCompressor

__all__ = [
    "Compressor",
    "NullCompressor",
    "GzipCompressor",
    "ZlibCompressor",
    "LzmaCompressor",
    "AdaptiveCompressor",
]
