"""Compressor interface: byte-level, lossless, self-describing outputs."""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["Compressor", "NullCompressor"]


class Compressor(ABC):
    """Lossless byte compression.

    ``decompress(compress(d)) == d`` must hold for all byte strings, and
    corrupt inputs to ``decompress`` must raise
    :class:`~repro.errors.CompressionError`.
    """

    #: Stable identifier used in reports and pipeline descriptions.
    name: str = "abstract"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress *data* (output may be larger for incompressible input)."""

    @abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Invert :meth:`compress`."""

    def ratio(self, data: bytes) -> float:
        """Convenience: compressed/original size for *data* (1.0 for empty)."""
        if not data:
            return 1.0
        return len(self.compress(data)) / len(data)


class NullCompressor(Compressor):
    """Identity transform; the "compression disabled" pipeline element."""

    name = "null"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data
