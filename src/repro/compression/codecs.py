"""Standard-library compression codecs behind the Compressor interface."""

from __future__ import annotations

import gzip
import lzma
import zlib

from ..errors import CompressionError, ConfigurationError
from .interface import Compressor

__all__ = ["GzipCompressor", "ZlibCompressor", "LzmaCompressor"]


class GzipCompressor(Compressor):
    """gzip, the codec evaluated in the paper (Figure 21).

    ``mtime=0`` keeps outputs deterministic, so equal plaintexts compress to
    equal payloads and content-derived version tokens stay stable.
    """

    name = "gzip"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ConfigurationError("gzip level must be in 0..9")
        self._level = level

    def compress(self, data: bytes) -> bytes:
        return gzip.compress(data, compresslevel=self._level, mtime=0)

    def decompress(self, data: bytes) -> bytes:
        try:
            return gzip.decompress(data)
        except (OSError, EOFError, zlib.error) as exc:
            raise CompressionError(f"invalid gzip stream: {exc}") from exc


class ZlibCompressor(Compressor):
    """Raw zlib: same DEFLATE engine as gzip, lower framing overhead."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ConfigurationError("zlib level must be in 0..9")
        self._level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, level=self._level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise CompressionError(f"invalid zlib stream: {exc}") from exc


class LzmaCompressor(Compressor):
    """LZMA/XZ: much higher ratios, much higher CPU cost.

    Useful in the compression-tradeoff ablation as the opposite corner of
    the speed/ratio space from gzip.
    """

    name = "lzma"

    def __init__(self, preset: int = 6) -> None:
        if not 0 <= preset <= 9:
            raise ConfigurationError("lzma preset must be in 0..9")
        self._preset = preset

    def compress(self, data: bytes) -> bytes:
        return lzma.compress(data, preset=self._preset)

    def decompress(self, data: bytes) -> bytes:
        try:
            return lzma.decompress(data)
        except lzma.LZMAError as exc:
            raise CompressionError(f"invalid lzma stream: {exc}") from exc
