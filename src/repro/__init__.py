"""repro -- enhanced data store clients and a Universal Data Store Manager.

A from-scratch Python reproduction of "Providing Enhanced Functionality for
Data Store Clients" (Arun Iyengar, ICDE 2017): a Data Store Client Library
(DSCL) adding integrated caching, encryption, compression, and delta
encoding to any key-value data store, plus a Universal Data Store Manager
(UDSM) giving applications a common synchronous *and* asynchronous interface
to many heterogeneous stores, with performance monitoring and a workload
generator.

Quickstart::

    from repro import UniversalDataStoreManager, InMemoryStore

    with UniversalDataStoreManager() as udsm:
        udsm.register("mem", InMemoryStore())
        store = udsm.store("mem")
        store.put("greeting", "hello")
        future = udsm.async_store("mem").get("greeting")
        print(future.result())

See README.md for the architecture overview and DESIGN.md for the paper
mapping.
"""

from .errors import (
    CacheError,
    CircuitOpenError,
    CompressionError,
    ConfigurationError,
    DataStoreError,
    DeadlineExceededError,
    DeltaEncodingError,
    EncryptionError,
    KeyNotFoundError,
    SerializationError,
    StoreConnectionError,
    WalPoisonedError,
)
from .serialization import (
    BytesSerializer,
    JsonSerializer,
    PickleSerializer,
    Serializer,
    StringSerializer,
)
from .kv import (
    CLOUD_STORE_1,
    CLOUD_STORE_2,
    NOT_MODIFIED,
    CircuitBreaker,
    CircuitBreakerStore,
    CircuitState,
    CloudStoreProfile,
    Deadline,
    FileSystemStore,
    FlakyStore,
    InMemoryStore,
    KeyValueStore,
    LaggyStore,
    LSMStore,
    NamespacedStore,
    ReadOnlyStore,
    RemoteKeyValueStore,
    ReplicatedStore,
    RetryingStore,
    SimulatedCloudStore,
    SQLStore,
    TransformingStore,
    current_deadline,
    deadline_scope,
)
from .net import CacheClient, CacheServer, LatencyModel, RealClock, ServerHandle, VirtualClock
from .caching import (
    MISS,
    Cache,
    CacheEntry,
    ExpiringCache,
    Freshness,
    InProcessCache,
    KeyValueStoreCache,
    RemoteProcessCache,
    ServeStaleStore,
    TieredCache,
    make_policy,
)
from .security import (
    AesCbcEncryptor,
    AesGcmEncryptor,
    Encryptor,
    RotatingEncryptor,
    derive_key,
    generate_key,
)
from .compression import (
    AdaptiveCompressor,
    Compressor,
    GzipCompressor,
    LzmaCompressor,
    ZlibCompressor,
)
from .obs import (
    NULL_OBS,
    EventLog,
    MetricsRegistry,
    Observability,
    Span,
    TraceCollector,
    Tracer,
    resolve_obs,
)
from .tools import copy_store, verify_stores
from .delta import DeltaCodec, DeltaStoreManager, apply_delta, encode_delta
from .core import DSCL, EnhancedDataStoreClient, ValuePipeline, WritePolicy
from .txn import TwoPhaseCommitCoordinator, atomic_put_many
from .consistency import CoherentClient, InvalidationBus
from .udsm import (
    AsyncKeyValue,
    ListenableFuture,
    MonitoredStore,
    PerformanceMonitor,
    StoreHealth,
    ThreadPool,
    UniversalDataStoreManager,
    WorkloadGenerator,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "DataStoreError",
    "KeyNotFoundError",
    "StoreConnectionError",
    "SerializationError",
    "EncryptionError",
    "CompressionError",
    "DeltaEncodingError",
    "CacheError",
    "ConfigurationError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "WalPoisonedError",
    # serialization
    "Serializer",
    "PickleSerializer",
    "JsonSerializer",
    "BytesSerializer",
    "StringSerializer",
    # stores
    "KeyValueStore",
    "InMemoryStore",
    "FileSystemStore",
    "SQLStore",
    "SimulatedCloudStore",
    "LSMStore",
    "CloudStoreProfile",
    "CLOUD_STORE_1",
    "CLOUD_STORE_2",
    "RemoteKeyValueStore",
    "NamespacedStore",
    "ReadOnlyStore",
    "TransformingStore",
    "NOT_MODIFIED",
    # fault tolerance
    "FlakyStore",
    "LaggyStore",
    "RetryingStore",
    "ReplicatedStore",
    "CircuitBreaker",
    "CircuitBreakerStore",
    "CircuitState",
    "Deadline",
    "deadline_scope",
    "current_deadline",
    "ServeStaleStore",
    "StoreHealth",
    # networking
    "LatencyModel",
    "RealClock",
    "VirtualClock",
    "CacheServer",
    "CacheClient",
    "ServerHandle",
    # caching
    "Cache",
    "MISS",
    "CacheEntry",
    "InProcessCache",
    "RemoteProcessCache",
    "TieredCache",
    "KeyValueStoreCache",
    "ExpiringCache",
    "Freshness",
    "make_policy",
    # security / compression / delta
    "Encryptor",
    "AesGcmEncryptor",
    "AesCbcEncryptor",
    "generate_key",
    "derive_key",
    "RotatingEncryptor",
    "Compressor",
    "GzipCompressor",
    "ZlibCompressor",
    "LzmaCompressor",
    "AdaptiveCompressor",
    "copy_store",
    "verify_stores",
    "DeltaCodec",
    "DeltaStoreManager",
    "encode_delta",
    "apply_delta",
    # core
    "DSCL",
    "ValuePipeline",
    "EnhancedDataStoreClient",
    "WritePolicy",
    # transactions and coherence (paper future work)
    "TwoPhaseCommitCoordinator",
    "atomic_put_many",
    "InvalidationBus",
    "CoherentClient",
    # observability
    "EventLog",
    "Observability",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "TraceCollector",
    "NULL_OBS",
    "resolve_obs",
    # udsm
    "UniversalDataStoreManager",
    "AsyncKeyValue",
    "ListenableFuture",
    "ThreadPool",
    "PerformanceMonitor",
    "MonitoredStore",
    "WorkloadGenerator",
]
