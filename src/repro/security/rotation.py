"""Key rotation for long-lived encrypted data.

Client-side encryption (paper Section I) makes the *client* responsible for
key management, and real deployments must rotate keys without re-encrypting
every stored object at once.  :class:`RotatingEncryptor` implements the
standard envelope: every ciphertext is prefixed with the id of the key that
produced it; encryption always uses the *current* key, decryption accepts
any still-registered key.  Rotation is then:

1. register the new key and make it current (old data stays readable);
2. lazily re-encrypt on write, or sweep with
   :func:`repro.tools.migration.copy_store` and a re-encrypting transform;
3. retire the old key once nothing references it.

Wire format: ``magic 'RK1' | key-id length (1 byte) | key-id utf-8 |
ciphertext``.
"""

from __future__ import annotations

from ..errors import EncryptionError
from .interface import Encryptor

__all__ = ["RotatingEncryptor"]

_MAGIC = b"RK1"


class RotatingEncryptor(Encryptor):
    """Envelope encryptor delegating to per-key-id encryptors."""

    name = "rotating"

    def __init__(self, keys: dict[str, Encryptor], current: str) -> None:
        """Create the envelope.

        :param keys: key id -> encryptor for every key still in service.
        :param current: id of the key used for new encryptions.
        """
        if not keys:
            raise EncryptionError("RotatingEncryptor needs at least one key")
        for key_id in keys:
            self._check_key_id(key_id)
        if current not in keys:
            raise EncryptionError(f"current key {current!r} is not registered")
        self._keys = dict(keys)
        self._current = current

    @staticmethod
    def _check_key_id(key_id: str) -> None:
        encoded = key_id.encode("utf-8")
        if not 1 <= len(encoded) <= 255:
            raise EncryptionError("key ids must be 1-255 encoded bytes")

    # ------------------------------------------------------------------
    @property
    def current_key_id(self) -> str:
        return self._current

    @property
    def key_ids(self) -> list[str]:
        return sorted(self._keys)

    def rotate(self, key_id: str, encryptor: Encryptor | None = None) -> None:
        """Make *key_id* the current key (registering it if supplied)."""
        if encryptor is not None:
            self._check_key_id(key_id)
            self._keys[key_id] = encryptor
        if key_id not in self._keys:
            raise EncryptionError(f"unknown key id {key_id!r}")
        self._current = key_id

    def retire(self, key_id: str) -> None:
        """Remove a key; data encrypted under it becomes unreadable."""
        if key_id == self._current:
            raise EncryptionError("cannot retire the current key")
        if self._keys.pop(key_id, None) is None:
            raise EncryptionError(f"unknown key id {key_id!r}")

    def key_id_of(self, ciphertext: bytes) -> str:
        """The key id a ciphertext was produced under (for sweep tooling)."""
        key_id, _body = self._parse(ciphertext)
        return key_id

    # ------------------------------------------------------------------
    def encrypt(self, plaintext: bytes) -> bytes:
        encoded_id = self._current.encode("utf-8")
        body = self._keys[self._current].encrypt(plaintext)
        return _MAGIC + bytes([len(encoded_id)]) + encoded_id + body

    def decrypt(self, ciphertext: bytes) -> bytes:
        key_id, body = self._parse(ciphertext)
        encryptor = self._keys.get(key_id)
        if encryptor is None:
            raise EncryptionError(
                f"data was encrypted under retired/unknown key {key_id!r}"
            )
        return encryptor.decrypt(body)

    @staticmethod
    def _parse(ciphertext: bytes) -> tuple[str, bytes]:
        if len(ciphertext) < len(_MAGIC) + 2 or not ciphertext.startswith(_MAGIC):
            raise EncryptionError("not a rotating-encryptor envelope")
        id_length = ciphertext[len(_MAGIC)]
        header_end = len(_MAGIC) + 1 + id_length
        if len(ciphertext) < header_end:
            raise EncryptionError("truncated key-id header")
        try:
            key_id = ciphertext[len(_MAGIC) + 1 : header_end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise EncryptionError("corrupt key-id header") from exc
        return key_id, ciphertext[header_end:]
