"""Encryptor interface.

Encryptors transform ``bytes`` to ``bytes``; they sit in the DSCL's value
pipeline between serialization and the store (or cache), so any store and
any cache can hold ciphertext without knowing it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["Encryptor", "NullEncryptor"]


class Encryptor(ABC):
    """Symmetric byte-level encryption.

    Implementations must satisfy ``decrypt(encrypt(p)) == p`` and raise
    :class:`~repro.errors.EncryptionError` on bad keys or corrupt
    ciphertext (never a provider-specific exception).
    """

    #: Stable identifier used in reports and pipeline descriptions.
    name: str = "abstract"

    @abstractmethod
    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt *plaintext*; output includes any IV/nonce/tag needed."""

    @abstractmethod
    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt`."""


class NullEncryptor(Encryptor):
    """Identity transform; the "encryption disabled" pipeline element."""

    name = "null"

    def encrypt(self, plaintext: bytes) -> bytes:
        return plaintext

    def decrypt(self, ciphertext: bytes) -> bytes:
        return ciphertext
