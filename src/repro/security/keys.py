"""Key material helpers."""

from __future__ import annotations

import hashlib
import os

from ..errors import EncryptionError

__all__ = ["generate_key", "derive_key"]

_VALID_KEY_BITS = (128, 192, 256)


def generate_key(bits: int = 128) -> bytes:
    """Generate a random AES key (default 128-bit, matching the paper)."""
    if bits not in _VALID_KEY_BITS:
        raise EncryptionError(f"key size must be one of {_VALID_KEY_BITS}, got {bits}")
    return os.urandom(bits // 8)


def derive_key(
    password: str,
    salt: bytes,
    *,
    bits: int = 128,
    iterations: int = 600_000,
) -> bytes:
    """Derive an AES key from a password with PBKDF2-HMAC-SHA256.

    :param salt: at least 16 random bytes, stored alongside the data.
    :param iterations: PBKDF2 work factor (default per current OWASP
        guidance; lower it only in tests).
    """
    if bits not in _VALID_KEY_BITS:
        raise EncryptionError(f"key size must be one of {_VALID_KEY_BITS}, got {bits}")
    if len(salt) < 8:
        raise EncryptionError("salt must be at least 8 bytes")
    if iterations < 1:
        raise EncryptionError("iterations must be positive")
    return hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"), salt, iterations, bits // 8)
