"""AES encryptors (the paper's Figure 20 configuration: AES, 128-bit keys).

Two modes are provided:

* :class:`AesGcmEncryptor` -- AES-GCM, authenticated encryption.  The right
  default: tampering with cached or stored ciphertext is detected at
  decryption time.
* :class:`AesCbcEncryptor` -- AES-CBC with PKCS#7 padding, the classic mode
  contemporaneous with the paper.  Unauthenticated; provided for fidelity
  and for benchmarking mode overheads.

Both prepend their random IV/nonce to the ciphertext so each output is
self-contained, and both accept 128-, 192-, or 256-bit keys (the paper uses
128-bit).
"""

from __future__ import annotations

import os

from cryptography.exceptions import InvalidTag
from cryptography.hazmat.primitives import padding
from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes
from cryptography.hazmat.primitives.ciphers.aead import AESGCM

from ..errors import EncryptionError
from .interface import Encryptor

__all__ = ["AesGcmEncryptor", "AesCbcEncryptor"]

_VALID_KEY_BYTES = (16, 24, 32)


def _check_key(key: bytes) -> bytes:
    if not isinstance(key, (bytes, bytearray)):
        raise EncryptionError(f"key must be bytes, got {type(key).__name__}")
    if len(key) not in _VALID_KEY_BYTES:
        raise EncryptionError(
            f"AES key must be 16, 24, or 32 bytes, got {len(key)}"
        )
    return bytes(key)


class AesGcmEncryptor(Encryptor):
    """AES-GCM with a random 96-bit nonce per message.

    Wire format: ``nonce (12 bytes) || ciphertext+tag``.
    """

    name = "aes-gcm"
    _NONCE_BYTES = 12

    def __init__(self, key: bytes) -> None:
        self._key = _check_key(key)
        self._aead = AESGCM(self._key)

    def encrypt(self, plaintext: bytes) -> bytes:
        nonce = os.urandom(self._NONCE_BYTES)
        return nonce + self._aead.encrypt(nonce, plaintext, None)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < self._NONCE_BYTES + 16:
            raise EncryptionError("ciphertext too short to contain nonce and tag")
        nonce, body = ciphertext[: self._NONCE_BYTES], ciphertext[self._NONCE_BYTES:]
        try:
            return self._aead.decrypt(nonce, body, None)
        except InvalidTag as exc:
            raise EncryptionError("authentication failed: wrong key or corrupt data") from exc


class AesCbcEncryptor(Encryptor):
    """AES-CBC + PKCS#7, the paper-era mode.  Unauthenticated.

    Wire format: ``iv (16 bytes) || ciphertext``.
    """

    name = "aes-cbc"
    _IV_BYTES = 16

    def __init__(self, key: bytes) -> None:
        self._key = _check_key(key)

    def encrypt(self, plaintext: bytes) -> bytes:
        iv = os.urandom(self._IV_BYTES)
        padder = padding.PKCS7(128).padder()
        padded = padder.update(plaintext) + padder.finalize()
        encryptor = Cipher(algorithms.AES(self._key), modes.CBC(iv)).encryptor()
        return iv + encryptor.update(padded) + encryptor.finalize()

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < 2 * self._IV_BYTES or len(ciphertext) % 16:
            raise EncryptionError("ciphertext length is not a valid CBC stream")
        iv, body = ciphertext[: self._IV_BYTES], ciphertext[self._IV_BYTES:]
        decryptor = Cipher(algorithms.AES(self._key), modes.CBC(iv)).decryptor()
        padded = decryptor.update(body) + decryptor.finalize()
        unpadder = padding.PKCS7(128).unpadder()
        try:
            return unpadder.update(padded) + unpadder.finalize()
        except ValueError as exc:
            raise EncryptionError("bad padding: wrong key or corrupt data") from exc
