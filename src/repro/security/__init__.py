"""Client-side encryption (paper Sections I-III).

The paper argues encryption belongs in the *client* because servers may lack
it, channels may be insecure, and providers may simply not be trustworthy --
and it evaluates AES with 128-bit keys (Figure 20).  This package provides a
pluggable :class:`~repro.security.interface.Encryptor` interface with
AES-128-GCM (authenticated, the recommended default) and AES-128-CBC
(closest to the paper's configuration) implementations, plus key generation
and password-based key derivation helpers.
"""

from .interface import Encryptor, NullEncryptor
from .aes import AesCbcEncryptor, AesGcmEncryptor
from .keys import derive_key, generate_key
from .rotation import RotatingEncryptor

__all__ = [
    "Encryptor",
    "NullEncryptor",
    "AesGcmEncryptor",
    "AesCbcEncryptor",
    "RotatingEncryptor",
    "generate_key",
    "derive_key",
]
