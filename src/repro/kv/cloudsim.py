"""Simulated cloud object stores (the paper's Cloud Store 1 and 2).

The paper evaluates two commercial cloud data stores whose identities are not
disclosed and which are reached over a WAN.  This module substitutes a
*simulated* cloud store: a durable in-memory object store behind a
:class:`~repro.net.latency.LatencyModel`.  The substitution preserves the
property the evaluation exercises -- high, variable, size-dependent request
latency that dwarfs local-store latency -- while running entirely offline.

Two bundled profiles mirror the paper's observations (Section V):

* :data:`CLOUD_STORE_1` -- slowest and by far the most variable (the paper
  attributes this to resource contention at the provider).
* :data:`CLOUD_STORE_2` -- faster and steadier, but still WAN-bound.

Conditional gets (:meth:`SimulatedCloudStore.get_if_modified`) transfer only
a version token when the value is unchanged, so revalidation is cheap -- the
behaviour the paper's If-Modified-Since discussion relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..net.latency import Clock, LatencyModel, RealClock
from ..serialization import Serializer, default_serializer
from .interface import NOT_MODIFIED, KeyValueStore, NotModified, content_version
from .memory import InMemoryStore

__all__ = ["CloudStoreProfile", "SimulatedCloudStore", "CLOUD_STORE_1", "CLOUD_STORE_2"]


@dataclass(frozen=True)
class CloudStoreProfile:
    """Latency characteristics of a simulated cloud store.

    Reads and writes get separate RTTs because the paper measures writes as
    consistently slower (cloud writes must be acknowledged durably).
    """

    name: str
    read_rtt_ms: float
    write_rtt_ms: float
    bandwidth_mbps: float
    jitter_sigma: float

    def models(self, *, seed: int | None = 0, time_scale: float = 1.0) -> tuple[LatencyModel, LatencyModel]:
        """Build (read, write) latency models for this profile."""
        read = LatencyModel(
            self.read_rtt_ms,
            self.bandwidth_mbps,
            jitter_sigma=self.jitter_sigma,
            seed=seed,
            time_scale=time_scale,
        )
        write = LatencyModel(
            self.write_rtt_ms,
            self.bandwidth_mbps,
            jitter_sigma=self.jitter_sigma,
            seed=None if seed is None else seed + 1,
            time_scale=time_scale,
        )
        return read, write


#: Paper's Cloud Store 1: highest latency, pronounced run-to-run variability.
CLOUD_STORE_1 = CloudStoreProfile(
    name="cloud1", read_rtt_ms=80.0, write_rtt_ms=140.0, bandwidth_mbps=20.0, jitter_sigma=0.45
)

#: Paper's Cloud Store 2: faster and steadier than Cloud Store 1, still remote.
CLOUD_STORE_2 = CloudStoreProfile(
    name="cloud2", read_rtt_ms=40.0, write_rtt_ms=70.0, bandwidth_mbps=40.0, jitter_sigma=0.15
)


class SimulatedCloudStore(KeyValueStore):
    """A :class:`KeyValueStore` that behaves like a distant cloud service.

    Values are serialized on ``put`` (their wire size drives the simulated
    transfer time), held in an inner in-memory object store, and deserialized
    on ``get``.  Every operation sleeps the model-generated delay on the
    configured clock; pass a :class:`~repro.net.latency.VirtualClock` in unit
    tests to avoid real sleeping while still accounting simulated time.
    """

    def __init__(
        self,
        profile: CloudStoreProfile = CLOUD_STORE_2,
        *,
        name: str | None = None,
        clock: Clock | None = None,
        serializer: Serializer | None = None,
        seed: int | None = 0,
        time_scale: float = 1.0,
    ) -> None:
        self.profile = profile
        self.name = name if name is not None else profile.name
        self.clock = clock if clock is not None else RealClock()
        self.time_scale = time_scale
        self._serializer = serializer if serializer is not None else default_serializer()
        self._read_model, self._write_model = profile.models(seed=seed, time_scale=time_scale)
        # The backing store holds raw serialized payloads (BytesSerializer
        # semantics) so size accounting is exact.
        self._backing = InMemoryStore(name=f"{self.name}-backing", serializer=None)
        #: simulated seconds consumed by this store's operations.
        self.simulated_seconds = 0.0

    # ------------------------------------------------------------------
    def _charge_read(self, payload_bytes: int) -> None:
        self.simulated_seconds += self._read_model.apply(self.clock, payload_bytes)

    def _charge_write(self, payload_bytes: int) -> None:
        self.simulated_seconds += self._write_model.apply(self.clock, payload_bytes)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        payload: bytes = self._backing.get(key)
        self._charge_read(len(payload))
        return self._serializer.loads(payload)

    def get_with_version(self, key: str) -> tuple[Any, str]:
        payload: bytes = self._backing.get(key)
        self._charge_read(len(payload))
        return self._serializer.loads(payload), content_version(payload)

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        """Conditional get: a match costs one RTT but transfers no payload."""
        payload: bytes = self._backing.get(key)
        current = content_version(payload)
        if current == version:
            self._charge_read(0)
            return NOT_MODIFIED
        self._charge_read(len(payload))
        return self._serializer.loads(payload), current

    def put(self, key: str, value: Any) -> None:
        self.put_with_version(key, value)

    def put_with_version(self, key: str, value: Any) -> str:
        payload = self._serializer.dumps(value)
        self._charge_write(len(payload))
        self._backing.put(key, payload)
        return content_version(payload)

    def delete(self, key: str) -> bool:
        self._charge_write(0)
        return self._backing.delete(key)

    def contains(self, key: str) -> bool:
        self._charge_read(0)
        return self._backing.contains(key)

    def keys(self) -> Iterator[str]:
        self._charge_read(0)
        return self._backing.keys()

    def size(self) -> int:
        self._charge_read(0)
        return self._backing.size()

    def clear(self) -> int:
        self._charge_write(0)
        return self._backing.clear()

    def close(self) -> None:
        self._backing.close()

    def native(self) -> InMemoryStore:
        """The backing object store (diagnostics / test inspection)."""
        return self._backing
