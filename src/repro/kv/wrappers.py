"""Composable wrappers over any :class:`~repro.kv.interface.KeyValueStore`.

Because every feature in the UDSM is written against the key-value interface,
cross-cutting behaviours can be added by wrapping rather than by modifying
backends.  These wrappers are used throughout the library and are public API:

* :class:`NamespacedStore`  -- prefix isolation, so several logical stores
  (e.g. application data and persisted monitoring records) can share one
  physical backend without key collisions.
* :class:`ReadOnlyStore`    -- rejects mutation; useful for handing a store
  to untrusted analysis code.
* :class:`TransformingStore`-- applies an encode/decode pair (encryption,
  compression, any codec) around the inner store, which is the "loosely
  coupled" DSCL integration style from Section II.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Mapping

from ..errors import DataStoreError
from .interface import KeyValueStore, NotModified

__all__ = ["NamespacedStore", "ReadOnlyStore", "TransformingStore"]


class _DelegatingStore(KeyValueStore):
    """Shared plumbing: forward everything to ``self._inner`` unchanged."""

    def __init__(self, inner: KeyValueStore, name: str | None = None) -> None:
        self._inner = inner
        self.name = name if name is not None else inner.name

    @property
    def inner(self) -> KeyValueStore:
        """The wrapped store."""
        return self._inner

    def get(self, key: str) -> Any:
        return self._inner.get(key)

    def put(self, key: str, value: Any) -> None:
        self._inner.put(key, value)

    def delete(self, key: str) -> bool:
        return self._inner.delete(key)

    def keys(self) -> Iterator[str]:
        return self._inner.keys()

    def keys_with_prefix(self, prefix: str) -> Iterator[str]:
        return self._inner.keys_with_prefix(prefix)

    def contains(self, key: str) -> bool:
        return self._inner.contains(key)

    def size(self) -> int:
        return self._inner.size()

    def get_with_version(self, key: str) -> tuple[Any, str]:
        return self._inner.get_with_version(key)

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        return self._inner.get_if_modified(key, version)

    def put_with_version(self, key: str, value: Any) -> str | None:
        return self._inner.put_with_version(key, value)

    def close(self) -> None:
        self._inner.close()

    def native(self) -> Any:
        return self._inner.native()


class NamespacedStore(_DelegatingStore):
    """Key-prefix isolation over a shared backend."""

    def __init__(self, inner: KeyValueStore, namespace: str, *, separator: str = ":") -> None:
        if not namespace:
            raise DataStoreError("namespace must be non-empty")
        super().__init__(inner, name=f"{inner.name}/{namespace}")
        self._prefix = namespace + separator

    def _wrap(self, key: str) -> str:
        return self._prefix + key

    def _unwrap(self, stored_key: str) -> str:
        return stored_key[len(self._prefix):]

    def get(self, key: str) -> Any:
        return self._inner.get(self._wrap(key))

    def put(self, key: str, value: Any) -> None:
        self._inner.put(self._wrap(key), value)

    def delete(self, key: str) -> bool:
        return self._inner.delete(self._wrap(key))

    def contains(self, key: str) -> bool:
        return self._inner.contains(self._wrap(key))

    def keys(self) -> Iterator[str]:
        for stored_key in self._inner.keys_with_prefix(self._prefix):
            yield self._unwrap(stored_key)

    def keys_with_prefix(self, prefix: str) -> Iterator[str]:
        for stored_key in self._inner.keys_with_prefix(self._prefix + prefix):
            yield self._unwrap(stored_key)

    def size(self) -> int:
        return sum(1 for _ in self.keys())

    def get_with_version(self, key: str) -> tuple[Any, str]:
        return self._inner.get_with_version(self._wrap(key))

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        return self._inner.get_if_modified(self._wrap(key), version)

    def put_with_version(self, key: str, value: Any) -> str | None:
        return self._inner.put_with_version(self._wrap(key), value)

    def clear(self) -> int:
        return self._inner.delete_many([self._wrap(key) for key in self.keys()])

    def close(self) -> None:
        # Deliberately do NOT close the shared backend: other namespaces
        # may still be using it.  The owner of the backend closes it.
        pass


class ReadOnlyStore(_DelegatingStore):
    """Rejects every mutating operation with :class:`DataStoreError`."""

    def put(self, key: str, value: Any) -> None:
        raise DataStoreError(f"store {self.name!r} is read-only")

    def put_with_version(self, key: str, value: Any) -> str | None:
        raise DataStoreError(f"store {self.name!r} is read-only")

    def put_many(self, items: Mapping[str, Any]) -> None:
        raise DataStoreError(f"store {self.name!r} is read-only")

    def delete(self, key: str) -> bool:
        raise DataStoreError(f"store {self.name!r} is read-only")

    def clear(self) -> int:
        raise DataStoreError(f"store {self.name!r} is read-only")


class TransformingStore(_DelegatingStore):
    """Applies ``encode`` on the write path and ``decode`` on the read path.

    ``decode(encode(v))`` must equal ``v``.  This is how the DSCL's loosely
    coupled integration attaches encryption or compression to an unmodified
    store: the application writes plaintext values, the inner store only
    ever sees transformed ones.

    Version tokens are computed by the inner store over the *transformed*
    value, which is still correct for revalidation (equal plaintexts encode
    to equal payloads for the deterministic codecs used on this path;
    randomised codecs such as AES-GCM change the token on every write, which
    degrades revalidation to a plain fetch but never returns stale data).
    """

    def __init__(
        self,
        inner: KeyValueStore,
        encode: Callable[[Any], Any],
        decode: Callable[[Any], Any],
        name: str | None = None,
    ) -> None:
        super().__init__(inner, name=name if name is not None else f"{inner.name}+codec")
        self._encode = encode
        self._decode = decode

    def get(self, key: str) -> Any:
        return self._decode(self._inner.get(key))

    def put(self, key: str, value: Any) -> None:
        self._inner.put(key, self._encode(value))

    def put_with_version(self, key: str, value: Any) -> str | None:
        return self._inner.put_with_version(key, self._encode(value))

    def get_with_version(self, key: str) -> tuple[Any, str]:
        value, version = self._inner.get_with_version(key)
        return self._decode(value), version

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        result = self._inner.get_if_modified(key, version)
        if isinstance(result, NotModified):
            return result
        value, new_version = result
        return self._decode(value), new_version
