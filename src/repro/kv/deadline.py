"""Deadline budgets: one time allowance for a whole operation tree.

Per-attempt timeouts compose badly: a retry policy with three attempts and
a 30-second socket timeout can hold a caller hostage for minutes, which is
exactly the tail behaviour the paper's evaluation shows for its misbehaving
cloud store.  A :class:`Deadline` is the caller's *total* allowance; every
layer underneath -- retries, replica failover, hedges, socket waits --
derives its own per-attempt timeout from what remains, so the operation as
a whole can never exceed the budget regardless of how many attempts the
layers make.

Propagation is ambient, via :mod:`contextvars`, so the budget flows through
existing call chains (including wrapper stores that know nothing about it)
without threading a parameter through every signature::

    from repro.kv.deadline import deadline_scope

    with deadline_scope(0.250):          # this get(), retries included,
        client.get("user:42")            # is bounded by 250 ms

Layers that consume the budget (:class:`~repro.kv.resilience.RetryingStore`,
:class:`~repro.kv.resilience.ReplicatedStore`,
:class:`~repro.net.client.CacheClient`) raise
:class:`~repro.errors.DeadlineExceededError` once it is gone and count the
expiry as ``kv.deadline.expired``.  Scopes nest: an inner scope can only
*tighten* the budget, never extend what an outer caller allowed.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from ..errors import ConfigurationError, DeadlineExceededError

__all__ = ["Deadline", "deadline_scope", "current_deadline"]


class Deadline:
    """An absolute point in time by which an operation must finish.

    Immutable once created; share one instance across every attempt of an
    operation so they all drain the same budget.  The *clock* is injectable
    (monotonic seconds) so tests can expire deadlines without sleeping.
    """

    __slots__ = ("timeout", "_clock", "_expires_at")

    def __init__(
        self, timeout: float, *, clock: Callable[[], float] = time.monotonic
    ) -> None:
        """Start a budget of *timeout* seconds from now."""
        if timeout < 0:
            raise ConfigurationError("deadline timeout must be non-negative")
        self.timeout = timeout
        self._clock = clock
        self._expires_at = clock() + timeout

    # ------------------------------------------------------------------
    def remaining(self) -> float:
        """Seconds left in the budget (negative once exceeded)."""
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        if self.expired:
            raise DeadlineExceededError(
                f"{what} exceeded its {self.timeout:.3f}s deadline"
            )

    def cap(self, timeout: float | None) -> float:
        """*timeout* reduced to the remaining budget (never negative).

        The per-attempt timeout derivation: a socket (or wait) may use its
        configured timeout or what is left of the budget, whichever is
        smaller.  ``None`` means "no per-attempt preference" and yields the
        remaining budget itself.
        """
        remaining = max(0.0, self.remaining())
        return remaining if timeout is None else min(timeout, remaining)

    def __repr__(self) -> str:
        return f"<Deadline timeout={self.timeout:.3f}s remaining={self.remaining():.3f}s>"


#: Ambient deadline for the current logical operation (per-thread/context).
_CURRENT: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro-deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The ambient :class:`Deadline`, or ``None`` when no budget is set."""
    return _CURRENT.get()


@contextmanager
def deadline_scope(
    timeout: "float | Deadline",
    *,
    clock: Callable[[], float] = time.monotonic,
) -> Iterator[Deadline]:
    """Set the ambient deadline for the enclosed block.

    Accepts a timeout in seconds (a fresh :class:`Deadline` is started) or
    an existing :class:`Deadline` to install.  Nested scopes only tighten:
    when an outer budget has *less* time remaining than the requested
    timeout, the effective deadline is the outer one's remaining budget --
    an inner layer can never grant itself more time than its caller allowed.
    """
    if isinstance(timeout, Deadline):
        deadline = timeout
    else:
        outer = _CURRENT.get()
        if outer is not None:
            timeout = min(timeout, max(0.0, outer.remaining()))
        deadline = Deadline(timeout, clock=clock)
    token = _CURRENT.set(deadline)
    try:
        yield deadline
    finally:
        _CURRENT.reset(token)
