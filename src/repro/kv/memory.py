"""In-memory key-value store.

The simplest :class:`~repro.kv.interface.KeyValueStore`: a thread-safe dict.
It is the reference implementation for the contract tests, the storage engine
behind :class:`~repro.kv.cloudsim.SimulatedCloudStore`, and a convenient
fixture for examples.

Values are stored serialized by default so that the store has by-value
semantics like every other backend (mutating an object after ``put`` must not
mutate the stored copy), and so that content-derived version tokens are
available.  Pass ``serializer=None`` to store raw object references instead,
which is faster but shares the aliasing caveat the paper discusses for
in-process caches.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Iterator

from ..errors import KeyNotFoundError, StoreClosedError
from ..serialization import Serializer, default_serializer
from .interface import KeyValueStore, content_version

__all__ = ["InMemoryStore"]


class InMemoryStore(KeyValueStore):
    """Thread-safe dictionary-backed store with by-value semantics."""

    def __init__(
        self,
        name: str = "memory",
        *,
        serializer: Serializer | None | type(...) = ...,
    ) -> None:
        """Create an empty store.

        :param name: store name used in monitoring output.
        :param serializer: how values are kept internally.  The default
            (ellipsis) means "use the library default (pickle)"; pass an
            explicit ``None`` to store raw references with no copying.
        """
        self.name = name
        self._serializer: Serializer | None
        if serializer is ...:
            self._serializer = default_serializer()
        else:
            self._serializer = serializer
        self._data: dict[str, Any] = {}
        self._versions: dict[str, str] = {}
        self._ref_revision = 0
        self._lock = threading.RLock()
        self._closed = False

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"store {self.name!r} is closed")

    def get(self, key: str) -> Any:
        with self._lock:
            self._check_open()
            try:
                stored = self._data[key]
            except KeyError:
                raise KeyNotFoundError(key, self.name) from None
        if self._serializer is None:
            return stored
        return self._serializer.loads(stored)

    def put(self, key: str, value: Any) -> None:
        self.put_with_version(key, value)

    def put_with_version(self, key: str, value: Any) -> str:
        if self._serializer is None:
            payload = value
        else:
            payload = self._serializer.dumps(value)
        with self._lock:
            self._check_open()
            self._data[key] = payload
            if self._serializer is None:
                # No bytes to hash: fall back to a store-wide revision counter.
                self._ref_revision += 1
                version = f"rev-{self._ref_revision}"
            else:
                version = content_version(payload)
            self._versions[key] = version
            return version

    def delete(self, key: str) -> bool:
        with self._lock:
            self._check_open()
            existed = key in self._data
            self._data.pop(key, None)
            self._versions.pop(key, None)
            return existed

    def keys(self) -> Iterator[str]:
        with self._lock:
            self._check_open()
            snapshot = list(self._data.keys())
        return iter(snapshot)

    def get_with_version(self, key: str) -> tuple[Any, str]:
        with self._lock:
            self._check_open()
            try:
                stored = self._data[key]
                version = self._versions[key]
            except KeyError:
                raise KeyNotFoundError(key, self.name) from None
        if self._serializer is None:
            return stored, version
        return self._serializer.loads(stored), version

    def contains(self, key: str) -> bool:
        with self._lock:
            self._check_open()
            return key in self._data

    def size(self) -> int:
        with self._lock:
            self._check_open()
            return len(self._data)

    def clear(self) -> int:
        with self._lock:
            self._check_open()
            count = len(self._data)
            self._data.clear()
            self._versions.clear()
            return count

    def close(self) -> None:
        with self._lock:
            self._closed = True

    # ------------------------------------------------------------------
    def stored_bytes(self, key: str) -> bytes:
        """Return the raw serialized payload for *key* (testing/diagnostics).

        Only available when a serializer is in use.
        """
        with self._lock:
            self._check_open()
            try:
                stored = self._data[key]
            except KeyError:
                raise KeyNotFoundError(key, self.name) from None
        if self._serializer is None:
            return pickle.dumps(stored)
        return stored
