"""Key-value data store substrates.

Every data store in this library -- local, SQL-backed, simulated-cloud, or
remote-process -- implements the common :class:`~repro.kv.interface.KeyValueStore`
contract, which is the Python analogue of the paper's ``KeyValue<K,V>``
interface.  Higher layers (the DSCL, the UDSM, the workload generator) are
written against the interface only, so any store can be substituted for any
other, and features implemented once against the interface (asynchronous
access, monitoring, workload generation) apply to all stores automatically.
"""

from .interface import NOT_MODIFIED, KeyValueStore, NotModified
from .memory import InMemoryStore
from .filesystem import FileSystemStore
from .sqlstore import SQLStore
from .cloudsim import CLOUD_STORE_1, CLOUD_STORE_2, CloudStoreProfile, SimulatedCloudStore
from .remote import RemoteKeyValueStore
from .wrappers import NamespacedStore, ReadOnlyStore, TransformingStore
from .chaos import FlakyStore, LaggyStore, PartitionedStore
from .circuit import CircuitBreaker, CircuitBreakerStore, CircuitState
from .deadline import Deadline, current_deadline, deadline_scope
from .resilience import ReplicatedStore, RetryingStore
from .quorum import (
    AntiEntropyReport,
    MerkleTree,
    QuorumReplicatedStore,
    VersionStamp,
)

# The LSM engine lives in its own package (repro.lsm) but registers here as
# a first-class backend alongside the other stores.  Imported last: its
# modules pull in repro.caching (for the Bloom filter), which in turn reads
# kv submodules defined above.
from ..lsm.store import LSMStore

__all__ = [
    "LSMStore",
    "KeyValueStore",
    "NotModified",
    "NOT_MODIFIED",
    "InMemoryStore",
    "FileSystemStore",
    "SQLStore",
    "SimulatedCloudStore",
    "CloudStoreProfile",
    "CLOUD_STORE_1",
    "CLOUD_STORE_2",
    "RemoteKeyValueStore",
    "NamespacedStore",
    "ReadOnlyStore",
    "TransformingStore",
    "FlakyStore",
    "LaggyStore",
    "PartitionedStore",
    "RetryingStore",
    "ReplicatedStore",
    "QuorumReplicatedStore",
    "MerkleTree",
    "VersionStamp",
    "AntiEntropyReport",
    "CircuitBreaker",
    "CircuitBreakerStore",
    "CircuitState",
    "Deadline",
    "deadline_scope",
    "current_deadline",
]
