"""The common key-value interface (the paper's ``KeyValue<K,V>``).

A key design point of the UDSM (paper Section II.A) is that *every* data
store implements one small key-value interface.  Code written against the
interface -- asynchronous wrappers, performance monitoring, the workload
generator, cache tiering -- then works with every store, and applications can
swap one store for another without source changes.

Keys are strings.  Values are arbitrary Python objects; each backend decides
how to persist them (typically through a pluggable
:class:`~repro.serialization.Serializer`).

Versioning and revalidation
---------------------------
Section III of the paper describes revalidating an expired cached object the
way an HTTP ``If-Modified-Since`` / ETag request does: the client presents a
version token and the server answers either "not modified" or with a fresh
copy.  The interface exposes this through :meth:`KeyValueStore.get_with_version`
and :meth:`KeyValueStore.get_if_modified`.  Version tokens are opaque strings;
all bundled backends derive them from the stored content so tokens stay
comparable across process restarts.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Any, Iterable, Iterator, Mapping

from ..errors import KeyNotFoundError

__all__ = ["KeyValueStore", "NotModified", "NOT_MODIFIED", "content_version"]


class NotModified:
    """Singleton sentinel returned by :meth:`KeyValueStore.get_if_modified`.

    Distinct from ``None`` because ``None`` is a legal stored value.
    """

    _instance: "NotModified | None" = None

    def __new__(cls) -> "NotModified":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<NOT_MODIFIED>"

    def __bool__(self) -> bool:
        return False


#: The singleton "value unchanged since the presented version" sentinel.
NOT_MODIFIED = NotModified()


def content_version(payload: bytes) -> str:
    """Derive an opaque version token from serialized content.

    Content-derived tokens make revalidation work uniformly across backends
    (including ones with no native metadata, like a plain file system) and
    across restarts.  SHA-1 is used for speed; this is a change-detection
    token, not a security boundary.
    """
    return hashlib.sha1(payload).hexdigest()


class KeyValueStore(ABC):
    """Abstract key-value data store.

    Concrete stores must implement the five primitive operations
    (:meth:`get`, :meth:`put`, :meth:`delete`, :meth:`keys`, :meth:`close`)
    plus :meth:`get_with_version`.  Everything else has a default
    implementation in terms of the primitives; backends override the
    defaults only when they can do better (e.g. a SQL backend batching
    ``put_many`` into one transaction).

    Stores are context managers; leaving the ``with`` block closes the store.
    """

    #: Human-readable store name, used in monitoring and reports.
    name: str = "store"

    # ------------------------------------------------------------------
    # Primitive operations
    # ------------------------------------------------------------------
    @abstractmethod
    def get(self, key: str) -> Any:
        """Return the value stored under *key*.

        Raises :class:`~repro.errors.KeyNotFoundError` if absent.
        """

    @abstractmethod
    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key*, replacing any existing value."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove *key*.  Returns ``True`` if it existed."""

    @abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate over all keys currently in the store (no order promised)."""

    @abstractmethod
    def close(self) -> None:
        """Release resources.  Idempotent."""

    # ------------------------------------------------------------------
    # Versioning / revalidation
    # ------------------------------------------------------------------
    @abstractmethod
    def get_with_version(self, key: str) -> tuple[Any, str]:
        """Return ``(value, version_token)`` for *key*.

        The token changes whenever the stored value changes and is stable
        while it does not.  Raises :class:`~repro.errors.KeyNotFoundError`
        if the key is absent.
        """

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        """Conditional get, the paper's If-Modified-Since analogue.

        If the store's current version of *key* equals *version*, returns
        :data:`NOT_MODIFIED` (and, for remote stores, avoids transferring
        the value).  Otherwise returns ``(value, new_version)``.
        """
        value, current = self.get_with_version(key)
        if current == version:
            return NOT_MODIFIED
        return value, current

    def put_with_version(self, key: str, value: Any) -> str | None:
        """Store *value* and return its new version token when cheap to know.

        Write-through caches use the token to keep cached entries
        revalidatable.  The default implementation returns ``None`` (token
        unknown); backends that already compute a content token during
        ``put`` override this to return it.
        """
        self.put(key, value)
        return None

    def check_version(self, key: str, version: str) -> bool:
        """Return ``True`` if the store's version of *key* equals *version*."""
        return self.get_if_modified(key, version) is NOT_MODIFIED

    # ------------------------------------------------------------------
    # Derived operations (override when the backend can batch)
    # ------------------------------------------------------------------
    def get_or_default(self, key: str, default: Any = None) -> Any:
        """Like :meth:`get` but returns *default* instead of raising."""
        try:
            return self.get(key)
        except KeyNotFoundError:
            return default

    def contains(self, key: str) -> bool:
        """Return ``True`` if *key* is present."""
        try:
            self.get(key)
        except KeyNotFoundError:
            return False
        return True

    def get_many(self, keys: Iterable[str]) -> dict[str, Any]:
        """Fetch several keys; absent keys are simply omitted from the result."""
        result: dict[str, Any] = {}
        for key in keys:
            try:
                result[key] = self.get(key)
            except KeyNotFoundError:
                continue
        return result

    def put_many(self, items: Mapping[str, Any]) -> None:
        """Store every ``(key, value)`` pair in *items*."""
        for key, value in items.items():
            self.put(key, value)

    def delete_many(self, keys: Iterable[str]) -> int:
        """Delete several keys; returns how many existed."""
        return sum(1 for key in keys if self.delete(key))

    def keys_with_prefix(self, prefix: str) -> Iterator[str]:
        """Iterate keys starting with *prefix*.

        The default filters :meth:`keys`; backends with indexed key lookup
        (e.g. SQL ``LIKE`` on the primary key) override it to avoid a full
        scan.
        """
        return (key for key in self.keys() if key.startswith(prefix))

    def size(self) -> int:
        """Number of keys currently stored."""
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete everything; returns the number of keys removed."""
        return self.delete_many(list(self.keys()))

    # ------------------------------------------------------------------
    # Native escape hatch
    # ------------------------------------------------------------------
    def native(self) -> Any:
        """Return the backend-specific handle, or ``None`` if there is none.

        The paper stresses that the common interface must not wall users off
        from store-specific features (e.g. SQL queries on a relational
        store).  Backends with a richer native API return it here.
        """
        return None

    # ------------------------------------------------------------------
    # Context-manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "KeyValueStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return self.size()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
