"""File-system key-value store.

One of the five data stores in the paper's evaluation is "a file system on
the client node accessed via standard Java method calls".  This backend is
the Python analogue: each key maps to one file in a root directory, values
pass through a pluggable serializer, and writes are atomic
(write-to-temp + ``os.replace``) so a crash never leaves a torn value.

Keys may contain characters that are not legal in file names, so keys are
encoded with a filesystem-safe scheme (URL-style percent encoding of anything
outside ``[A-Za-z0-9._-]``).  The encoding is injective, so distinct keys
never collide on disk.
"""

from __future__ import annotations

import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Iterator

from ..errors import DataStoreError, KeyNotFoundError, StoreClosedError
from ..fsutil import fsync_dir
from ..serialization import Serializer, default_serializer
from .interface import KeyValueStore, content_version

__all__ = ["FileSystemStore"]

_SAFE_CHARS = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")
_SUFFIX = ".kv"


def _encode_key(key: str) -> str:
    """Encode *key* into a safe, injective file name (without suffix)."""
    out: list[str] = []
    for ch in key:
        if ch in _SAFE_CHARS and ch != "%":
            out.append(ch)
        else:
            for byte in ch.encode("utf-8"):
                out.append(f"%{byte:02X}")
    if not out:
        return "%00EMPTY"
    encoded = "".join(out)
    if encoded.startswith("."):
        # Avoid creating hidden files for keys that begin with a dot.
        encoded = "%2E" + encoded[1:]
    return encoded


def _decode_key(encoded: str) -> str:
    """Invert :func:`_encode_key`."""
    if encoded == "%00EMPTY":
        return ""
    raw = bytearray()
    i = 0
    while i < len(encoded):
        ch = encoded[i]
        if ch == "%":
            raw.extend(bytes.fromhex(encoded[i + 1 : i + 3]))
            i += 3
        else:
            raw.extend(ch.encode("ascii"))
            i += 1
    return raw.decode("utf-8")


class FileSystemStore(KeyValueStore):
    """Key-value store mapping each key to one file under a root directory."""

    def __init__(
        self,
        root: str | os.PathLike[str],
        name: str = "file",
        *,
        serializer: Serializer | None = None,
        fsync: bool = False,
        create: bool = True,
    ) -> None:
        """Open (and by default create) a store rooted at *root*.

        :param root: directory holding the store's files.
        :param serializer: value codec; defaults to pickle.
        :param fsync: if true, ``fsync`` every written file before renaming
            it into place.  Durable but slow; the paper's write-latency
            asymmetry for local stores is visible either way.
        :param create: create *root* if missing.
        """
        self.name = name
        self._root = Path(root)
        self._serializer = serializer if serializer is not None else default_serializer()
        self._fsync = fsync
        self._closed = False
        self._lock = threading.RLock()
        if create:
            self._root.mkdir(parents=True, exist_ok=True)
        elif not self._root.is_dir():
            raise DataStoreError(f"store root {self._root} does not exist")

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"store {self.name!r} is closed")

    def _path_for(self, key: str) -> Path:
        return self._root / (_encode_key(key) + _SUFFIX)

    def _read_payload(self, key: str) -> bytes:
        path = self._path_for(key)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise KeyNotFoundError(key, self.name) from None

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        self._check_open()
        return self._serializer.loads(self._read_payload(key))

    def get_with_version(self, key: str) -> tuple[Any, str]:
        self._check_open()
        payload = self._read_payload(key)
        return self._serializer.loads(payload), content_version(payload)

    def put(self, key: str, value: Any) -> None:
        self.put_with_version(key, value)

    def put_with_version(self, key: str, value: Any) -> str:
        self._check_open()
        payload = self._serializer.dumps(value)
        self._write_payload(key, payload)
        return content_version(payload)

    def _write_payload(self, key: str, payload: bytes) -> None:
        path = self._path_for(key)
        # Atomic replace: write to a temp file in the same directory first.
        fd, tmp_name = tempfile.mkstemp(dir=self._root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                if self._fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp_name, path)
            if self._fsync:
                # The file fsync above makes the *contents* durable; the
                # rename itself is durable only once the directory entry
                # is synced too (POSIX), else power loss can forget it.
                fsync_dir(self._root)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> bool:
        self._check_open()
        try:
            self._path_for(key).unlink()
        except FileNotFoundError:
            return False
        return True

    def keys(self) -> Iterator[str]:
        self._check_open()
        for entry in sorted(self._root.iterdir()):
            if entry.suffix == _SUFFIX and entry.is_file():
                yield _decode_key(entry.name[: -len(_SUFFIX)])

    def contains(self, key: str) -> bool:
        self._check_open()
        return self._path_for(key).is_file()

    def close(self) -> None:
        with self._lock:
            self._closed = True

    def native(self) -> Path:
        """The root directory, for applications that want direct file access."""
        return self._root
