"""Circuit breakers: fail fast against a dead backend, recover by probing.

Retries (:class:`~repro.kv.resilience.RetryingStore`) handle *transient*
faults; when a backend is actually down, retrying every caller multiplies
load on the failing store and makes every caller wait out full timeout
ladders.  A circuit breaker contains the failure instead:

* **closed** -- normal operation; failures are counted against two
  thresholds (consecutive failures, and failure *rate* over a sliding
  window of recent outcomes);
* **open** -- every call is shed immediately with
  :class:`~repro.errors.CircuitOpenError` (no backend contact at all)
  until ``recovery_timeout`` elapses;
* **half-open** -- a bounded number of *probe* calls are let through; if
  ``probe_successes`` of them succeed the circuit closes, any probe
  failure snaps it open again and restarts the recovery clock.

Every transition and every shed call is visible through the ``repro.obs``
plane (``kv.circuit.*`` metrics plus structured ``circuit_*`` events), and
the clock is injectable so the full lifecycle is testable without sleeping.

:class:`CircuitBreakerStore` applies a breaker to any
:class:`~repro.kv.interface.KeyValueStore`; compose it *inside* a
:class:`~repro.kv.resilience.RetryingStore` (``retry(circuit(store))``) so
an open circuit is not retried -- ``CircuitOpenError`` is deliberately not
a :class:`~repro.errors.StoreConnectionError`.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

from ..errors import (
    CircuitOpenError,
    ConfigurationError,
    DataStoreError,
    StoreConnectionError,
)
from ..obs import Observability, resolve_obs
from .interface import KeyValueStore, NotModified
from .wrappers import _DelegatingStore

__all__ = ["CircuitState", "CircuitBreaker", "CircuitBreakerStore"]


class CircuitState(enum.Enum):
    """Breaker position: closed lets traffic flow, open sheds it."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of each state (``kv.circuit.<name>.state``).
_STATE_GAUGE = {CircuitState.CLOSED: 0, CircuitState.HALF_OPEN: 1, CircuitState.OPEN: 2}


class CircuitBreaker:
    """Thread-safe closed -> open -> half-open -> closed state machine.

    Failure accounting is caller-driven: wrap each backend call in
    :meth:`acquire` / :meth:`record_success` / :meth:`record_failure`
    (or use :class:`CircuitBreakerStore`, which does it for you).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        failure_rate_threshold: float | None = None,
        window: int = 20,
        min_calls: int = 10,
        recovery_timeout: float = 30.0,
        probe_successes: int = 1,
        max_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        name: str = "circuit",
        obs: Observability | None = None,
    ) -> None:
        """Configure the thresholds.

        :param failure_threshold: consecutive failures that open the
            circuit (the fast trip for a hard-down backend).
        :param failure_rate_threshold: when set (a fraction in ``(0, 1]``),
            the circuit also opens once at least *min_calls* of the last
            *window* outcomes are recorded and the failing fraction reaches
            the threshold (the slow trip for a degraded backend that still
            answers sometimes).
        :param recovery_timeout: seconds the circuit stays open before the
            first probe is allowed through.
        :param probe_successes: successful probes required to close again.
        :param max_probes: probe calls allowed in flight while half-open;
            everything beyond it is shed like an open circuit.
        :param clock: injectable monotonic clock (tests drive recovery
            without sleeping).
        :param obs: observability bundle; transitions count
            ``kv.circuit.opened`` / ``half_open`` / ``closed``, shed calls
            count ``kv.circuit.rejected``, and the per-breaker gauge
            ``kv.circuit.<name>.state`` tracks the position (0 closed,
            1 half-open, 2 open).  Transitions are also journalled as
            ``circuit_*`` structured events.
        """
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if failure_rate_threshold is not None and not 0 < failure_rate_threshold <= 1:
            raise ConfigurationError("failure_rate_threshold must be within (0, 1]")
        if window < 1 or min_calls < 1:
            raise ConfigurationError("window and min_calls must be at least 1")
        if recovery_timeout < 0:
            raise ConfigurationError("recovery_timeout must be non-negative")
        if probe_successes < 1 or max_probes < 1:
            raise ConfigurationError("probe_successes and max_probes must be >= 1")
        self.name = name
        self._failure_threshold = failure_threshold
        self._rate_threshold = failure_rate_threshold
        self._min_calls = min_calls
        self._recovery_timeout = recovery_timeout
        self._probe_successes_needed = probe_successes
        self._max_probes = max_probes
        self._clock = clock
        self._obs = resolve_obs(obs)
        self._lock = threading.Lock()
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probe_successes = 0
        #: lifetime transition counts (for reports and assertions)
        self.opened = 0
        self.closed = 0
        self.rejected = 0
        if self._obs.enabled:
            self._obs.gauge(f"kv.circuit.{name}.state").set(0)

    # ------------------------------------------------------------------
    @property
    def state(self) -> CircuitState:
        """Current position (advancing open -> half-open when due)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def failure_rate(self) -> float:
        """Failing fraction of the recorded window (0.0 when empty)."""
        with self._lock:
            if not self._outcomes:
                return 0.0
            return sum(self._outcomes) / len(self._outcomes)

    # ------------------------------------------------------------------
    # The call protocol
    # ------------------------------------------------------------------
    def acquire(self) -> None:
        """Reserve permission for one call; raises when the circuit sheds it.

        Every successful ``acquire`` MUST be balanced by exactly one
        :meth:`record_success` or :meth:`record_failure`.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state is CircuitState.CLOSED:
                return
            if (
                self._state is CircuitState.HALF_OPEN
                and self._probes_inflight < self._max_probes
            ):
                self._probes_inflight += 1
                return
            self.rejected += 1
            retry_after = None
            if self._state is CircuitState.OPEN:
                retry_after = max(
                    0.0, self._opened_at + self._recovery_timeout - self._clock()
                )
        if self._obs.enabled:
            self._obs.inc("kv.circuit.rejected")
            self._obs.event("circuit_rejected", breaker=self.name)
        raise CircuitOpenError(self.name, retry_after)

    def record_success(self) -> None:
        """Report that an admitted call succeeded."""
        transition = None
        with self._lock:
            if self._state is CircuitState.HALF_OPEN:
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._probe_successes += 1
                if self._probe_successes >= self._probe_successes_needed:
                    self._transition(CircuitState.CLOSED)
                    transition = CircuitState.CLOSED
            else:
                self._consecutive_failures = 0
                self._outcomes.append(False)
        if transition is not None:
            self._emit_transition(transition)

    def record_failure(self, error: Exception | None = None) -> None:
        """Report that an admitted call failed (a *tracked* failure)."""
        transition = None
        with self._lock:
            if self._state is CircuitState.HALF_OPEN:
                # A failed probe: snap open and restart the recovery clock.
                self._probes_inflight = max(0, self._probes_inflight - 1)
                self._transition(CircuitState.OPEN)
                transition = CircuitState.OPEN
            elif self._state is CircuitState.CLOSED:
                self._consecutive_failures += 1
                self._outcomes.append(True)
                if self._tripped():
                    self._transition(CircuitState.OPEN)
                    transition = CircuitState.OPEN
        if transition is not None:
            self._emit_transition(transition, error=error)

    # ------------------------------------------------------------------
    # Manual overrides (the anomaly engine's preemptive hooks)
    # ------------------------------------------------------------------
    def trip(self, *, reason: str = "manual") -> None:
        """Force the circuit open now, regardless of failure accounting.

        The preemptive hook: :class:`repro.obs.anomaly` trips a breaker the
        moment the metrics plane sees trouble, before callers have eaten
        ``failure_threshold`` real failures.  The recovery clock restarts,
        so the breaker probes its way back to closed exactly as if it had
        opened organically.  Idempotent while already open.
        """
        with self._lock:
            if self._state is CircuitState.OPEN:
                return
            self._transition(CircuitState.OPEN)
        self._emit_transition(CircuitState.OPEN, reason=reason)

    def reset(self, *, reason: str = "manual") -> None:
        """Force the circuit closed and clear failure accounting.

        The revert half of :meth:`trip`: the anomaly engine calls this on
        ``anomaly_cleared``.  If the backend is still sick, the breaker's
        own thresholds will re-open it from real traffic -- reset restores
        the *policy*, not the backend.  Idempotent while already closed.
        """
        with self._lock:
            if self._state is CircuitState.CLOSED:
                self._consecutive_failures = 0
                self._outcomes.clear()
                return
            self._transition(CircuitState.CLOSED)
        self._emit_transition(CircuitState.CLOSED, reason=reason)

    # ------------------------------------------------------------------
    # Internals (callers hold self._lock)
    # ------------------------------------------------------------------
    def _tripped(self) -> bool:
        if self._consecutive_failures >= self._failure_threshold:
            return True
        if self._rate_threshold is None or len(self._outcomes) < self._min_calls:
            return False
        return sum(self._outcomes) / len(self._outcomes) >= self._rate_threshold

    def _maybe_half_open(self) -> None:
        if (
            self._state is CircuitState.OPEN
            and self._clock() - self._opened_at >= self._recovery_timeout
        ):
            self._transition(CircuitState.HALF_OPEN)
            # Emitting outside the lock is not worth the complexity here:
            # gauge/counter updates are cheap and reentrancy-safe.
            self._emit_transition(CircuitState.HALF_OPEN)

    def _transition(self, state: CircuitState) -> None:
        self._state = state
        if state is CircuitState.OPEN:
            self.opened += 1
            self._opened_at = self._clock()
            self._probes_inflight = 0
            self._probe_successes = 0
        elif state is CircuitState.CLOSED:
            self.closed += 1
            self._consecutive_failures = 0
            self._outcomes.clear()
            self._probes_inflight = 0
            self._probe_successes = 0
        elif state is CircuitState.HALF_OPEN:
            self._probe_successes = 0

    def _emit_transition(
        self,
        state: CircuitState,
        *,
        error: Exception | None = None,
        reason: str | None = None,
    ) -> None:
        if not self._obs.enabled:
            return
        metric = {
            CircuitState.OPEN: "kv.circuit.opened",
            CircuitState.HALF_OPEN: "kv.circuit.half_open",
            CircuitState.CLOSED: "kv.circuit.closed",
        }[state]
        self._obs.inc(metric)
        self._obs.gauge(f"kv.circuit.{self.name}.state").set(_STATE_GAUGE[state])
        fields: dict[str, Any] = {"breaker": self.name}
        if error is not None:
            fields["error"] = type(error).__name__
        if reason is not None:
            fields["reason"] = reason
        self._obs.event(f"circuit_{state.name.lower()}", **fields)
        self._obs.emit(f"circuit_{state.name.lower()}", **fields)

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.name!r} state={self.state.value} "
            f"opened={self.opened} rejected={self.rejected}>"
        )


class CircuitBreakerStore(_DelegatingStore):
    """Sheds load for a failing backend with a fast ``CircuitOpenError``.

    Only *tracked* error types (``track_on``, connection errors by default)
    count as failures; semantic errors such as
    :class:`~repro.errors.KeyNotFoundError` prove the backend is alive and
    count as successes.  Composition order matters: put the retry wrapper
    *outside* (``RetryingStore(CircuitBreakerStore(backend))``) so retries
    stop the moment the circuit opens.
    """

    def __init__(
        self,
        inner: KeyValueStore,
        *,
        breaker: CircuitBreaker | None = None,
        track_on: tuple[type[Exception], ...] = (StoreConnectionError,),
        name: str | None = None,
        obs: Observability | None = None,
        **breaker_options: Any,
    ) -> None:
        """Wrap *inner*.

        :param breaker: share an existing breaker (e.g. between the read
            and write paths of one backend); by default a fresh one named
            after the inner store is created from *breaker_options*.
        :param track_on: exception types that count as backend failures.
        """
        super().__init__(inner, name=name if name is not None else f"circuit({inner.name})")
        if breaker is not None and breaker_options:
            raise ConfigurationError(
                "pass either a breaker instance or breaker options, not both"
            )
        self._breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(name=inner.name, obs=obs, **breaker_options)
        )
        self._track_on = track_on

    @property
    def breaker(self) -> CircuitBreaker:
        return self._breaker

    # ------------------------------------------------------------------
    def _guard(self, thunk: Callable[[], Any]) -> Any:
        self._breaker.acquire()
        try:
            result = thunk()
        except self._track_on as exc:
            self._breaker.record_failure(exc)
            raise
        except DataStoreError:
            # Semantic errors (key not found, serialization...) mean the
            # backend answered: that is a success for breaker purposes.
            self._breaker.record_success()
            raise
        self._breaker.record_success()
        return result

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        return self._guard(lambda: self._inner.get(key))

    def put(self, key: str, value: Any) -> None:
        self._guard(lambda: self._inner.put(key, value))

    def put_with_version(self, key: str, value: Any) -> str | None:
        return self._guard(lambda: self._inner.put_with_version(key, value))

    def delete(self, key: str) -> bool:
        return self._guard(lambda: self._inner.delete(key))

    def contains(self, key: str) -> bool:
        return self._guard(lambda: self._inner.contains(key))

    def get_with_version(self, key: str) -> tuple[Any, str]:
        return self._guard(lambda: self._inner.get_with_version(key))

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        return self._guard(lambda: self._inner.get_if_modified(key, version))

    def keys(self) -> Iterator[str]:
        # Materialized so the whole iteration happens under the guard (a
        # lazily-consumed iterator would fail outside breaker accounting).
        return iter(self._guard(lambda: list(self._inner.keys())))
