"""Key-value store backed by the remote-process cache server.

In the paper's evaluation, the local Redis instance plays two roles: it is
one of the five data stores compared through the common key-value interface
(Figures 9, 10, 19), *and* it is the remote-process cache layered over the
other stores (Figures 12, 14, 16, 18).  This module covers the first role:
a full :class:`~repro.kv.interface.KeyValueStore` over our TCP cache server,
with values crossing a serializer (Jedis-style), so reads and writes pay
real IPC and serialization costs.

The second role is played by :class:`repro.caching.remote.RemoteProcessCache`,
which shares the same client.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from ..errors import KeyNotFoundError
from ..net.client import CacheClient
from ..serialization import Serializer, default_serializer
from .interface import NOT_MODIFIED, KeyValueStore, NotModified, content_version

__all__ = ["RemoteKeyValueStore"]


class RemoteKeyValueStore(KeyValueStore):
    """The "Redis via Jedis" data store of the evaluation."""

    def __init__(
        self,
        host: str,
        port: int,
        name: str = "redis",
        *,
        serializer: Serializer | None = None,
        client: CacheClient | None = None,
    ) -> None:
        """Connect to a cache server at ``host:port``.

        Pass an existing *client* to share a connection (e.g. with a
        :class:`~repro.caching.remote.RemoteProcessCache` on the same server);
        the store then does not own, and will not close, the connection.
        """
        self.name = name
        self._serializer = serializer if serializer is not None else default_serializer()
        self._owns_client = client is None
        self._client = client if client is not None else CacheClient(host, port)

    # ------------------------------------------------------------------
    @staticmethod
    def _encode_key(key: str) -> bytes:
        return key.encode("utf-8")

    def get(self, key: str) -> Any:
        payload = self._client.get(self._encode_key(key))
        if payload is None:
            raise KeyNotFoundError(key, self.name)
        return self._serializer.loads(payload)

    def get_with_version(self, key: str) -> tuple[Any, str]:
        payload = self._client.get(self._encode_key(key))
        if payload is None:
            raise KeyNotFoundError(key, self.name)
        return self._serializer.loads(payload), content_version(payload)

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        """Revalidate using the server-side GETVER command.

        A match costs one round trip but transfers no payload -- the
        If-Modified-Since behaviour from Section III.
        """
        current = self._client.getver(self._encode_key(key))
        if current is None:
            raise KeyNotFoundError(key, self.name)
        if current == version:
            return NOT_MODIFIED
        payload = self._client.get(self._encode_key(key))
        if payload is None:  # deleted between the two commands
            raise KeyNotFoundError(key, self.name)
        return self._serializer.loads(payload), content_version(payload)

    def put(self, key: str, value: Any) -> None:
        self.put_with_version(key, value)

    def put_with_version(self, key: str, value: Any) -> str:
        payload = self._serializer.dumps(value)
        self._client.set(self._encode_key(key), payload)
        return content_version(payload)

    def get_many(self, keys: "Iterable[str]") -> dict[str, Any]:
        """Batched fetch over the wire MGET: one round trip for all keys."""
        key_list = list(keys)
        if not key_list:
            return {}
        payloads = self._client.mget([self._encode_key(key) for key in key_list])
        return {
            key: self._serializer.loads(payload)
            for key, payload in zip(key_list, payloads)
            if payload is not None
        }

    def put_many(self, items: "Mapping[str, Any]") -> None:
        """Batched store over the wire MSET: one round trip for all pairs."""
        if not items:
            return
        self._client.mset(
            {
                self._encode_key(key): self._serializer.dumps(value)
                for key, value in items.items()
            }
        )

    def delete(self, key: str) -> bool:
        return self._client.delete(self._encode_key(key)) > 0

    def delete_many(self, keys: "Iterable[str]") -> int:
        key_list = [self._encode_key(key) for key in keys]
        if not key_list:
            return 0
        return self._client.delete(*key_list)

    def contains(self, key: str) -> bool:
        return self._client.exists(self._encode_key(key))

    def keys(self) -> Iterator[str]:
        for raw in self._client.keys():
            yield raw.decode("utf-8")

    def size(self) -> int:
        return self._client.dbsize()

    def clear(self) -> int:
        count = self._client.dbsize()
        self._client.flushall()
        return count

    def close(self) -> None:
        if self._owns_client:
            self._client.close()

    def native(self) -> CacheClient:
        """The underlying protocol client (server-specific commands)."""
        return self._client
