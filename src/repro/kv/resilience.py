"""Resilient store wrappers: retries and primary/replica replication.

Two production-grade behaviours data store clients are expected to have:

* :class:`RetryingStore` -- transparent retry with exponential backoff and
  full jitter for *transient* failures (connection drops, timeouts).
  Semantic errors (key not found, serialization problems) are never
  retried.
* :class:`ReplicatedStore` -- the paper's "secondary repository" idea taken
  to its conclusion: writes go to a primary and every replica; reads come
  from the primary, failing over to replicas, with version-based
  read-repair pushing stale replicas forward.  This provides availability
  under store outages, with last-writer-wins convergence.

Both wrappers participate in the fault-tolerance plane
(``docs/resilience.md``): retries respect the ambient
:class:`~repro.kv.deadline.Deadline` budget (a retry ladder can never
exceed the caller's allowance), and :class:`ReplicatedStore` optionally
*hedges* slow reads -- after ``hedge_delay`` seconds without an answer the
read is also launched on the next replica and the first success wins,
collapsing tail latency under a slow primary.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from typing import Any, Callable, Iterator, Sequence

from ..errors import (
    ConfigurationError,
    DataStoreError,
    DeadlineExceededError,
    KeyNotFoundError,
    StoreConnectionError,
)
from ..obs import Observability, resolve_obs
from .deadline import current_deadline
from .interface import KeyValueStore, NotModified
from .wrappers import _DelegatingStore

__all__ = ["RetryingStore", "ReplicatedStore"]

#: unique "absent" marker for repair comparisons (None is a legal value)
_SENTINEL = object()


class RetryingStore(_DelegatingStore):
    """Retries transient failures with exponential backoff + full jitter."""

    def __init__(
        self,
        inner: KeyValueStore,
        *,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        retry_on: tuple[type[Exception], ...] = (StoreConnectionError,),
        sleep: Callable[[float], None] = time.sleep,
        seed: int | None = None,
        name: str | None = None,
        obs: Observability | None = None,
    ) -> None:
        """Wrap *inner*.

        :param max_attempts: total tries per operation (1 = no retries).
        :param base_delay: first backoff ceiling, doubling per attempt,
            capped at *max_delay*; actual sleeps are uniform in
            ``[0, ceiling]`` (full jitter, so clients don't stampede).
        :param retry_on: exception types considered transient.
        :param sleep: injectable for tests.
        :param obs: observability bundle; each retry increments the
            ``kv.retry.retries`` counter and annotates the enclosing span
            with a ``retry`` event (attempt number, backoff delay, error
            type); exhausting all attempts counts ``kv.retry.exhausted``.
        """
        super().__init__(inner, name=name if name is not None else f"retry({inner.name})")
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if base_delay < 0 or max_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        self._max_attempts = max_attempts
        self._base_delay = base_delay
        self._max_delay = max_delay
        self._retry_on = retry_on
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._obs = resolve_obs(obs)
        #: number of retries performed (attempts beyond the first)
        self.retries = 0

    # ------------------------------------------------------------------
    def _deadline_exceeded(self, cause: Exception | None) -> DeadlineExceededError:
        if self._obs.enabled:
            self._obs.inc("kv.deadline.expired")
            self._obs.event("deadline_expired", store=self.name)
        error = DeadlineExceededError(
            f"deadline exhausted while retrying against {self.name}"
        )
        error.__cause__ = cause
        return error

    def _attempt(self, thunk: Callable[[], Any]) -> Any:
        last_error: Exception | None = None
        deadline = current_deadline()
        for attempt in range(self._max_attempts):
            if deadline is not None and deadline.expired:
                raise self._deadline_exceeded(last_error)
            try:
                return thunk()
            except self._retry_on as exc:
                last_error = exc
                if attempt == self._max_attempts - 1:
                    break
                self.retries += 1
                ceiling = min(self._max_delay, self._base_delay * (2**attempt))
                delay = self._rng.uniform(0, ceiling)
                if deadline is not None:
                    # Never sleep past the budget: cap the backoff at what
                    # remains, and give up when nothing meaningful is left.
                    remaining = deadline.remaining()
                    if remaining <= 0:
                        raise self._deadline_exceeded(exc)
                    delay = min(delay, remaining)
                if self._obs.enabled:
                    self._obs.inc("kv.retry.retries")
                    self._obs.event(
                        "retry",
                        attempt=attempt + 1,
                        delay=round(delay, 6),
                        error=type(exc).__name__,
                    )
                self._sleep(delay)
        assert last_error is not None
        if self._obs.enabled:
            self._obs.inc("kv.retry.exhausted")
            self._obs.event(
                "retry_exhausted",
                attempts=self._max_attempts,
                error=type(last_error).__name__,
            )
            # Also journal to the structured event log (if one is attached):
            # exhaustion is an operator-facing incident, not just a span note.
            self._obs.emit(
                "retry_exhausted",
                store=self.name,
                attempts=self._max_attempts,
                error=type(last_error).__name__,
            )
        raise last_error

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        return self._attempt(lambda: self._inner.get(key))

    def put(self, key: str, value: Any) -> None:
        self._attempt(lambda: self._inner.put(key, value))

    def put_with_version(self, key: str, value: Any) -> str | None:
        return self._attempt(lambda: self._inner.put_with_version(key, value))

    def delete(self, key: str) -> bool:
        return self._attempt(lambda: self._inner.delete(key))

    def contains(self, key: str) -> bool:
        return self._attempt(lambda: self._inner.contains(key))

    def get_with_version(self, key: str) -> tuple[Any, str]:
        return self._attempt(lambda: self._inner.get_with_version(key))

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        return self._attempt(lambda: self._inner.get_if_modified(key, version))

    def keys(self) -> Iterator[str]:
        # Materialized on purpose: retrying only the *creation* of a lazy
        # iterator would let a mid-iteration connection error escape the
        # retry policy entirely.  Listing inside _attempt makes the whole
        # key scan retryable (at the cost of buffering the key list).
        return iter(self._attempt(lambda: list(self._inner.keys())))


class ReplicatedStore(KeyValueStore):
    """Primary/replica store with failover reads and read-repair.

    Semantics:

    * **writes** land on the primary first (its failure fails the write),
      then on every replica; replica failures are tolerated and counted.
    * **reads** try the primary, then each replica in order.  When a read
      is served by a fallback, the value is *repaired* onto the stores
      that were tried first and missed it (best effort).  Members that were
      never consulted are synced by the explicit :meth:`repair` /
      :meth:`repair_all` anti-entropy pass instead.
    * **deletes** are applied everywhere; success if anyone had the key.

    This is availability-oriented, last-writer-wins replication -- the
    right fit for the paper's cache/secondary-repository use cases, not a
    consensus protocol.  For atomic cross-store updates use
    :mod:`repro.txn` instead.
    """

    def __init__(
        self,
        primary: KeyValueStore,
        replicas: Sequence[KeyValueStore],
        *,
        name: str = "replicated",
        read_repair: bool = True,
        owns_members: bool = True,
        hedge_delay: float | None = None,
        obs: Observability | None = None,
    ) -> None:
        """Compose the group.

        :param owns_members: when true (default), closing the composite
            closes the member stores; pass false when members are owned
            elsewhere (e.g. individually registered in a UDSM).
        :param hedge_delay: when set, :meth:`get` becomes a *hedged* read:
            the primary is asked first, and if it has not answered within
            this many seconds the read is also launched on the next
            replica (and so on down the member list); the first success
            wins.  Pick a value near the primary's p95 read latency so
            hedges fire only on tail requests.  Hedged reads skip
            read-repair (the losing request may still be in flight).
        :param obs: observability bundle; hedge launches count
            ``kv.hedge.launched``, reads won by a hedge count
            ``kv.hedge.wins``, and deadline expiries mid-read count
            ``kv.deadline.expired``.  Every public stats counter is also
            mirrored as a ``kv.replica.*`` counter (``write_failures``,
            ``failover_reads``, ``repairs``, ``hedged_reads``,
            ``hedge_wins``) so dashboards see replica health without
            polling the object.
        """
        if not replicas:
            raise ConfigurationError("ReplicatedStore needs at least one replica")
        if hedge_delay is not None and hedge_delay < 0:
            raise ConfigurationError("hedge_delay must be non-negative")
        self.name = name
        self._primary = primary
        self._replicas = list(replicas)
        self._read_repair = read_repair
        self._owns_members = owns_members
        self._hedge_delay = hedge_delay
        self._obs = resolve_obs(obs)
        # All five public counters below are touched from hedge worker
        # threads as well as the caller's thread, so every increment goes
        # through _count() under this lock -- a plain ``+=`` on an int is
        # a read-modify-write that loses updates under contention.
        self._stats_lock = threading.Lock()
        #: replica write failures tolerated so far
        self.replica_write_failures = 0
        #: reads served by a fallback store
        self.failover_reads = 0
        #: repair writes performed
        self.repairs = 0
        #: hedge requests launched (a slow leader triggered a backup read)
        self.hedged_reads = 0
        #: reads won by a hedge rather than the first store asked
        self.hedge_wins = 0

    # ------------------------------------------------------------------
    def _count(self, attr: str, metric: str, n: int = 1) -> None:
        """Bump a public stats counter (lock-guarded) and its obs mirror."""
        if n == 0:
            return
        with self._stats_lock:
            setattr(self, attr, getattr(self, attr) + n)
        if self._obs.enabled:
            self._obs.inc(metric, n)

    # ------------------------------------------------------------------
    @property
    def members(self) -> list[KeyValueStore]:
        return [self._primary, *self._replicas]

    @property
    def hedge_delay(self) -> float | None:
        """Seconds before a backup read is launched; ``None`` = no hedging.

        Writable at runtime (takes effect on the next :meth:`get`), which is
        how :class:`repro.obs.anomaly.EnableHedgingAction` turns hedging on
        while a latency anomaly is active and restores the prior value when
        it clears.
        """
        return self._hedge_delay

    @hedge_delay.setter
    def hedge_delay(self, value: float | None) -> None:
        if value is not None and value < 0:
            raise ConfigurationError("hedge_delay must be non-negative")
        self._hedge_delay = value

    def put(self, key: str, value: Any) -> None:
        self._primary.put(key, value)
        for replica in self._replicas:
            try:
                replica.put(key, value)
            except DataStoreError:
                self._count("replica_write_failures", "kv.replica.write_failures")

    def get(self, key: str) -> Any:
        if self._hedge_delay is not None:
            return self._hedged_get(key)
        return self._sequential_get(key)

    def _sequential_get(self, key: str) -> Any:
        missed: list[KeyValueStore] = []
        last_error: Exception | None = None
        for index, member in enumerate(self.members):
            try:
                value = member.get(key)
            except KeyNotFoundError as exc:
                missed.append(member)
                last_error = exc
                continue
            except DataStoreError as exc:
                last_error = exc
                continue
            if index > 0:
                self._count("failover_reads", "kv.replica.failover_reads")
            if self._read_repair and missed:
                for stale in missed:
                    try:
                        stale.put(key, value)
                        self._count("repairs", "kv.replica.repairs")
                    except DataStoreError:
                        pass
            return value
        if isinstance(last_error, KeyNotFoundError):
            raise KeyNotFoundError(key, self.name)
        raise last_error if last_error else KeyNotFoundError(key, self.name)

    def _hedged_get(self, key: str) -> Any:
        """Tail-latency-tolerant read: first success across staggered tries.

        Members are started in order, each after *hedge_delay* seconds of
        collective silence (or immediately once everything in flight has
        failed).  Whichever request succeeds first answers the caller;
        losing requests are left to finish on their daemon threads and
        their results are discarded.  Respects the ambient deadline budget.
        """
        members = self.members
        results: "queue.Queue[tuple[int, bool, Any]]" = queue.Queue()

        def launch(index: int) -> None:
            member = members[index]

            def run() -> None:
                try:
                    results.put((index, True, member.get(key)))
                except Exception as exc:  # noqa: BLE001 - relayed to the caller
                    results.put((index, False, exc))

            threading.Thread(
                target=run, name=f"{self.name}-hedge-{index}", daemon=True
            ).start()

        def launch_hedge(index: int) -> None:
            self._count("hedged_reads", "kv.replica.hedged_reads")
            if self._obs.enabled:
                self._obs.inc("kv.hedge.launched")
                self._obs.event("hedge", member=members[index].name)
                self._obs.emit("hedge", store=self.name, member=members[index].name)
            launch(index)

        deadline = current_deadline()
        launch(0)
        launched, pending = 1, 1
        errors: list[Exception] = []
        while pending or launched < len(members):
            if pending == 0:
                # Everything in flight failed; go to the next member now.
                launch_hedge(launched)
                launched += 1
                pending += 1
                continue
            wait = self._hedge_delay if launched < len(members) else None
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    if self._obs.enabled:
                        self._obs.inc("kv.deadline.expired")
                        self._obs.event("deadline_expired", store=self.name)
                    raise DeadlineExceededError(
                        f"deadline exhausted during hedged read of {key!r} "
                        f"from {self.name}"
                    )
                wait = remaining if wait is None else min(wait, remaining)
            try:
                index, ok, payload = results.get(timeout=wait)
            except queue.Empty:
                if launched < len(members):
                    launch_hedge(launched)
                    launched += 1
                    pending += 1
                continue
            pending -= 1
            if ok:
                if index > 0:
                    self._count("hedge_wins", "kv.replica.hedge_wins")
                    if self._obs.enabled:
                        self._obs.inc("kv.hedge.wins")
                        self._obs.event("hedge_win", member=members[index].name)
                return payload
            errors.append(payload)
        if all(isinstance(error, KeyNotFoundError) for error in errors):
            raise KeyNotFoundError(key, self.name)
        raise next(
            error for error in errors if not isinstance(error, KeyNotFoundError)
        )

    def get_with_version(self, key: str) -> tuple[Any, str]:
        last_error: Exception | None = None
        for member in self.members:
            try:
                return member.get_with_version(key)
            except DataStoreError as exc:
                last_error = exc
        if isinstance(last_error, KeyNotFoundError):
            raise KeyNotFoundError(key, self.name)
        raise last_error if last_error else KeyNotFoundError(key, self.name)

    def delete(self, key: str) -> bool:
        removed = False
        for member in self.members:
            try:
                removed = member.delete(key) or removed
            except DataStoreError:
                pass
        return removed

    def contains(self, key: str) -> bool:
        for member in self.members:
            try:
                if member.contains(key):
                    return True
            except DataStoreError:
                continue
        return False

    def repair(self, key: str) -> int:
        """Anti-entropy for one key: copy the primary-preferred value onto
        every member missing or differing from it.  Returns members fixed.

        Read-repair only fixes members consulted *before* the one that
        served a read; this explicit form syncs everyone (e.g. after a
        replica rejoins).

        Robust to members dying mid-repair: a key that cannot be read from
        *any* member repairs zero members instead of raising, and a member
        that fails while being written simply isn't counted -- so a
        :meth:`repair_all` pass always visits every key, and ``repairs``
        reflects only writes that actually landed.
        """
        try:
            value = self.get(key)  # primary-preferred, with read repair
        except DataStoreError:
            # Every member is unreachable (or lost the key mid-pass):
            # nothing to copy from, so nothing repaired -- but the caller's
            # sweep over the remaining keys must go on.
            return 0
        fixed = 0
        for member in self.members:
            try:
                if member.get_or_default(key, _SENTINEL) != value:
                    member.put(key, value)
                    fixed += 1
            except DataStoreError:
                continue
        self._count("repairs", "kv.replica.repairs", fixed)
        return fixed

    def repair_all(self) -> int:
        """Run :meth:`repair` for every key any member knows.

        Member failures mid-pass are absorbed by :meth:`repair` (and by
        :meth:`keys`, which skips unreachable members), so a replica dying
        during the sweep cannot abort it.
        """
        return sum(self.repair(key) for key in list(self.keys()))

    def keys(self) -> Iterator[str]:
        """Union of keys across members (first reachable wins per key)."""
        seen: set[str] = set()
        for member in self.members:
            try:
                member_keys = list(member.keys())
            except DataStoreError:
                continue
            for key in member_keys:
                if key not in seen:
                    seen.add(key)
                    yield key

    def close(self) -> None:
        if self._owns_members:
            for member in self.members:
                member.close()

    def native(self) -> Any:
        return self._primary.native()
