"""Failure-injection store for resilience testing.

Wraps any store and makes a deterministic, seeded fraction of operations
fail with a configurable error -- the tool the test suite (and downstream
users) need to exercise retry logic, transaction recovery, and cache
behaviour under a misbehaving backend without a real flaky network.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Iterator

from ..errors import ConfigurationError, StoreConnectionError
from .interface import KeyValueStore, NotModified
from .wrappers import _DelegatingStore

__all__ = ["FlakyStore"]


class FlakyStore(_DelegatingStore):
    """A store whose operations fail with probability ``failure_rate``.

    Failures happen *before* the inner operation runs (the common network
    failure mode); set ``fail_after=True`` to fail after it instead
    (the nastier "did my write land?" mode used by idempotency tests).
    """

    def __init__(
        self,
        inner: KeyValueStore,
        *,
        failure_rate: float = 0.5,
        seed: int = 0,
        error_factory: Callable[[], Exception] | None = None,
        fail_after: bool = False,
        name: str | None = None,
    ) -> None:
        super().__init__(inner, name=name if name is not None else f"flaky({inner.name})")
        if not 0.0 <= failure_rate <= 1.0:
            raise ConfigurationError("failure_rate must be within [0, 1]")
        self._failure_rate = failure_rate
        self._rng = random.Random(seed)
        self._error_factory = error_factory if error_factory is not None else (
            lambda: StoreConnectionError(f"injected failure in {self.name}")
        )
        self._fail_after = fail_after
        self._lock = threading.Lock()
        #: operations that were failed by injection
        self.injected_failures = 0
        #: operations that went through
        self.successes = 0

    # ------------------------------------------------------------------
    def _roll(self) -> bool:
        with self._lock:
            return self._rng.random() < self._failure_rate

    def _run(self, thunk: Callable[[], Any]) -> Any:
        should_fail = self._roll()
        if should_fail and not self._fail_after:
            with self._lock:
                self.injected_failures += 1
            raise self._error_factory()
        result = thunk()
        if should_fail and self._fail_after:
            with self._lock:
                self.injected_failures += 1
            raise self._error_factory()
        with self._lock:
            self.successes += 1
        return result

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        return self._run(lambda: self._inner.get(key))

    def put(self, key: str, value: Any) -> None:
        self._run(lambda: self._inner.put(key, value))

    def put_with_version(self, key: str, value: Any) -> str | None:
        return self._run(lambda: self._inner.put_with_version(key, value))

    def delete(self, key: str) -> bool:
        return self._run(lambda: self._inner.delete(key))

    def contains(self, key: str) -> bool:
        return self._run(lambda: self._inner.contains(key))

    def get_with_version(self, key: str) -> tuple[Any, str]:
        return self._run(lambda: self._inner.get_with_version(key))

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        return self._run(lambda: self._inner.get_if_modified(key, version))

    def keys(self) -> Iterator[str]:
        return self._run(lambda: self._inner.keys())
