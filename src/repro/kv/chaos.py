"""Failure-injection store for resilience testing.

Wraps any store and makes a deterministic, seeded fraction of operations
fail with a configurable error -- the tool the test suite (and downstream
users) need to exercise retry logic, circuit breakers, transaction
recovery, and cache behaviour under a misbehaving backend without a real
flaky network.  Three fault modes compose:

* **random failures** -- a seeded per-operation probability, optionally
  different per operation name (fail only ``get``, say);
* **error bursts** -- :meth:`FlakyStore.fail_next` forces the next N
  operations to fail then recover, which is exactly the deterministic
  fault shape circuit-breaker open/half-open tests need;
* **injected latency** -- a fixed delay plus seeded jitter before each
  operation (through an injectable ``sleep``, so tests can count the
  delays instead of waiting them out).

A fourth failure shape has its own wrapper: :class:`PartitionedStore`
models a **network partition** -- *symmetric* unreachability where reads
*and* writes raise :class:`~repro.errors.StoreUnavailableError` until the
partition heals, either on command (``partition()`` / ``heal()``) or on a
seeded flap schedule evaluated against an injectable clock, so partition
tests advance virtual time instead of sleeping.  It is the tool the
quorum-replication tests use to sever a member, write through the
partition, heal it, and assert anti-entropy convergence
(``scripts/check_quorum.py``).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Callable, Iterator, Mapping

from ..errors import ConfigurationError, StoreConnectionError, StoreUnavailableError
from ..obs import Observability, resolve_obs
from .interface import KeyValueStore, NotModified
from .wrappers import _DelegatingStore

__all__ = ["FlakyStore", "LaggyStore", "PartitionedStore"]


class FlakyStore(_DelegatingStore):
    """A store whose operations fail with probability ``failure_rate``.

    Failures happen *before* the inner operation runs (the common network
    failure mode); set ``fail_after=True`` to fail after it instead
    (the nastier "did my write land?" mode used by idempotency tests).
    """

    def __init__(
        self,
        inner: KeyValueStore,
        *,
        failure_rate: float = 0.5,
        failure_rates: "Mapping[str, float] | None" = None,
        seed: int = 0,
        error_factory: Callable[[], Exception] | None = None,
        fail_after: bool = False,
        latency: float = 0.0,
        latency_jitter: float = 0.0,
        sleep: Callable[[float], None] | None = None,
        name: str | None = None,
    ) -> None:
        """Wrap *inner*.

        :param failure_rate: default injection probability for every
            operation.
        :param failure_rates: per-operation overrides by operation name
            (``get``, ``put``, ``delete``, ``contains``, ``keys``,
            ``get_with_version``, ``get_if_modified``,
            ``put_with_version``); operations not named fall back to
            *failure_rate*.  E.g. ``{"get": 1.0}`` fails only reads.
        :param latency: seconds of delay injected before every operation.
        :param latency_jitter: extra uniform ``[0, jitter]`` seconds drawn
            from the seeded RNG (deterministic across runs).
        :param sleep: how delays are served (default ``time.sleep``);
            inject a recorder to test latency behaviour without waiting.
        """
        super().__init__(inner, name=name if name is not None else f"flaky({inner.name})")
        if not 0.0 <= failure_rate <= 1.0:
            raise ConfigurationError("failure_rate must be within [0, 1]")
        for operation, rate in (failure_rates or {}).items():
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"failure_rates[{operation!r}] must be within [0, 1]"
                )
        if latency < 0 or latency_jitter < 0:
            raise ConfigurationError("latency and latency_jitter must be non-negative")
        self._failure_rate = failure_rate
        self._failure_rates = dict(failure_rates or {})
        self._rng = random.Random(seed)
        self._error_factory = error_factory if error_factory is not None else (
            lambda: StoreConnectionError(f"injected failure in {self.name}")
        )
        self._fail_after = fail_after
        self._latency = latency
        self._latency_jitter = latency_jitter
        if sleep is None:
            import time

            sleep = time.sleep
        self._sleep = sleep
        self._lock = threading.Lock()
        self._burst_remaining = 0
        #: operations that were failed by injection
        self.injected_failures = 0
        #: operations that went through
        self.successes = 0

    # ------------------------------------------------------------------
    def fail_next(self, count: int) -> None:
        """Force the next *count* operations to fail, then recover.

        The deterministic error-burst mode: exactly N consecutive failures
        regardless of the random rates, which is how breaker tests drive
        closed -> open and make the recovery probe succeed on schedule.
        """
        if count < 0:
            raise ConfigurationError("burst count must be non-negative")
        with self._lock:
            self._burst_remaining = count

    @property
    def burst_remaining(self) -> int:
        """Forced failures still pending from :meth:`fail_next`."""
        with self._lock:
            return self._burst_remaining

    def set_latency(self, latency: float, *, jitter: float | None = None) -> None:
        """Change the injected delay mid-run (takes effect next operation).

        The latency-step mode: anomaly-detection tests start a workload at
        baseline speed, then ``set_latency(0.05)`` to inject a step the
        latency rules must catch, then ``set_latency(0.0)`` to recover.
        *jitter* is left unchanged unless given.
        """
        if latency < 0 or (jitter is not None and jitter < 0):
            raise ConfigurationError("latency and jitter must be non-negative")
        with self._lock:
            self._latency = latency
            if jitter is not None:
                self._latency_jitter = jitter

    @property
    def latency(self) -> float:
        """Currently injected fixed delay (seconds)."""
        with self._lock:
            return self._latency

    # ------------------------------------------------------------------
    def _roll(self, operation: str) -> bool:
        with self._lock:
            if self._burst_remaining > 0:
                self._burst_remaining -= 1
                return True
            rate = self._failure_rates.get(operation, self._failure_rate)
            return self._rng.random() < rate

    def _run(self, operation: str, thunk: Callable[[], Any]) -> Any:
        if self._latency or self._latency_jitter:
            with self._lock:
                delay = self._latency + (
                    self._rng.uniform(0, self._latency_jitter)
                    if self._latency_jitter
                    else 0.0
                )
            self._sleep(delay)
        should_fail = self._roll(operation)
        if should_fail and not self._fail_after:
            with self._lock:
                self.injected_failures += 1
            raise self._error_factory()
        result = thunk()
        if should_fail and self._fail_after:
            with self._lock:
                self.injected_failures += 1
            raise self._error_factory()
        with self._lock:
            self.successes += 1
        return result

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        return self._run("get", lambda: self._inner.get(key))

    def put(self, key: str, value: Any) -> None:
        self._run("put", lambda: self._inner.put(key, value))

    def put_with_version(self, key: str, value: Any) -> str | None:
        return self._run("put_with_version", lambda: self._inner.put_with_version(key, value))

    def delete(self, key: str) -> bool:
        return self._run("delete", lambda: self._inner.delete(key))

    def contains(self, key: str) -> bool:
        return self._run("contains", lambda: self._inner.contains(key))

    def get_with_version(self, key: str) -> tuple[Any, str]:
        return self._run("get_with_version", lambda: self._inner.get_with_version(key))

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        return self._run("get_if_modified", lambda: self._inner.get_if_modified(key, version))

    def keys(self) -> Iterator[str]:
        return self._run("keys", lambda: self._inner.keys())


class PartitionedStore(_DelegatingStore):
    """A store severed from the network on command or on a flap schedule.

    While partitioned, **every** operation -- reads and writes alike --
    raises :class:`~repro.errors.StoreUnavailableError` without touching
    the inner store (the symmetric unreachability of a real network
    partition, unlike :class:`FlakyStore`'s per-operation coin flips).
    Partitions come from two composable sources:

    * **manual**: :meth:`partition` severs the store until :meth:`heal`;
    * **scheduled**: :meth:`schedule_flaps` lays out seeded
      healthy/partitioned windows evaluated against the injectable
      *clock*, so a test advances virtual time to move through flaps
      deterministically -- zero real sleeps.

    :meth:`heal` also truncates a scheduled window that is currently
    active (an operator fixing the link early); future windows remain
    until :meth:`clear_schedule`.
    """

    def __init__(
        self,
        inner: KeyValueStore,
        *,
        clock: Callable[[], float] = time.monotonic,
        name: str | None = None,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(
            inner, name=name if name is not None else f"partitioned({inner.name})"
        )
        self._clock = clock
        self._obs = resolve_obs(obs)
        self._lock = threading.Lock()
        self._manual = False
        self._windows: list[tuple[float, float]] = []
        #: operations rejected while partitioned
        self.unavailable_ops = 0
        #: manual partition() calls
        self.partitions = 0
        #: manual heal() calls
        self.heals = 0

    # ------------------------------------------------------------------
    def partition(self) -> None:
        """Sever the store now (until :meth:`heal`)."""
        with self._lock:
            self._manual = True
            self.partitions += 1
        if self._obs.enabled:
            self._obs.inc("kv.chaos.partitions")
            self._obs.emit("partition", store=self.name)

    def heal(self) -> None:
        """Reconnect: clears the manual partition and ends any scheduled
        window that is active right now (future windows still apply)."""
        now = self._clock()
        with self._lock:
            self._manual = False
            self.heals += 1
            self._windows = [
                (start, min(end, now)) if start <= now < end else (start, end)
                for start, end in self._windows
            ]
        if self._obs.enabled:
            self._obs.inc("kv.chaos.heals")
            self._obs.emit("heal", store=self.name)

    def schedule_flaps(
        self,
        *,
        seed: int,
        flaps: int,
        mean_healthy: float,
        mean_partitioned: float,
        start: float | None = None,
    ) -> list[tuple[float, float]]:
        """Append *flaps* seeded partition windows starting after *start*.

        Durations are exponentially distributed around the two means
        (the classic link-flap model), drawn from ``random.Random(seed)``
        so a test run is reproducible.  Returns the windows added.
        """
        if flaps < 0:
            raise ConfigurationError("flaps must be non-negative")
        if mean_healthy <= 0 or mean_partitioned <= 0:
            raise ConfigurationError("flap durations must be positive")
        rng = random.Random(seed)
        cursor = self._clock() if start is None else start
        windows: list[tuple[float, float]] = []
        for _ in range(flaps):
            cursor += rng.expovariate(1.0 / mean_healthy)
            down = rng.expovariate(1.0 / mean_partitioned)
            windows.append((cursor, cursor + down))
            cursor += down
        with self._lock:
            self._windows.extend(windows)
        return windows

    def clear_schedule(self) -> None:
        """Drop every scheduled flap window (manual state unchanged)."""
        with self._lock:
            self._windows.clear()

    @property
    def windows(self) -> list[tuple[float, float]]:
        """The scheduled ``(start, end)`` partition windows."""
        with self._lock:
            return list(self._windows)

    def is_partitioned(self) -> bool:
        """Whether an operation issued right now would be rejected."""
        now = self._clock()
        with self._lock:
            if self._manual:
                return True
            return any(start <= now < end for start, end in self._windows)

    # ------------------------------------------------------------------
    def _guard(self) -> None:
        if not self.is_partitioned():
            return
        with self._lock:
            self.unavailable_ops += 1
        if self._obs.enabled:
            self._obs.inc("kv.chaos.unavailable")
        raise StoreUnavailableError(
            f"store {self.name!r} is unreachable (network partition)"
        )

    def get(self, key: str) -> Any:
        self._guard()
        return self._inner.get(key)

    def put(self, key: str, value: Any) -> None:
        self._guard()
        self._inner.put(key, value)

    def put_with_version(self, key: str, value: Any) -> str | None:
        self._guard()
        return self._inner.put_with_version(key, value)

    def delete(self, key: str) -> bool:
        self._guard()
        return self._inner.delete(key)

    def contains(self, key: str) -> bool:
        self._guard()
        return self._inner.contains(key)

    def get_with_version(self, key: str) -> tuple[Any, str]:
        self._guard()
        return self._inner.get_with_version(key)

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        self._guard()
        return self._inner.get_if_modified(key, version)

    def keys(self) -> Iterator[str]:
        self._guard()
        return self._inner.keys()

    def keys_with_prefix(self, prefix: str) -> Iterator[str]:
        self._guard()
        return self._inner.keys_with_prefix(prefix)

    def size(self) -> int:
        self._guard()
        return self._inner.size()

    # close() deliberately passes through un-guarded: releasing local
    # resources must work even while the network is down.


class LaggyStore(FlakyStore):
    """A store that is merely *slow*: injected latency, no failures.

    The tool for hedged-read and deadline tests -- e.g. a primary replica
    with ``LaggyStore(inner, latency=0.2)`` reliably exceeds a 10 ms hedge
    threshold.  Equivalent to ``FlakyStore(failure_rate=0.0, latency=...)``
    with a clearer name.
    """

    def __init__(
        self,
        inner: KeyValueStore,
        *,
        latency: float,
        latency_jitter: float = 0.0,
        seed: int = 0,
        sleep: Callable[[float], None] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(
            inner,
            failure_rate=0.0,
            seed=seed,
            latency=latency,
            latency_jitter=latency_jitter,
            sleep=sleep,
            name=name if name is not None else f"laggy({inner.name})",
        )
