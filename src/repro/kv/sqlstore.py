"""SQL-backed key-value store.

The paper's evaluation uses "a MySQL database running on the client node
accessed via JDBC", with the UDSM key-value interface implemented on top of
JDBC, and with native SQL still reachable for applications that need it.
This module reproduces that shape on :mod:`sqlite3` (the SQL engine available
offline): the KV contract is implemented over a two-column table, every write
is a real SQL transaction with a commit (so the paper's observation that
"writes involve costly commit operations" reproduces), and :meth:`SQLStore.native`
hands back the DB-API connection plus an :meth:`SQLStore.execute` helper as
the SQL escape hatch.

sqlite connections are not thread-safe by default; this store serializes all
access through one lock, which matches the single-client-thread usage in the
paper's evaluation while staying safe under the UDSM's thread-pool async
interface.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Any, Iterator, Mapping, Sequence

from ..errors import DataStoreError, KeyNotFoundError, StoreClosedError
from ..serialization import Serializer, default_serializer
from .interface import KeyValueStore, content_version

__all__ = ["SQLStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS {table} (
    key   TEXT PRIMARY KEY,
    value BLOB NOT NULL
)
"""


class SQLStore(KeyValueStore):
    """Key-value contract over a SQL table, with native SQL passthrough."""

    def __init__(
        self,
        database: str = ":memory:",
        name: str = "sql",
        *,
        table: str = "kv_store",
        serializer: Serializer | None = None,
        synchronous: str = "FULL",
    ) -> None:
        """Open the store.

        :param database: sqlite database path, or ``":memory:"``.
        :param table: table holding the key-value pairs.  Must be a plain
            identifier (validated) because DDL cannot be parameterised.
        :param synchronous: sqlite ``PRAGMA synchronous`` level.  ``FULL``
            gives MySQL-like durable commits (the costly writes the paper
            measures); ``OFF`` is useful for tests.
        """
        if not table.replace("_", "").isalnum():
            raise DataStoreError(f"invalid table name {table!r}")
        self.name = name
        self._table = table
        self._serializer = serializer if serializer is not None else default_serializer()
        self._lock = threading.RLock()
        self._closed = False
        self._conn = sqlite3.connect(database, check_same_thread=False)
        with self._lock:
            self._conn.execute(f"PRAGMA synchronous={synchronous}")
            self._conn.execute(_SCHEMA.format(table=table))
            self._conn.commit()

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"store {self.name!r} is closed")

    def _fetch_payload(self, key: str) -> bytes:
        row = self._conn.execute(
            f"SELECT value FROM {self._table} WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            raise KeyNotFoundError(key, self.name)
        return bytes(row[0])

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        with self._lock:
            self._check_open()
            payload = self._fetch_payload(key)
        return self._serializer.loads(payload)

    def get_with_version(self, key: str) -> tuple[Any, str]:
        with self._lock:
            self._check_open()
            payload = self._fetch_payload(key)
        return self._serializer.loads(payload), content_version(payload)

    def put(self, key: str, value: Any) -> None:
        self.put_with_version(key, value)

    def put_with_version(self, key: str, value: Any) -> str:
        payload = self._serializer.dumps(value)
        with self._lock:
            self._check_open()
            self._conn.execute(
                f"INSERT INTO {self._table}(key, value) VALUES(?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, payload),
            )
            self._conn.commit()
        return content_version(payload)

    def put_many(self, items: Mapping[str, Any]) -> None:
        """Batch insert in one transaction (one commit for the whole batch)."""
        rows = [(key, self._serializer.dumps(value)) for key, value in items.items()]
        with self._lock:
            self._check_open()
            self._conn.executemany(
                f"INSERT INTO {self._table}(key, value) VALUES(?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                rows,
            )
            self._conn.commit()

    def delete(self, key: str) -> bool:
        with self._lock:
            self._check_open()
            cursor = self._conn.execute(
                f"DELETE FROM {self._table} WHERE key = ?", (key,)
            )
            self._conn.commit()
            return cursor.rowcount > 0

    def keys(self) -> Iterator[str]:
        with self._lock:
            self._check_open()
            rows = self._conn.execute(f"SELECT key FROM {self._table}").fetchall()
        return (row[0] for row in rows)

    def keys_with_prefix(self, key_prefix: str) -> Iterator[str]:
        """Prefix scan on the primary-key index (no full table scan)."""
        escaped = (
            key_prefix.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
        )
        with self._lock:
            self._check_open()
            rows = self._conn.execute(
                f"SELECT key FROM {self._table} WHERE key LIKE ? ESCAPE '\\'",
                (escaped + "%",),
            ).fetchall()
        return (row[0] for row in rows)

    def contains(self, key: str) -> bool:
        with self._lock:
            self._check_open()
            row = self._conn.execute(
                f"SELECT 1 FROM {self._table} WHERE key = ? LIMIT 1", (key,)
            ).fetchone()
            return row is not None

    def size(self) -> int:
        with self._lock:
            self._check_open()
            row = self._conn.execute(f"SELECT COUNT(*) FROM {self._table}").fetchone()
            return int(row[0])

    def clear(self) -> int:
        with self._lock:
            self._check_open()
            count = self.size()
            self._conn.execute(f"DELETE FROM {self._table}")
            self._conn.commit()
            return count

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    # ------------------------------------------------------------------
    # Native SQL escape hatch (the paper's "customized features")
    # ------------------------------------------------------------------
    def native(self) -> sqlite3.Connection:
        """The underlying DB-API connection for store-specific SQL."""
        self._check_open()
        return self._conn

    def execute(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        """Run an arbitrary SQL statement under the store's lock.

        Returns fetched rows for queries; DML is committed.  This is the
        convenience form of the native escape hatch.
        """
        with self._lock:
            self._check_open()
            cursor = self._conn.execute(sql, params)
            rows = cursor.fetchall()
            self._conn.commit()
            return rows
