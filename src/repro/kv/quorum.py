"""Quorum replication with read-repair and Merkle-tree anti-entropy.

:class:`~repro.kv.resilience.ReplicatedStore` is availability-oriented
primary/replica replication: writes are best-effort on the replicas, reads
prefer the primary, and convergence after a partition needs the
O(keyspace) ``repair_all()`` scan.  This module is the next step the
ROADMAP names -- Dynamo-style **R+W > N quorum replication** where every
member is a peer:

* **writes** stamp each key with a per-key versioned timestamp (a Lamport
  counter plus a writer id, carried inside the stored *envelope* so it
  survives any backend and any restart), fan out to all N members in
  parallel, and succeed once **W** members acknowledge.  Member failures
  beyond that are *sloppy*: tolerated, counted
  (``kv.quorum.write_partial``), and left for read-repair / anti-entropy
  to reconcile.  When more than ``N - W`` members are unreachable the
  write **fails fast** with a typed
  :class:`~repro.errors.QuorumWriteError` instead of hanging.
* **reads** fan out to all members in parallel and resolve as soon as
  **R** responses (values *or* confirmed misses) arrive.  Divergent
  answers are resolved by version stamp -- last writer wins, with the
  writer id as a deterministic tiebreak -- and members that answered with
  a stale or missing value are **synchronously read-repaired** before the
  call returns.  Because R+W > N, a read quorum always intersects the
  last successful write quorum: a read that succeeds sees every
  acknowledged write.
* **deletes** are tombstone writes through the same quorum path, so they
  propagate and converge exactly like updates.

Anti-entropy
------------
Read-repair only fixes keys that get read.  Background **anti-entropy**
converges everything else without the full-keyspace scan: the group
maintains one incremental :class:`MerkleTree` per member (a fixed array of
hash buckets over the key space, one digest per tracked key -- bounded
memory, O(1) update per acknowledged write), compares trees pairwise from
the root down, and re-scans **only the divergent buckets**.  After a
partition heals, a round touches roughly ``keyspace / buckets`` keys per
divergent bucket instead of every key; the scan accounting
(``kv.antientropy.keys_scanned`` vs ``kv.antientropy.full_scans``) makes
that claim checkable, and ``scripts/check_quorum.py`` checks it.

Rounds run wherever you point the injectable *scheduler* (the LSM plane's
``InlineScheduler`` / ``ManualScheduler`` / ``BackgroundScheduler`` all
fit); ``anti_entropy_every=k`` schedules a round automatically every *k*
quorum writes, which gives deterministic "background" repair with zero
real sleeps under a :class:`~repro.lsm.compaction.ManualScheduler`.

The fault-tolerance plane applies throughout: ambient
:class:`~repro.kv.deadline.Deadline` budgets bound every quorum wait,
``kv.quorum.*`` / ``kv.antientropy.*`` metrics and journal events feed the
anomaly engine (a ``quorum_degraded`` detection can preemptively enable
hedging on a companion group -- see ``docs/resilience.md``), and the chaos
plane's :class:`~repro.kv.chaos.PartitionedStore` severs members on
command so all of this is testable without a real network.
"""

from __future__ import annotations

import hashlib
import queue
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, NamedTuple, Sequence

from ..errors import (
    ConfigurationError,
    DataStoreError,
    DeadlineExceededError,
    KeyNotFoundError,
    QuorumReadError,
    QuorumWriteError,
)
from ..obs import Observability, resolve_obs
from .deadline import current_deadline
from .interface import KeyValueStore

__all__ = [
    "VersionStamp",
    "MerkleTree",
    "AntiEntropyReport",
    "QuorumReplicatedStore",
]

#: Marker key identifying a quorum envelope inside a member store.
_ENVELOPE_MARK = "__quorum_envelope__"

#: unique "absent" sentinel (None is a legal stored value)
_ABSENT = object()


class VersionStamp(NamedTuple):
    """A per-key versioned timestamp: ``(counter, writer)``.

    *counter* is a Lamport counter (merged upward from every stamp the
    group observes, so writes through a rejoining or second coordinator
    still order after everything it has read); *writer* is the
    coordinator's ``node_id``, the deterministic tiebreak when two
    coordinators use the same counter.  Tuple comparison gives the
    last-writer-wins order directly.
    """

    counter: int
    writer: str

    def token(self) -> str:
        """Opaque version-token form (what ``get_with_version`` returns)."""
        return f"q{self.counter}.{self.writer}"

    @classmethod
    def parse(cls, token: str) -> "VersionStamp":
        if not token.startswith("q") or "." not in token:
            raise ConfigurationError(f"not a quorum version token: {token!r}")
        counter, _, writer = token[1:].partition(".")
        return cls(int(counter), writer)


def _wrap(stamp: VersionStamp, value: Any, *, tombstone: bool = False) -> dict:
    """Build the envelope stored in member stores."""
    envelope: dict[str, Any] = {
        _ENVELOPE_MARK: 1,
        "c": stamp.counter,
        "w": stamp.writer,
    }
    if tombstone:
        envelope["t"] = 1
    else:
        envelope["v"] = value
    return envelope


def _unwrap(raw: Any) -> tuple[VersionStamp, Any, bool]:
    """``(stamp, value, tombstone)`` from a stored envelope.

    Values written outside the quorum path (pre-existing data in a member)
    are treated as *legacy*: counter 0 with a content-derived writer id,
    so any quorum write orders after them and two members holding
    different legacy values still hash differently in the Merkle trees.
    """
    if isinstance(raw, dict) and raw.get(_ENVELOPE_MARK) == 1:
        stamp = VersionStamp(raw["c"], raw["w"])
        if raw.get("t"):
            return stamp, None, True
        return stamp, raw.get("v"), False
    digest = hashlib.sha1(repr(raw).encode("utf-8", "backslashreplace")).hexdigest()
    return VersionStamp(0, "legacy-" + digest[:12]), raw, False


# ----------------------------------------------------------------------
# Merkle trees over key ranges
# ----------------------------------------------------------------------
def _bucket_of(key: str, buckets: int) -> int:
    """Stable key -> bucket mapping (must agree across all members)."""
    digest = hashlib.sha1(key.encode("utf-8", "surrogateescape")).digest()
    return int.from_bytes(digest[:8], "big") % buckets


def _entry_digest(key: str, stamp: VersionStamp, tombstone: bool) -> int:
    """128-bit digest of one tracked ``(key, stamp)`` entry.

    The stamp uniquely identifies a write, so hashing the stamp (not the
    value) is enough: two members agree on a key's digest iff they hold
    the same write.  XOR-combining entry digests makes the bucket digest
    incrementally updatable in O(1) without rescanning the bucket.
    """
    payload = f"{key}\x00{stamp.counter}\x00{stamp.writer}\x00{int(tombstone)}"
    digest = hashlib.sha1(payload.encode("utf-8", "surrogateescape")).digest()
    return int.from_bytes(digest[:16], "big")


class MerkleTree:
    """Incremental hash tree over hashed key ranges for one member.

    ``2**depth`` leaf buckets; each bucket keeps ``key -> (stamp,
    tombstone)`` for the keys hashing into it plus the XOR of their entry
    digests, so an update is O(1) and memory is one small tuple per
    tracked key plus a fixed bucket array -- never the values.  Internal
    nodes are derived on demand; :meth:`diff` descends from the root and
    returns only the divergent leaf buckets, which is what lets
    anti-entropy skip the synchronized bulk of the key space.

    Not thread-safe on its own; :class:`QuorumReplicatedStore` guards its
    trees with the group lock.
    """

    def __init__(self, *, depth: int = 6) -> None:
        if depth < 1 or depth > 16:
            raise ConfigurationError("merkle depth must be within [1, 16]")
        self.depth = depth
        self.buckets = 1 << depth
        self._entries: list[dict[str, tuple[VersionStamp, bool]]] = [
            {} for _ in range(self.buckets)
        ]
        self._digests = [0] * self.buckets

    # ------------------------------------------------------------------
    def update(self, key: str, stamp: VersionStamp, *, tombstone: bool = False) -> None:
        """Record that this member now holds *key* at *stamp*."""
        bucket = _bucket_of(key, self.buckets)
        entries = self._entries[bucket]
        previous = entries.get(key)
        if previous is not None:
            self._digests[bucket] ^= _entry_digest(key, previous[0], previous[1])
        entries[key] = (stamp, tombstone)
        self._digests[bucket] ^= _entry_digest(key, stamp, tombstone)

    def discard(self, key: str) -> None:
        """Forget *key* entirely (member lost it out of band)."""
        bucket = _bucket_of(key, self.buckets)
        previous = self._entries[bucket].pop(key, None)
        if previous is not None:
            self._digests[bucket] ^= _entry_digest(key, previous[0], previous[1])

    def entry(self, key: str) -> tuple[VersionStamp, bool] | None:
        """``(stamp, tombstone)`` tracked for *key*, or ``None``."""
        return self._entries[_bucket_of(key, self.buckets)].get(key)

    def bucket_entries(self, bucket: int) -> dict[str, tuple[VersionStamp, bool]]:
        """The tracked entries of one leaf bucket (a live view)."""
        return self._entries[bucket]

    def clear(self) -> None:
        for entries in self._entries:
            entries.clear()
        self._digests = [0] * self.buckets

    @property
    def tracked(self) -> int:
        """Number of keys currently tracked (tombstones included)."""
        return sum(len(entries) for entries in self._entries)

    def items(self) -> Iterator[tuple[str, tuple[VersionStamp, bool]]]:
        for entries in self._entries:
            yield from entries.items()

    # ------------------------------------------------------------------
    def _levels(self) -> list[list[int]]:
        """Leaf digests hashed pairwise up to the root (root level last)."""
        levels = [list(self._digests)]
        while len(levels[-1]) > 1:
            below = levels[-1]
            above = []
            for index in range(0, len(below), 2):
                pair = below[index].to_bytes(16, "big") + below[index + 1].to_bytes(16, "big")
                above.append(int.from_bytes(hashlib.sha1(pair).digest()[:16], "big"))
            levels.append(above)
        return levels

    def root(self) -> str:
        """Hex root digest; equal roots mean identical tracked state."""
        return format(self._levels()[-1][0], "032x")

    def diff(self, other: "MerkleTree") -> tuple[list[int], int]:
        """``(divergent leaf buckets, nodes compared)`` against *other*.

        Descends from the root, so when the trees agree the answer costs
        one comparison, and a handful of divergent keys cost O(depth)
        comparisons per divergent bucket -- never a key-space scan.
        """
        if other.depth != self.depth:
            raise ConfigurationError("cannot diff Merkle trees of different depth")
        mine, theirs = self._levels(), other._levels()
        compared = 1
        if mine[-1][0] == theirs[-1][0]:
            return [], compared
        # Walk down from the root: at each level expand only the nodes
        # whose digests disagreed one level up.
        suspects = [0]
        for level in range(len(mine) - 2, -1, -1):
            children = []
            for node in suspects:
                for child in (2 * node, 2 * node + 1):
                    compared += 1
                    if mine[level][child] != theirs[level][child]:
                        children.append(child)
            suspects = children
        return suspects, compared


# ----------------------------------------------------------------------
@dataclass
class AntiEntropyReport:
    """What one anti-entropy round did (cumulative counters live on the
    store and in the ``kv.antientropy.*`` metrics)."""

    pairs_compared: int = 0
    nodes_compared: int = 0
    buckets_divergent: int = 0
    keys_scanned: int = 0
    keys_repaired: int = 0
    member_failures: int = 0
    converged: bool = True
    #: members repaired, by name
    repaired_members: list[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        state = "converged" if self.converged else "divergence remains"
        return (
            f"anti-entropy: {self.pairs_compared} pairs, "
            f"{self.nodes_compared} tree nodes, "
            f"{self.buckets_divergent} divergent buckets, "
            f"{self.keys_scanned} keys scanned, "
            f"{self.keys_repaired} repaired ({state})"
        )


class QuorumReplicatedStore(KeyValueStore):
    """R+W>N quorum reads/writes over N peer member stores.

    See the module docstring for semantics.  Members are peers (no
    primary); the store is thread-safe and every fan-out respects the
    ambient :class:`~repro.kv.deadline.Deadline`.
    """

    def __init__(
        self,
        members: Sequence[KeyValueStore],
        *,
        read_quorum: int,
        write_quorum: int,
        name: str = "quorum",
        node_id: str = "node-0",
        read_repair: bool = True,
        owns_members: bool = True,
        merkle_depth: int = 6,
        scheduler: Any | None = None,
        anti_entropy_every: int | None = None,
        obs: Observability | None = None,
    ) -> None:
        """Compose the group.

        :param members: the N peer stores (at least 2).
        :param read_quorum: R -- member responses required per read.
        :param write_quorum: W -- member acks required per write.
            ``R + W > N`` is enforced: it is what makes a read quorum
            intersect every write quorum.
        :param node_id: this coordinator's writer id, the tiebreak between
            concurrent coordinators; give each client a distinct id.
        :param merkle_depth: ``2**depth`` anti-entropy buckets per member
            (more buckets = finer repair granularity, slightly more
            memory).
        :param scheduler: where scheduled anti-entropy rounds run -- any
            object with ``submit(callable)`` (the LSM plane's
            ``InlineScheduler`` / ``ManualScheduler`` /
            ``BackgroundScheduler`` all fit).  ``None`` runs rounds
            inline.
        :param anti_entropy_every: schedule a round automatically every
            this many quorum writes (``None`` = only explicit rounds).
        :param obs: observability bundle; emits the ``kv.quorum.*`` and
            ``kv.antientropy.*`` vocabulary of ``docs/observability.md``.
        """
        if len(members) < 2:
            raise ConfigurationError("a quorum group needs at least 2 members")
        n = len(members)
        if not 1 <= read_quorum <= n:
            raise ConfigurationError(f"read_quorum must be within [1, {n}]")
        if not 1 <= write_quorum <= n:
            raise ConfigurationError(f"write_quorum must be within [1, {n}]")
        if read_quorum + write_quorum <= n:
            raise ConfigurationError(
                f"R + W must exceed N for quorum intersection "
                f"(got R={read_quorum}, W={write_quorum}, N={n})"
            )
        if anti_entropy_every is not None and anti_entropy_every < 1:
            raise ConfigurationError("anti_entropy_every must be at least 1")
        self.name = name
        self.node_id = node_id
        self._members = list(members)
        self._read_quorum = read_quorum
        self._write_quorum = write_quorum
        self._read_repair = read_repair
        self._owns_members = owns_members
        self._scheduler = scheduler
        self._anti_entropy_every = anti_entropy_every
        self._obs = resolve_obs(obs)
        self._lock = threading.Lock()
        self._lamport = 0
        self._writes_since_round = 0
        self._inflight: list[threading.Thread] = []
        self._trees = [MerkleTree(depth=merkle_depth) for _ in members]
        #: quorum writes acknowledged (W+ acks)
        self.writes = 0
        #: quorum reads resolved (R+ responses)
        self.reads = 0
        #: stale/missing members fixed synchronously during reads
        self.read_repairs = 0
        #: member write failures tolerated inside successful writes
        self.write_partial_failures = 0
        #: operations that succeeded with at least one member failure
        self.degraded_ops = 0
        #: operations failed fast on a lost quorum
        self.failed_fast = 0
        #: anti-entropy rounds completed
        self.antientropy_rounds = 0
        #: keys compared at key level during anti-entropy (divergent buckets only)
        self.antientropy_keys_scanned = 0
        #: member copies fixed by anti-entropy
        self.antientropy_keys_repaired = 0
        #: full member scans performed (tree rebuilds -- the expensive path)
        self.full_scans = 0

    # ------------------------------------------------------------------
    @property
    def members(self) -> list[KeyValueStore]:
        return list(self._members)

    @property
    def read_quorum(self) -> int:
        return self._read_quorum

    @property
    def write_quorum(self) -> int:
        return self._write_quorum

    def tree(self, index: int) -> MerkleTree:
        """The anti-entropy tree tracking member *index* (inspection)."""
        return self._trees[index]

    # ------------------------------------------------------------------
    # Version stamps
    # ------------------------------------------------------------------
    def _next_stamp(self) -> VersionStamp:
        with self._lock:
            self._lamport += 1
            return VersionStamp(self._lamport, self.node_id)

    def _observe_stamp(self, stamp: VersionStamp) -> None:
        """Lamport merge: never issue a counter <= one we have seen."""
        with self._lock:
            if stamp.counter > self._lamport:
                self._lamport = stamp.counter

    # ------------------------------------------------------------------
    # Fan-out plumbing
    # ------------------------------------------------------------------
    # Each operation shares one state dict across its member threads; all
    # transitions happen under the group lock, so the op outcome (quorum
    # reached / quorum lost) is decided exactly once no matter how member
    # responses interleave, and the *last* member thread to finish settles
    # the op-level degraded accounting deterministically.

    def _spawn(self, label: str, worker: Callable[[int], None], count: int) -> None:
        threads = []
        for index in range(count):
            thread = threading.Thread(
                target=worker, args=(index,),
                name=f"{self.name}-{label}-{index}", daemon=True,
            )
            threads.append(thread)
        with self._lock:
            self._inflight = [t for t in self._inflight if t.is_alive()]
            self._inflight.extend(threads)
        for thread in threads:
            thread.start()

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for straggler member requests from past operations.

        An operation returns as soon as its quorum is satisfied; the
        remaining member requests finish on their own threads (updating
        trees and sloppy-failure counters as they land).  ``drain()``
        joins them -- tests and shutdown paths call it to make counter
        assertions deterministic.  Returns ``True`` when nothing is left
        in flight.
        """
        with self._lock:
            threads = list(self._inflight)
        for thread in threads:
            thread.join(timeout)
        with self._lock:
            self._inflight = [t for t in self._inflight if t.is_alive()]
            return not self._inflight

    def _deadline_wait(self, results: "queue.Queue", what: str) -> Any:
        """One result off the queue, bounded by the ambient deadline."""
        deadline = current_deadline()
        wait = None
        if deadline is not None:
            remaining = deadline.remaining()
            if remaining <= 0:
                self._expire_deadline(what)
            wait = remaining
        try:
            return results.get(timeout=wait)
        except queue.Empty:
            self._expire_deadline(what)

    def _expire_deadline(self, what: str) -> None:
        if self._obs.enabled:
            self._obs.inc("kv.deadline.expired")
            self._obs.event("deadline_expired", store=self.name)
        raise DeadlineExceededError(
            f"deadline exhausted during {what} on {self.name}"
        )

    def _finalize_op(self, state: dict, operation: str) -> None:
        """Op-level accounting, run by the last member thread to finish."""
        if state["outcome"] == "ok" and state["failures"]:
            self.degraded_ops += 1
            if self._obs.enabled:
                self._obs.inc("kv.quorum.degraded")
                self._obs.emit(
                    "quorum_degraded",
                    store=self.name,
                    op=operation,
                    member_failures=len(state["failures"]),
                )

    def _fail_fast(self, state: dict, operation: str) -> None:
        """Mark the op lost (caller raises); runs under the group lock."""
        state["outcome"] = "lost"
        self.failed_fast += 1
        if self._obs.enabled:
            self._obs.inc("kv.quorum.failed_fast")
            self._obs.emit(
                "quorum_failed_fast",
                store=self.name,
                op=operation,
                acks=state["acks"],
                failures=len(state["failures"]),
            )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self.put_with_version(key, value)

    def put_with_version(self, key: str, value: Any) -> str:
        stamp = self._next_stamp()
        self._quorum_write(key, _wrap(stamp, value), stamp, tombstone=False)
        return stamp.token()

    def _quorum_write(
        self, key: str, envelope: dict, stamp: VersionStamp, *, tombstone: bool
    ) -> None:
        members = self._members
        n, w = len(members), self._write_quorum
        resolution: "queue.Queue[tuple[str, Exception | None]]" = queue.Queue()
        state: dict[str, Any] = {
            "acks": 0, "failures": [], "pending": n, "outcome": None,
        }

        def writer(index: int) -> None:
            error: Exception | None = None
            try:
                members[index].put(key, envelope)
            except DataStoreError as exc:
                error = exc
            with self._lock:
                state["pending"] -= 1
                if error is None:
                    self._trees[index].update(key, stamp, tombstone=tombstone)
                    state["acks"] += 1
                    if state["outcome"] is None and state["acks"] >= w:
                        state["outcome"] = "ok"
                        resolution.put(("ok", None))
                else:
                    state["failures"].append(error)
                    self.write_partial_failures += 1
                    if self._obs.enabled:
                        self._obs.inc("kv.quorum.write_partial")
                    if state["outcome"] is None and len(state["failures"]) > n - w:
                        self._fail_fast(state, "write")
                        resolution.put(("lost", error))
                if state["pending"] == 0:
                    self._finalize_op(state, "write")

        self._spawn("put", writer, n)
        outcome, cause = self._deadline_wait(resolution, f"quorum write of {key!r}")
        if outcome == "lost":
            with self._lock:
                acks, failures = state["acks"], len(state["failures"])
            error = QuorumWriteError(self.name, needed=w, got=acks, failures=failures)
            error.__cause__ = cause
            raise error
        with self._lock:
            self.writes += 1
            self._writes_since_round += 1
            due = (
                self._anti_entropy_every is not None
                and self._writes_since_round >= self._anti_entropy_every
            )
            if due:
                self._writes_since_round = 0
        if self._obs.enabled:
            self._obs.inc("kv.quorum.writes")
        if due:
            self.schedule_anti_entropy()

    def delete(self, key: str) -> bool:
        try:
            self.get_with_version(key)
            existed = True
        except KeyNotFoundError:
            existed = False
        stamp = self._next_stamp()
        self._quorum_write(
            key, _wrap(stamp, None, tombstone=True), stamp, tombstone=True
        )
        return existed

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        value, _stamp = self._quorum_read(key)
        return value

    def get_with_version(self, key: str) -> tuple[Any, str]:
        value, stamp = self._quorum_read(key)
        return value, stamp.token()

    def _quorum_read(self, key: str) -> tuple[Any, VersionStamp]:
        """Resolve *key* from an R-member quorum; read-repair stale answers.

        Raises :class:`KeyNotFoundError` when the winning state is absent
        or a tombstone, :class:`QuorumReadError` when fewer than R members
        can answer at all.
        """
        members = self._members
        n, r = len(members), self._read_quorum
        resolution: "queue.Queue[tuple[str, Exception | None]]" = queue.Queue()
        state: dict[str, Any] = {
            "acks": 0, "failures": [], "pending": n, "outcome": None,
            "responses": [],  # (member index, raw envelope | _ABSENT)
        }

        def reader(index: int) -> None:
            error: Exception | None = None
            raw: Any = _ABSENT
            try:
                raw = members[index].get(key)
            except KeyNotFoundError:
                pass  # a confirmed miss is a response, not a failure
            except DataStoreError as exc:
                error = exc
            with self._lock:
                state["pending"] -= 1
                if error is None:
                    state["acks"] += 1
                    state["responses"].append((index, raw))
                    if state["outcome"] is None and state["acks"] >= r:
                        state["outcome"] = "ok"
                        resolution.put(("ok", None))
                else:
                    state["failures"].append(error)
                    if self._obs.enabled:
                        self._obs.inc("kv.quorum.read_partial")
                    if state["outcome"] is None and len(state["failures"]) > n - r:
                        self._fail_fast(state, "read")
                        resolution.put(("lost", error))
                if state["pending"] == 0:
                    self._finalize_op(state, "read")

        self._spawn("get", reader, n)
        outcome, cause = self._deadline_wait(resolution, f"quorum read of {key!r}")
        if outcome == "lost":
            with self._lock:
                acks, failures = state["acks"], len(state["failures"])
            quorum_error = QuorumReadError(
                self.name, needed=r, got=acks, failures=failures
            )
            quorum_error.__cause__ = cause
            raise quorum_error
        with self._lock:
            self.reads += 1
            # Snapshot at resolution time: includes any straggler that
            # answered between quorum satisfaction and this line -- it
            # answered, so it is eligible for read-repair too.
            responses = list(state["responses"])
        if self._obs.enabled:
            self._obs.inc("kv.quorum.reads")

        # Resolve: the highest stamp among the members that answered.
        winner_stamp: VersionStamp | None = None
        winner_raw: Any = _ABSENT
        unwrapped: dict[int, tuple[VersionStamp, Any, bool] | None] = {}
        for index, raw in responses:
            if raw is _ABSENT:
                unwrapped[index] = None
                continue
            stamp, value, tombstone = _unwrap(raw)
            unwrapped[index] = (stamp, value, tombstone)
            if winner_stamp is None or stamp > winner_stamp:
                winner_stamp, winner_raw = stamp, raw
        if winner_stamp is not None:
            self._observe_stamp(winner_stamp)
            if self._read_repair:
                self._repair_answered(key, winner_stamp, winner_raw, unwrapped)
        if winner_stamp is None:
            raise KeyNotFoundError(key, self.name)
        stamp, value, tombstone = _unwrap(winner_raw)
        if tombstone:
            raise KeyNotFoundError(key, self.name)
        return value, stamp

    def _repair_answered(
        self,
        key: str,
        winner_stamp: VersionStamp,
        winner_raw: Any,
        unwrapped: dict[int, tuple[VersionStamp, Any, bool] | None],
    ) -> None:
        """Push the winning envelope onto stale members that answered.

        Only the members consulted by this read are touched (the others
        are anti-entropy's job); repair failures are tolerated -- the
        member just stays stale until the next read or round.
        """
        _stamp, _value, winner_tombstone = _unwrap(winner_raw)
        for index, entry in unwrapped.items():
            if entry is not None and entry[0] >= winner_stamp:
                continue
            member = self._members[index]
            try:
                member.put(key, winner_raw)
            except DataStoreError:
                continue
            with self._lock:
                self._trees[index].update(
                    key, winner_stamp, tombstone=winner_tombstone
                )
                self.read_repairs += 1
            if self._obs.enabled:
                self._obs.inc("kv.quorum.read_repairs")
                self._obs.emit(
                    "quorum_read_repair",
                    store=self.name,
                    member=member.name,
                    key=key,
                    version=winner_stamp.token(),
                )

    # ------------------------------------------------------------------
    # Key iteration
    # ------------------------------------------------------------------
    def keys(self) -> Iterator[str]:
        """Keys whose group-resolved state is live (tombstones excluded).

        Quorum-tracked keys resolve from the in-memory trees without
        touching any member; keys only a member knows about (pre-existing
        data) are resolved by best-effort member reads.
        """
        with self._lock:
            merged: dict[str, tuple[VersionStamp, bool]] = {}
            for tree in self._trees:
                for key, (stamp, tombstone) in tree.items():
                    current = merged.get(key)
                    if current is None or stamp > current[0]:
                        merged[key] = (stamp, tombstone)
        emitted: set[str] = set()
        for key, (_stamp, tombstone) in merged.items():
            emitted.add(key)
            if not tombstone:
                yield key
        # Legacy pass: anything a member holds that the trees never saw.
        for member in self._members:
            try:
                member_keys = list(member.keys())
            except DataStoreError:
                continue
            for key in member_keys:
                if key in emitted:
                    continue
                emitted.add(key)
                stamp, _value, tombstone = self._resolve_untracked(key)
                if stamp is not None and not tombstone:
                    yield key

    def _resolve_untracked(
        self, key: str
    ) -> tuple[VersionStamp | None, Any, bool]:
        winner: tuple[VersionStamp, Any, bool] | None = None
        for member in self._members:
            try:
                raw = member.get(key)
            except DataStoreError:
                continue
            entry = _unwrap(raw)
            if winner is None or entry[0] > winner[0]:
                winner = entry
        if winner is None:
            return None, None, False
        return winner

    # ------------------------------------------------------------------
    # Anti-entropy
    # ------------------------------------------------------------------
    def schedule_anti_entropy(self) -> None:
        """Submit one round to the scheduler (inline when none is set)."""
        if self._scheduler is not None:
            self._scheduler.submit(self._scheduled_round)
        else:
            self._scheduled_round()

    def _scheduled_round(self) -> None:
        try:
            self.anti_entropy_round()
        except DataStoreError:
            # Background rounds must never kill the scheduler; the next
            # round retries whatever this one could not reach.
            pass

    def anti_entropy_round(self) -> AntiEntropyReport:
        """Compare member trees pairwise and repair divergent ranges.

        Tree comparison is pure in-memory work; only keys inside divergent
        buckets are compared at key level, and only genuinely differing
        copies cost member reads/writes.  Member failures are tolerated
        (the round reports ``converged=False`` and the next round
        retries).
        """
        report = AntiEntropyReport()
        n = len(self._members)
        for left in range(n):
            for right in range(left + 1, n):
                self._reconcile_pair(left, right, report)
        report.converged = report.member_failures == 0 and self._in_sync()
        with self._lock:
            self.antientropy_rounds += 1
            self.antientropy_keys_scanned += report.keys_scanned
            self.antientropy_keys_repaired += report.keys_repaired
        if self._obs.enabled:
            self._obs.inc("kv.antientropy.rounds")
            self._obs.inc("kv.antientropy.buckets_divergent", report.buckets_divergent)
            self._obs.inc("kv.antientropy.keys_scanned", report.keys_scanned)
            self._obs.inc("kv.antientropy.keys_repaired", report.keys_repaired)
            self._obs.emit(
                "antientropy_round",
                store=self.name,
                pairs=report.pairs_compared,
                buckets_divergent=report.buckets_divergent,
                keys_scanned=report.keys_scanned,
                keys_repaired=report.keys_repaired,
                converged=report.converged,
            )
        return report

    def _in_sync(self) -> bool:
        with self._lock:
            roots = {tree.root() for tree in self._trees}
        return len(roots) == 1

    def _reconcile_pair(self, left: int, right: int, report: AntiEntropyReport) -> None:
        with self._lock:
            divergent, compared = self._trees[left].diff(self._trees[right])
        report.pairs_compared += 1
        report.nodes_compared += compared
        report.buckets_divergent += len(divergent)
        for bucket in divergent:
            with self._lock:
                left_entries = dict(self._trees[left].bucket_entries(bucket))
                right_entries = dict(self._trees[right].bucket_entries(bucket))
            for key in set(left_entries) | set(right_entries):
                mine = left_entries.get(key)
                theirs = right_entries.get(key)
                if mine == theirs:
                    continue
                report.keys_scanned += 1
                if theirs is None or (mine is not None and mine[0] > theirs[0]):
                    source, target = left, right
                else:
                    source, target = right, left
                if self._copy_entry(key, source, target):
                    report.keys_repaired += 1
                    if self._members[target].name not in report.repaired_members:
                        report.repaired_members.append(self._members[target].name)
                else:
                    report.member_failures += 1

    def _copy_entry(self, key: str, source: int, target: int) -> bool:
        """Copy the authoritative copy of *key* from one member to another."""
        try:
            raw = self._members[source].get(key)
        except KeyNotFoundError:
            # The tree is ahead of the member (lost out of band): trust the
            # member and forget the entry so the other side wins next round.
            with self._lock:
                self._trees[source].discard(key)
            return False
        except DataStoreError:
            return False
        stamp, _value, tombstone = _unwrap(raw)
        try:
            self._members[target].put(key, raw)
        except DataStoreError:
            return False
        with self._lock:
            self._trees[target].update(key, stamp, tombstone=tombstone)
        return True

    def rebuild_trees(self) -> int:
        """Full-scan fallback: rebuild every reachable member's tree.

        The expensive path tree maintenance exists to avoid -- needed only
        when members changed out of band (or the group was just attached
        to pre-existing stores, e.g. by ``repro quorum``).  Returns keys
        scanned; counted in ``kv.antientropy.full_scans``.
        """
        scanned = 0
        for index, member in enumerate(self._members):
            try:
                member_keys = list(member.keys())
                entries = []
                for key in member_keys:
                    stamp, _value, tombstone = _unwrap(member.get(key))
                    entries.append((key, stamp, tombstone))
            except DataStoreError:
                continue  # unreachable: keep the old tree
            scanned += len(entries)
            with self._lock:
                tree = self._trees[index]
                tree.clear()
                for key, stamp, tombstone in entries:
                    tree.update(key, stamp, tombstone=tombstone)
                self.full_scans += 1
        if self._obs.enabled:
            self._obs.inc("kv.antientropy.full_scans")
        return scanned

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        """Group configuration, member tree roots, and counters."""
        with self._lock:
            members = [
                {
                    "name": member.name,
                    "tracked_keys": tree.tracked,
                    "merkle_root": tree.root(),
                }
                for member, tree in zip(self._members, self._trees)
            ]
            lamport = self._lamport
            counters = {
                "writes": self.writes,
                "reads": self.reads,
                "read_repairs": self.read_repairs,
                "write_partial_failures": self.write_partial_failures,
                "degraded_ops": self.degraded_ops,
                "failed_fast": self.failed_fast,
                "antientropy_rounds": self.antientropy_rounds,
                "antientropy_keys_scanned": self.antientropy_keys_scanned,
                "antientropy_keys_repaired": self.antientropy_keys_repaired,
                "full_scans": self.full_scans,
            }
        roots = {entry["merkle_root"] for entry in members}
        return {
            "name": self.name,
            "n": len(self._members),
            "r": self._read_quorum,
            "w": self._write_quorum,
            "node_id": self.node_id,
            "lamport": lamport,
            "in_sync": len(roots) == 1,
            "members": members,
            "counters": counters,
        }

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.drain(timeout=5.0)
        if self._owns_members:
            for member in self._members:
                member.close()

    def native(self) -> Any:
        return None
