"""The Universal Data Store Manager itself.

The UDSM is a registry: applications register any number of
heterogeneous data stores under names, and get back, per store:

* the synchronous common key-value interface (monitored transparently);
* the asynchronous interface on the shared thread pool;
* enhanced-client construction (integrated caching / encryption /
  compression) with one call;
* the "any store as a cache for any other store" composition (approach 3
  of Section III);
* performance monitoring with persistence to any registered store;
* the workload generator, pre-wired to registered stores.

The native escape hatch is preserved: :meth:`UniversalDataStoreManager.native`
returns whatever backend-specific handle the store exposes (e.g. the DB-API
connection of the SQL store).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..caching.interface import Cache
from ..caching.kvadapter import KeyValueStoreCache
from ..core.enhanced import EnhancedDataStoreClient, WritePolicy
from ..errors import ConfigurationError, DataStoreError
from ..kv.circuit import CircuitBreakerStore
from ..kv.interface import KeyValueStore
from ..obs import Observability, resolve_obs
from .async_api import AsyncKeyValue
from .monitoring import MonitoredStore, PerformanceMonitor, StoreHealth
from .pool import ThreadPool

__all__ = ["UniversalDataStoreManager"]


class UniversalDataStoreManager:
    """Registry of data stores with common sync/async/monitoring features."""

    def __init__(
        self,
        *,
        pool_size: int = 8,
        recent_window: int = 1024,
        obs: Observability | None = None,
    ) -> None:
        """Create an empty manager.

        :param pool_size: threads in the shared async pool (the paper's
            configurable thread-pool size).
        :param recent_window: detailed measurements retained per
            (store, operation) by the monitor.
        :param obs: observability bundle; when set, the performance monitor
            mirrors every measurement into the shared metrics registry
            (``store.<name>.<op>.seconds`` / ``.bytes``) and enhanced
            clients built by :meth:`enhanced_client` inherit the bundle.
        """
        self.obs = resolve_obs(obs)
        self.monitor = PerformanceMonitor(
            recent_window=recent_window,
            registry=self.obs.registry if self.obs.enabled else None,
        )
        self.pool = ThreadPool(pool_size)
        self.health = StoreHealth()
        self._raw: dict[str, KeyValueStore] = {}
        self._monitored: dict[str, MonitoredStore] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def register(self, name: str, store: KeyValueStore) -> MonitoredStore:
        """Register *store* under *name*; returns its monitored view.

        The UDSM takes ownership: :meth:`close` closes registered stores.
        New clients for the same logical store can replace old ones by
        re-registering the name (the paper: clients evolve; the UDSM allows
        newer clients to replace older ones).
        """
        self._check_open()
        if not name:
            raise ConfigurationError("store name must be non-empty")
        previous = self._raw.get(name)
        if previous is not None and previous is not store:
            previous.close()
        self._raw[name] = store
        monitored = MonitoredStore(store, self.monitor, name=name)
        self._monitored[name] = monitored
        return monitored

    def unregister(self, name: str, *, close: bool = True) -> None:
        """Remove *name*; closes the store unless told otherwise."""
        store = self._raw.pop(name, None)
        self._monitored.pop(name, None)
        self.health.untrack(name)
        if store is not None and close:
            store.close()

    # ------------------------------------------------------------------
    # Fault tolerance: per-store circuit protection and health routing
    # ------------------------------------------------------------------
    def protect(self, name: str, **breaker_options: Any) -> MonitoredStore:
        """Put the store registered as *name* behind a circuit breaker.

        The registered entry is replaced in place: every subsequent
        :meth:`store` / :meth:`enhanced_client` / :meth:`async_store` for
        *name* goes through the breaker, and the store's health (derived
        from the breaker state) becomes visible to :meth:`healthy_stores`
        and :meth:`route`.  Keyword options configure the breaker
        (``failure_threshold``, ``recovery_timeout``, ``clock``...; see
        :class:`~repro.kv.circuit.CircuitBreaker`).  Idempotent in effect:
        protecting an already-protected name layers a second breaker, so
        call it once per store.
        """
        self._check_open()
        inner = self.raw_store(name)
        if self.obs.enabled:
            breaker_options.setdefault("obs", self.obs)
        protected = CircuitBreakerStore(inner, **breaker_options)
        # Not register(): that would close `inner`, which lives on as the
        # breaker's backend.
        self._raw[name] = protected
        monitored = MonitoredStore(protected, self.monitor, name=name)
        self._monitored[name] = monitored
        self.health.track(name, protected.breaker)
        return monitored

    def healthy_stores(self) -> list[str]:
        """Registered names currently accepting traffic.

        Stores without a tracked breaker are presumed healthy; stores whose
        breaker is open are excluded until a recovery probe closes it.
        """
        return [name for name in self.store_names() if self.health.is_healthy(name)]

    def route(self, *candidates: str) -> MonitoredStore:
        """The first healthy store among *candidates* (order = preference).

        With no arguments, considers every registered store in name order.
        Raises :class:`~repro.errors.DataStoreError` when every candidate
        is open-circuited -- callers with a cache can then degrade to
        serving stale instead.
        """
        names = list(candidates) if candidates else self.store_names()
        if not names:
            raise DataStoreError("no stores registered to route to")
        for name in names:
            if self.health.is_healthy(name):
                return self.store(name)
        raise DataStoreError(
            f"all candidate stores are unhealthy (open circuit): {', '.join(names)}"
        )

    def store(self, name: str) -> MonitoredStore:
        """The monitored synchronous interface for *name*."""
        try:
            return self._monitored[name]
        except KeyError:
            raise DataStoreError(f"no data store registered as {name!r}") from None

    def raw_store(self, name: str) -> KeyValueStore:
        """The unmonitored backend registered under *name*."""
        try:
            return self._raw[name]
        except KeyError:
            raise DataStoreError(f"no data store registered as {name!r}") from None

    def store_names(self) -> list[str]:
        return sorted(self._raw)

    def __contains__(self, name: str) -> bool:
        return name in self._raw

    def __iter__(self) -> Iterator[str]:
        return iter(self.store_names())

    def native(self, name: str) -> Any:
        """The backend-specific handle for *name* (``None`` if there isn't one)."""
        return self.raw_store(name).native()

    # ------------------------------------------------------------------
    # Interface factories
    # ------------------------------------------------------------------
    def async_store(self, name: str) -> AsyncKeyValue:
        """Nonblocking interface for *name* on the shared pool."""
        return AsyncKeyValue(self.store(name), self.pool)

    def enhanced_client(
        self,
        name: str,
        *,
        cache: Cache | None = None,
        monitored: bool = True,
        **client_options: Any,
    ) -> EnhancedDataStoreClient:
        """Enhanced (cached) client over the store registered as *name*.

        Keyword options are forwarded to
        :class:`~repro.core.enhanced.EnhancedDataStoreClient` (``default_ttl``,
        ``write_policy``, ``encryptor``, ``compressor``...).  When the UDSM
        has observability enabled the client inherits it (pass ``obs=None``
        explicitly to opt a client out).
        """
        base: KeyValueStore = self.store(name) if monitored else self.raw_store(name)
        if self.obs.enabled:
            client_options.setdefault("obs", self.obs)
        return EnhancedDataStoreClient(base, cache=cache, **client_options)

    def store_as_cache(
        self,
        primary: str,
        cache_store: str,
        *,
        default_ttl: float | None = None,
        write_policy: WritePolicy = WritePolicy.WRITE_THROUGH,
        max_entries: int | None = None,
    ) -> EnhancedDataStoreClient:
        """Approach 3: use registered store *cache_store* as a cache for
        *primary* (e.g. the local file system caching a cloud store)."""
        if primary == cache_store:
            raise ConfigurationError("a store cannot cache itself")
        adapter = KeyValueStoreCache(self.raw_store(cache_store), max_entries=max_entries)
        return EnhancedDataStoreClient(
            self.store(primary),
            cache=adapter,
            default_ttl=default_ttl,
            write_policy=write_policy,
        )

    def replicated(
        self,
        primary: str,
        replicas: "list[str]",
        *,
        name: str = "replicated",
        read_repair: bool = True,
    ) -> "MonitoredStore":
        """Compose registered stores into a primary/replica group and
        register the composite under *name* (monitored like any store)."""
        from ..kv.resilience import ReplicatedStore

        composite = ReplicatedStore(
            self.raw_store(primary),
            [self.raw_store(replica) for replica in replicas],
            name=name,
            read_repair=read_repair,
            owns_members=False,  # the registry owns (and closes) the members
        )
        return self.register(name, composite)

    def quorum(
        self,
        members: "list[str]",
        *,
        read_quorum: int,
        write_quorum: int,
        name: str = "quorum",
        node_id: str = "node-0",
        read_repair: bool = True,
        anti_entropy_every: int | None = None,
    ) -> "MonitoredStore":
        """Compose registered stores into an R+W>N quorum group and
        register the composite under *name* (monitored like any store).

        The group inherits the UDSM's observability bundle, so
        ``kv.quorum.*`` / ``kv.antientropy.*`` metrics land in the shared
        registry; set ``anti_entropy_every=k`` to run a Merkle
        anti-entropy round inline after every *k* quorum writes.
        """
        from ..kv.quorum import QuorumReplicatedStore

        composite = QuorumReplicatedStore(
            [self.raw_store(member) for member in members],
            read_quorum=read_quorum,
            write_quorum=write_quorum,
            name=name,
            node_id=node_id,
            read_repair=read_repair,
            anti_entropy_every=anti_entropy_every,
            owns_members=False,  # the registry owns (and closes) the members
            obs=self.obs if self.obs.enabled else None,
        )
        return self.register(name, composite)

    def cluster(
        self,
        members: "list[str]",
        *,
        name: str = "cluster",
        level: int = 3,
        engine: str = "threaded",
        replicas: int = 64,
    ) -> "MonitoredStore":
        """Serve registered stores as shards of one topology-aware cluster
        and register the smart client under *name* (monitored like any store).

        Each member store gets its own in-process shard server (real TCP,
        engine selectable); the registered composite is a
        :class:`~repro.cluster.ClusterStoreClient` at the requested
        intelligence *level* (1 = proxy through any node, 2 =
        topology-subscribed, 3 = hash-routing -- see ``docs/cluster.md``).
        Closing the composite (e.g. via :meth:`close`) also stops the shard
        servers; the member stores themselves stay owned by the registry.
        ``cluster.*`` metrics and ``topology_changed``/``rebalance`` events
        land in the shared registry.
        """
        from ..cluster import ClusterCoordinator, ClusterStoreClient

        if not members:
            raise ConfigurationError("a cluster needs at least one member store")
        shared_obs = self.obs if self.obs.enabled else None
        coordinator = ClusterCoordinator(engine=engine, replicas=replicas, obs=shared_obs)
        try:
            for member in members:
                coordinator.add_shard(member, self.raw_store(member))
            composite = ClusterStoreClient(
                coordinator.seeds,
                level=level,
                name=name,
                obs=shared_obs,
                coordinator=coordinator,  # client.close() stops the servers
            )
        except BaseException:
            coordinator.stop()
            raise
        return self.register(name, composite)

    def migrate(self, source: str, destination: str, **options: Any) -> Any:
        """Copy every key from one registered store to another.

        Options are forwarded to :func:`repro.tools.migration.copy_store`;
        returns its report.
        """
        from ..tools.migration import copy_store

        return copy_store(self.raw_store(source), self.raw_store(destination), **options)

    # ------------------------------------------------------------------
    # Monitoring conveniences
    # ------------------------------------------------------------------
    def report(self) -> str:
        """The monitor's latency table."""
        return self.monitor.report()

    def persist_metrics(self, store_name: str, key: str = "udsm-performance") -> None:
        """Persist monitoring summaries into a registered store."""
        self.monitor.persist(self.raw_store(store_name), key)

    def restore_metrics(self, store_name: str, key: str = "udsm-performance") -> None:
        self.monitor.restore(self.raw_store(store_name), key)

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise DataStoreError("UDSM has been closed")

    def close(self) -> None:
        """Shut the pool down and close every registered store. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self.pool.shutdown()
        for store in self._raw.values():
            store.close()
        self._raw.clear()
        self._monitored.clear()

    def __enter__(self) -> "UniversalDataStoreManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<UniversalDataStoreManager stores={self.store_names()}>"
