"""The workload generator (paper Sections II.A and V).

"The workload generator automatically generates requests over a range of
different request sizes specified by the user. ... Alternatively, users can
provide their own data objects for performance tests either by placing the
data in input files or writing a user-defined method to provide the data.
The workload generator also determines read latencies when caching is being
used for different hit rates specified by the user.  Additionally, the
workload generator also measures the overhead of encryption and
compression."

This module implements all of that against the common key-value interface,
so it runs unchanged over every registered store.  The hit-rate methodology
is the paper's own: measure the no-cache latency and the 100%-hit latency,
then extrapolate intermediate hit rates linearly
(``L(h) = h * L_hit + (1 - h) * L_nocache``); a separate *measured* mixed
workload is provided to validate the extrapolation.
"""

from __future__ import annotations

import os
import random
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from ..caching.interface import Cache
from ..compression.interface import Compressor
from ..core.enhanced import EnhancedDataStoreClient
from ..errors import WorkloadError
from ..kv.interface import KeyValueStore
from ..security.interface import Encryptor
from .report import write_dat

__all__ = [
    "random_payload",
    "compressible_payload",
    "payloads_from_files",
    "SweepPoint",
    "SweepResult",
    "HitRateCurve",
    "CachedReadSpec",
    "CodecTiming",
    "MixedWorkloadResult",
    "WorkloadGenerator",
    "DEFAULT_SIZES",
]

#: Paper-style log-scale size sweep: 1 B .. 1 MB.
DEFAULT_SIZES: tuple[int, ...] = (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000)

#: Default runs averaged per data point (paper: "averaged over 4 runs").
DEFAULT_REPEATS = 4


# ----------------------------------------------------------------------
# Payload sources
# ----------------------------------------------------------------------
def random_payload(size: int, index: int = 0, *, seed: int = 0) -> bytes:
    """Incompressible pseudorandom bytes (deterministic per size/index)."""
    return random.Random(f"{seed}/{size}/{index}").randbytes(size)


_WORDS = (
    b"data", b"store", b"client", b"cache", b"latency", b"object", b"cloud",
    b"request", b"key", b"value", b"server", b"update", b"read", b"write",
)


def compressible_payload(size: int, index: int = 0, *, seed: int = 0) -> bytes:
    """Text-like bytes with realistic redundancy (compresses well)."""
    rng = random.Random(f"{seed}/{size}/{index}/text")
    parts: list[bytes] = []
    length = 0
    while length < size:
        word = _WORDS[rng.randrange(len(_WORDS))]
        parts.append(word)
        parts.append(b" ")
        length += len(word) + 1
    return b"".join(parts)[:size]


def payloads_from_files(paths: Iterable[str | os.PathLike[str]]) -> list[bytes]:
    """Load user-supplied test objects from files (the paper's input-file
    option); returned payloads are used verbatim at their natural sizes."""
    payloads = []
    for path in paths:
        payloads.append(Path(path).read_bytes())
    if not payloads:
        raise WorkloadError("no payload files given")
    return payloads


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------
@dataclass
class SweepPoint:
    """Latency samples for one object size."""

    size: int
    samples: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def stdev(self) -> float:
        return statistics.stdev(self.samples) if len(self.samples) > 1 else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0


@dataclass
class SweepResult:
    """A size sweep for one (store, operation)."""

    store: str
    operation: str
    points: list[SweepPoint]

    def mean_ms(self) -> list[tuple[int, float]]:
        """(size, mean latency in ms) series, ready for plotting."""
        return [(p.size, p.mean * 1e3) for p in self.points]

    def point_for(self, size: int) -> SweepPoint:
        for point in self.points:
            if point.size == size:
                return point
        raise WorkloadError(f"no data point for size {size}")

    def write_dat(self, path: str | os.PathLike[str]) -> None:
        """Write ``size mean_ms stdev_ms min_ms max_ms`` columns."""
        write_dat(
            path,
            ("size_bytes", "mean_ms", "stdev_ms", "min_ms", "max_ms"),
            (
                (p.size, p.mean * 1e3, p.stdev * 1e3, p.minimum * 1e3, p.maximum * 1e3)
                for p in self.points
            ),
        )


@dataclass
class HitRateCurve:
    """Read latency vs size at several cache hit rates (one paper figure).

    ``curves`` maps hit rate (0.0-1.0) to a (size, latency_seconds) series.
    """

    store: str
    cache_name: str
    no_cache: SweepResult
    full_hit: SweepResult
    hit_rates: tuple[float, ...]

    @property
    def curves(self) -> dict[float, list[tuple[int, float]]]:
        """Extrapolated series per hit rate (paper methodology)."""
        result: dict[float, list[tuple[int, float]]] = {}
        for rate in self.hit_rates:
            series: list[tuple[int, float]] = []
            for nc_point in self.no_cache.points:
                hit_point = self.full_hit.point_for(nc_point.size)
                latency = rate * hit_point.mean + (1.0 - rate) * nc_point.mean
                series.append((nc_point.size, latency))
            result[rate] = series
        return result

    def write_dat(self, path: str | os.PathLike[str]) -> None:
        """One row per size; one latency column (ms) per hit rate."""
        header = ["size_bytes"] + [f"hit_{int(rate * 100)}pct_ms" for rate in self.hit_rates]
        curves = self.curves
        rows = []
        for index, nc_point in enumerate(self.no_cache.points):
            row: list[object] = [nc_point.size]
            for rate in self.hit_rates:
                row.append(curves[rate][index][1] * 1e3)
            rows.append(row)
        write_dat(path, header, rows)


@dataclass(frozen=True)
class CachedReadSpec:
    """Parameters of a cached-read experiment."""

    hit_rates: tuple[float, ...] = (0.0, 0.25, 0.50, 0.75, 1.0)
    ttl: float | None = None


@dataclass
class CodecTiming:
    """Encode/decode timing sweep for an encryptor or compressor."""

    codec: str
    encode: SweepResult
    decode: SweepResult
    output_sizes: list[tuple[int, int]]  # (input size, output size)


@dataclass
class MixedWorkloadResult:
    """Outcome of :meth:`WorkloadGenerator.run_mixed_workload`."""

    operations: int
    elapsed_seconds: float
    read_latencies: list[float]
    write_latencies: list[float]

    @property
    def throughput(self) -> float:
        """Operations per second over the measured phase."""
        return self.operations / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def mean_read_latency(self) -> float:
        return statistics.fmean(self.read_latencies) if self.read_latencies else 0.0

    @property
    def mean_write_latency(self) -> float:
        return statistics.fmean(self.write_latencies) if self.write_latencies else 0.0

    @property
    def read_fraction(self) -> float:
        return len(self.read_latencies) / self.operations if self.operations else 0.0


# ----------------------------------------------------------------------
# The generator
# ----------------------------------------------------------------------
class WorkloadGenerator:
    """Drives stores, caches, and codecs through measured workloads."""

    def __init__(
        self,
        *,
        sizes: Sequence[int] = DEFAULT_SIZES,
        repeats: int = DEFAULT_REPEATS,
        payload: Callable[[int, int], bytes] = random_payload,
        key_prefix: str = "wl",
        seed: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        """Configure a generator.

        :param sizes: object sizes to sweep (paper: user-specified range).
        :param repeats: runs averaged per data point.
        :param payload: user-definable payload source ``(size, index) -> bytes``
            (the paper's user-defined-method option); defaults to
            incompressible random bytes.
        :param clock: timestamp source (injectable for tests).
        """
        if not sizes:
            raise WorkloadError("sizes must be non-empty")
        if any(size < 0 for size in sizes):
            raise WorkloadError("sizes must be non-negative")
        if repeats < 1:
            raise WorkloadError("repeats must be at least 1")
        self.sizes = tuple(sizes)
        self.repeats = repeats
        self._payload = payload
        self._key_prefix = key_prefix
        self._seed = seed
        self._clock = clock

    # ------------------------------------------------------------------
    def _key(self, size: int, run: int) -> str:
        return f"{self._key_prefix}:{size}:{run}"

    def _time(self, thunk: Callable[[], object]) -> float:
        start = self._clock()
        thunk()
        return self._clock() - start

    # ------------------------------------------------------------------
    # Plain store sweeps (Figures 9 and 10)
    # ------------------------------------------------------------------
    def measure_writes(self, store: KeyValueStore, *, cleanup: bool = True) -> SweepResult:
        """Write latency per size: each sample is one timed ``put``."""
        points = []
        for size in self.sizes:
            point = SweepPoint(size)
            for run in range(self.repeats):
                payload = self._payload(size, run)
                key = self._key(size, run)
                point.samples.append(self._time(lambda: store.put(key, payload)))
            points.append(point)
        if cleanup:
            self._cleanup(store)
        return SweepResult(store.name, "write", points)

    def measure_reads(self, store: KeyValueStore, *, cleanup: bool = True) -> SweepResult:
        """Read latency per size: keys are pre-populated, then timed ``get``s."""
        for size in self.sizes:
            for run in range(self.repeats):
                store.put(self._key(size, run), self._payload(size, run))
        points = []
        for size in self.sizes:
            point = SweepPoint(size)
            for run in range(self.repeats):
                key = self._key(size, run)
                point.samples.append(self._time(lambda: store.get(key)))
            points.append(point)
        if cleanup:
            self._cleanup(store)
        return SweepResult(store.name, "read", points)

    def _cleanup(self, store: KeyValueStore) -> None:
        for size in self.sizes:
            for run in range(self.repeats):
                store.delete(self._key(size, run))

    # ------------------------------------------------------------------
    # Cached reads (Figures 11-19)
    # ------------------------------------------------------------------
    def measure_cached_reads(
        self,
        store: KeyValueStore,
        cache: Cache,
        spec: CachedReadSpec = CachedReadSpec(),
    ) -> HitRateCurve:
        """The paper's cached-read experiment for one (store, cache) pair.

        Measures the no-cache read latency and the 100%-hit latency, then
        extrapolates the requested intermediate hit rates.  The cache is
        cleared afterwards; the store's keys are cleaned up.
        """
        no_cache = self.measure_reads(store, cleanup=False)

        client = EnhancedDataStoreClient(store, cache=cache, default_ttl=spec.ttl)
        points = []
        for size in self.sizes:
            point = SweepPoint(size)
            for run in range(self.repeats):
                key = self._key(size, run)
                client.get(key)  # warm: populates the cache
                point.samples.append(self._time(lambda: client.get(key)))
            points.append(point)
        full_hit = SweepResult(f"{store.name}+{cache.name}", "read-hit", points)

        cache.clear()
        self._cleanup(store)
        return HitRateCurve(
            store=store.name,
            cache_name=cache.name,
            no_cache=no_cache,
            full_hit=full_hit,
            hit_rates=spec.hit_rates,
        )

    def measure_mixed_reads(
        self,
        store: KeyValueStore,
        cache: Cache,
        *,
        hit_rate: float,
        size: int,
        operations: int = 200,
        ttl: float | None = None,
    ) -> tuple[float, float]:
        """*Measured* (not extrapolated) mean read latency at a target hit
        rate: each read is a cache hit with probability *hit_rate*, a forced
        miss otherwise.  Returns ``(mean_latency_s, achieved_hit_rate)``.

        Used to validate the extrapolation the figures rely on.
        """
        if not 0.0 <= hit_rate <= 1.0:
            raise WorkloadError("hit_rate must be within [0, 1]")
        client = EnhancedDataStoreClient(store, cache=cache, default_ttl=ttl)
        key = self._key(size, 0)
        store.put(key, self._payload(size, 0))
        client.get(key)  # warm
        rng = random.Random(f"{self._seed}/mixed/{size}")
        latencies = []
        for _ in range(operations):
            if rng.random() >= hit_rate:
                client.invalidate(key)  # forces the next read to miss
            latencies.append(self._time(lambda: client.get(key)))
        achieved = client.counters.hit_rate
        cache.clear()
        store.delete(key)
        return statistics.fmean(latencies), achieved

    # ------------------------------------------------------------------
    # Mixed (throughput-oriented) workloads
    # ------------------------------------------------------------------
    def run_mixed_workload(
        self,
        target: Any,
        *,
        operations: int = 1_000,
        read_fraction: float = 0.9,
        key_space: int = 100,
        zipf_s: float = 1.1,
        value_size: int = 1_024,
    ) -> "MixedWorkloadResult":
        """Drive *target* with a skewed read/write mix and measure throughput.

        *target* is anything with ``get(key)``/``put(key, value)`` -- a
        store, a monitored store, or an enhanced (cached) client.  Keys are
        drawn from a Zipf(*zipf_s*) popularity distribution over
        *key_space* keys, the shape real key-value workloads exhibit, so
        cache behaviour under this driver is realistic.

        The key space is fully populated first; the measured phase is
        *operations* gets/puts in the requested ratio.
        """
        if not 0.0 <= read_fraction <= 1.0:
            raise WorkloadError("read_fraction must be within [0, 1]")
        if operations < 1 or key_space < 1:
            raise WorkloadError("operations and key_space must be positive")
        rng = random.Random(f"{self._seed}/zipf/{key_space}/{operations}")
        weights = [1.0 / (rank**zipf_s) for rank in range(1, key_space + 1)]
        keys = [f"{self._key_prefix}:mix:{i}" for i in range(key_space)]
        payload = self._payload(value_size, 0)
        for key in keys:
            target.put(key, payload)

        picks = rng.choices(range(key_space), weights, k=operations)
        coin = [rng.random() < read_fraction for _ in range(operations)]
        read_latencies: list[float] = []
        write_latencies: list[float] = []
        start = self._clock()
        for index, is_read in zip(picks, coin):
            key = keys[index]
            op_start = self._clock()
            if is_read:
                target.get(key)
                read_latencies.append(self._clock() - op_start)
            else:
                target.put(key, payload)
                write_latencies.append(self._clock() - op_start)
        elapsed = self._clock() - start
        return MixedWorkloadResult(
            operations=operations,
            elapsed_seconds=elapsed,
            read_latencies=read_latencies,
            write_latencies=write_latencies,
        )

    # ------------------------------------------------------------------
    # Codec overheads (Figures 20 and 21)
    # ------------------------------------------------------------------
    def measure_encryptor(self, encryptor: Encryptor) -> CodecTiming:
        """Encryption/decryption time per size (paper Figure 20)."""
        return self._measure_codec(
            encryptor.name, encryptor.encrypt, encryptor.decrypt
        )

    def measure_compressor(
        self,
        compressor: Compressor,
        *,
        payload: Callable[[int, int], bytes] | None = None,
    ) -> CodecTiming:
        """Compression/decompression time per size (paper Figure 21).

        Defaults to *compressible* payloads -- timing gzip on random bytes
        measures its worst case, not its typical one.
        """
        source = payload if payload is not None else compressible_payload
        return self._measure_codec(
            compressor.name, compressor.compress, compressor.decompress, payload=source
        )

    def _measure_codec(
        self,
        name: str,
        encode: Callable[[bytes], bytes],
        decode: Callable[[bytes], bytes],
        *,
        payload: Callable[[int, int], bytes] | None = None,
    ) -> CodecTiming:
        source = payload if payload is not None else self._payload
        encode_points, decode_points, output_sizes = [], [], []
        for size in self.sizes:
            enc_point, dec_point = SweepPoint(size), SweepPoint(size)
            encoded = b""
            for run in range(self.repeats):
                data = source(size, run)
                start = self._clock()
                encoded = encode(data)
                enc_point.samples.append(self._clock() - start)
                start = self._clock()
                decode(encoded)
                dec_point.samples.append(self._clock() - start)
            encode_points.append(enc_point)
            decode_points.append(dec_point)
            output_sizes.append((size, len(encoded)))
        return CodecTiming(
            codec=name,
            encode=SweepResult(name, "encode", encode_points),
            decode=SweepResult(name, "decode", decode_points),
            output_sizes=output_sizes,
        )

    # ------------------------------------------------------------------
    # Multi-store comparison (the "easily compare data stores" feature)
    # ------------------------------------------------------------------
    def compare_stores(
        self, stores: Iterable[KeyValueStore]
    ) -> dict[str, dict[str, SweepResult]]:
        """Read and write sweeps for several stores in one call.

        Returns ``{store_name: {"read": ..., "write": ...}}``.
        """
        results: dict[str, dict[str, SweepResult]] = {}
        for store in stores:
            results[store.name] = {
                "write": self.measure_writes(store, cleanup=False),
                "read": self.measure_reads(store, cleanup=True),
            }
        return results
