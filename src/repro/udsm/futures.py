"""ListenableFuture: a future with completion callbacks.

The paper's Java UDSM uses Guava's ``ListenableFuture`` rather than the
plain JDK ``Future`` for one reason: callers can *register callbacks* to run
when the asynchronous computation completes, instead of having to block.
This module is the from-scratch Python analogue:

* :meth:`ListenableFuture.result` / :meth:`exception` -- blocking retrieval
  with optional timeout (the plain ``Future`` contract);
* :meth:`ListenableFuture.add_listener` -- register a callback; callbacks
  added after completion run immediately on the caller's thread, callbacks
  added before run on the completing thread, in registration order;
* :meth:`ListenableFuture.transform` / :meth:`ListenableFuture.catching` --
  derived futures (Guava's ``Futures.transform`` idiom), used to chain
  data-store operations without blocking;
* :meth:`ListenableFuture.cancel` -- best-effort cancellation of not-yet-
  started work.

Listener exceptions are swallowed after being recorded on
:attr:`ListenableFuture.listener_errors`; a broken callback must not poison
the future's value for other consumers.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable, Generic, TypeVar

from ..errors import FutureCancelledError, FutureTimeoutError

__all__ = ["FutureState", "ListenableFuture", "completed_future", "failed_future", "gather"]

T = TypeVar("T")
U = TypeVar("U")


class FutureState(enum.Enum):
    """Lifecycle of a future."""

    PENDING = "pending"      # queued, not yet picked up by a worker
    RUNNING = "running"      # a worker is executing it
    COMPLETED = "completed"  # finished with a value
    FAILED = "failed"        # finished with an exception
    CANCELLED = "cancelled"  # cancelled before it started


class ListenableFuture(Generic[T]):
    """Result of an asynchronous computation, with listener support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._done_event = threading.Event()
        self._state = FutureState.PENDING
        self._result: T | None = None
        self._exception: BaseException | None = None
        self._listeners: list[Callable[["ListenableFuture[T]"], None]] = []
        #: exceptions raised by listeners (diagnostics; never re-raised)
        self.listener_errors: list[BaseException] = []

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> FutureState:
        with self._lock:
            return self._state

    def done(self) -> bool:
        """True once completed, failed, or cancelled."""
        return self._done_event.is_set()

    def cancelled(self) -> bool:
        return self.state is FutureState.CANCELLED

    # ------------------------------------------------------------------
    # Producer side (used by the thread pool)
    # ------------------------------------------------------------------
    def _try_start(self) -> bool:
        """Transition PENDING -> RUNNING; False if cancelled already."""
        with self._lock:
            if self._state is not FutureState.PENDING:
                return False
            self._state = FutureState.RUNNING
            return True

    def set_result(self, value: T) -> None:
        """Complete the future with *value*."""
        with self._lock:
            if self._done_event.is_set():
                return  # lost the race with cancel(); keep the first outcome
            self._result = value
            self._state = FutureState.COMPLETED
            listeners = self._drain_listeners()
            self._done_event.set()
        self._fire(listeners)

    def set_exception(self, exc: BaseException) -> None:
        """Fail the future with *exc*."""
        with self._lock:
            if self._done_event.is_set():
                return
            self._exception = exc
            self._state = FutureState.FAILED
            listeners = self._drain_listeners()
            self._done_event.set()
        self._fire(listeners)

    def cancel(self) -> bool:
        """Cancel if not yet started.  Returns True on success."""
        with self._lock:
            if self._state is not FutureState.PENDING:
                return False
            self._state = FutureState.CANCELLED
            listeners = self._drain_listeners()
            self._done_event.set()
        self._fire(listeners)
        return True

    def _drain_listeners(self) -> list[Callable[["ListenableFuture[T]"], None]]:
        listeners, self._listeners = self._listeners, []
        return listeners

    def _fire(self, listeners: list[Callable[["ListenableFuture[T]"], None]]) -> None:
        for listener in listeners:
            try:
                listener(self)
            except BaseException as exc:  # noqa: BLE001 - diagnostic capture
                self.listener_errors.append(exc)

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def result(self, timeout: float | None = None) -> T:
        """Block until done and return the value (or raise its exception).

        :raises FutureTimeoutError: not done within *timeout* seconds.
        :raises FutureCancelledError: the future was cancelled.
        """
        if not self._done_event.wait(timeout):
            raise FutureTimeoutError(f"future not done within {timeout} s")
        with self._lock:
            if self._state is FutureState.CANCELLED:
                raise FutureCancelledError("future was cancelled")
            if self._exception is not None:
                raise self._exception
            return self._result  # type: ignore[return-value]

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until done; return the exception (``None`` on success)."""
        if not self._done_event.wait(timeout):
            raise FutureTimeoutError(f"future not done within {timeout} s")
        with self._lock:
            if self._state is FutureState.CANCELLED:
                return FutureCancelledError("future was cancelled")
            return self._exception

    def wait(self, timeout: float | None = None) -> bool:
        """Block until done; True if it finished, False on timeout."""
        return self._done_event.wait(timeout)

    def add_listener(self, listener: Callable[["ListenableFuture[T]"], None]) -> None:
        """Run *listener(self)* when done (immediately if already done)."""
        with self._lock:
            if not self._done_event.is_set():
                self._listeners.append(listener)
                return
        self._fire([listener])

    # ------------------------------------------------------------------
    # Derived futures
    # ------------------------------------------------------------------
    def transform(self, fn: Callable[[T], U]) -> "ListenableFuture[U]":
        """A future holding ``fn(result)``; failures and cancellation
        propagate unchanged."""
        derived: ListenableFuture[U] = ListenableFuture()

        def on_done(parent: "ListenableFuture[T]") -> None:
            if parent.cancelled():
                derived.cancel()
                # cancel() only works from PENDING; force if needed
                if not derived.done():
                    derived.set_exception(FutureCancelledError("parent cancelled"))
                return
            exc = parent.exception()
            if exc is not None:
                derived.set_exception(exc)
                return
            try:
                derived.set_result(fn(parent.result()))
            except BaseException as transform_exc:  # noqa: BLE001
                derived.set_exception(transform_exc)

        self.add_listener(on_done)
        return derived

    def catching(self, fn: Callable[[BaseException], T]) -> "ListenableFuture[T]":
        """A future that recovers from failure with ``fn(exception)``."""
        derived: ListenableFuture[T] = ListenableFuture()

        def on_done(parent: "ListenableFuture[T]") -> None:
            exc = parent.exception() if not parent.cancelled() else FutureCancelledError()
            if exc is None:
                derived.set_result(parent.result())
                return
            try:
                derived.set_result(fn(exc))
            except BaseException as recover_exc:  # noqa: BLE001
                derived.set_exception(recover_exc)

        self.add_listener(on_done)
        return derived

    def __repr__(self) -> str:
        return f"<ListenableFuture state={self.state.value}>"


def completed_future(value: T) -> ListenableFuture[T]:
    """An already-completed future (Guava's ``immediateFuture``)."""
    future: ListenableFuture[T] = ListenableFuture()
    future.set_result(value)
    return future


def failed_future(exc: BaseException) -> ListenableFuture[Any]:
    """An already-failed future (Guava's ``immediateFailedFuture``)."""
    future: ListenableFuture[Any] = ListenableFuture()
    future.set_exception(exc)
    return future


def gather(
    futures: "list[ListenableFuture[T]]", timeout: float | None = None
) -> list[T]:
    """Wait for every future and return their results in order.

    The Guava ``Futures.allAsList`` idiom for batch operations: the caller
    dispatches N asynchronous requests, keeps working, then gathers.  The
    first failure (or cancellation) is raised; *timeout* bounds the total
    wait, not each future.
    """
    import time as _time

    deadline = None if timeout is None else _time.monotonic() + timeout
    results: list[T] = []
    for future in futures:
        remaining = None if deadline is None else max(0.0, deadline - _time.monotonic())
        results.append(future.result(remaining))
    return results
