"""Performance monitoring (paper Section II.A).

"The UDSM collects both summary performance statistics such as average
latency as well as detailed performance statistics such as past latency
measurements taken over a period of time.  There is thus the capability to
collect detailed data for recent requests while only retaining summary
statistics for older data.  Performance data can be stored persistently
using any of the data stores supported by the UDSM."

Implementation:

* :class:`OperationStats` -- per (store, operation): running summary
  (count/mean/variance via Welford, min/max) that never forgets, plus a
  bounded ring of the most recent individual measurements for percentile
  queries.  Old measurements age out of the ring but stay in the summary.
* :class:`PerformanceMonitor` -- the registry of those stats, with
  :meth:`~PerformanceMonitor.persist` / :meth:`~PerformanceMonitor.restore`
  onto any :class:`~repro.kv.interface.KeyValueStore`.
* :class:`MonitoredStore` -- a transparent wrapper that times every
  key-value operation on a store and feeds the monitor; because it is
  written against the interface, monitoring works for every backend.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

from ..errors import MonitoringError
from ..kv.circuit import CircuitBreaker, CircuitState
from ..kv.interface import KeyValueStore, NotModified
from ..kv.wrappers import _DelegatingStore
from ..obs.events import EventLog
from ..obs.metrics import Counter, Histogram, MetricsRegistry

__all__ = ["OperationStats", "PerformanceMonitor", "MonitoredStore", "StoreHealth"]

DEFAULT_RECENT_WINDOW = 1024


class OperationStats:
    """Latency statistics for one (store, operation) pair.

    All latencies are in seconds.  Thread-safe.
    """

    def __init__(
        self,
        recent_window: int = DEFAULT_RECENT_WINDOW,
        *,
        timer: "Callable[[], float]" = time.monotonic,
    ) -> None:
        if recent_window < 1:
            raise MonitoringError("recent_window must be at least 1")
        self._lock = threading.Lock()
        self._timer = timer
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._total_bytes = 0
        self._recent: deque[float] = deque(maxlen=recent_window)
        self._recent_at: deque[float] = deque(maxlen=recent_window)

    # ------------------------------------------------------------------
    def record(self, latency: float, *, size: int = 0) -> None:
        """Add one measurement (Welford update + recent ring)."""
        with self._lock:
            self._count += 1
            delta = latency - self._mean
            self._mean += delta / self._count
            self._m2 += delta * (latency - self._mean)
            self._min = min(self._min, latency)
            self._max = max(self._max, latency)
            self._total_bytes += size
            self._recent.append(latency)
            self._recent_at.append(self._timer())

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._mean

    @property
    def stdev(self) -> float:
        with self._lock:
            if self._count < 2:
                return 0.0
            return math.sqrt(self._m2 / (self._count - 1))

    @property
    def minimum(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes

    def recent(self) -> list[float]:
        """Copy of the detailed recent-measurement window (oldest first)."""
        with self._lock:
            return list(self._recent)

    def recent_rate(self, window_seconds: float = 60.0) -> float:
        """Operations per second over the trailing *window_seconds*.

        Computed from the retained detail ring, so the answer saturates at
        the ring capacity -- a rate that equals ``capacity / window`` may
        be an undercount.
        """
        if window_seconds <= 0:
            raise MonitoringError("window_seconds must be positive")
        cutoff = self._timer() - window_seconds
        with self._lock:
            in_window = sum(1 for stamp in self._recent_at if stamp >= cutoff)
        return in_window / window_seconds

    def percentile(self, fraction: float) -> float:
        """Percentile over the *recent* window (nearest-rank).

        Summary stats cover all history; percentiles are only meaningful
        over the retained detail, which is exactly the paper's
        detailed-recent/summary-old split.
        """
        if not 0.0 <= fraction <= 1.0:
            raise MonitoringError("percentile fraction must be within [0, 1]")
        with self._lock:
            if not self._recent:
                return 0.0
            ordered = sorted(self._recent)
            rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
            return ordered[rank]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Summary (not the recent ring) as a plain dict for persistence."""
        with self._lock:
            return {
                "count": self._count,
                "mean": self._mean,
                "m2": self._m2,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "total_bytes": self._total_bytes,
            }

    @classmethod
    def from_dict(cls, data: dict[str, Any], *, recent_window: int = DEFAULT_RECENT_WINDOW) -> "OperationStats":
        stats = cls(recent_window)
        stats._count = int(data["count"])
        stats._mean = float(data["mean"])
        stats._m2 = float(data["m2"])
        stats._min = math.inf if data["min"] is None else float(data["min"])
        stats._max = -math.inf if data["max"] is None else float(data["max"])
        stats._total_bytes = int(data.get("total_bytes", 0))
        return stats

    def __repr__(self) -> str:
        return (
            f"OperationStats(count={self.count}, mean={self.mean * 1e3:.3f}ms, "
            f"stdev={self.stdev * 1e3:.3f}ms)"
        )


class PerformanceMonitor:
    """Registry of per-(store, operation) statistics.

    When constructed with a shared :class:`~repro.obs.metrics.MetricsRegistry`
    (the UDSM passes its observability registry automatically), every
    measurement is *also* forwarded into ``store.<name>.<op>.seconds``
    latency histograms and ``store.<name>.<op>.bytes`` counters, so the
    monitor's tables and the registry's exports describe one set of numbers.
    """

    def __init__(
        self,
        *,
        recent_window: int = DEFAULT_RECENT_WINDOW,
        registry: MetricsRegistry | None = None,
        events: "EventLog | None" = None,
        slow_op_threshold: float | None = None,
    ) -> None:
        """:param events: a structured event log; measurements at or over
            *slow_op_threshold* seconds are journalled there as ``slow_op``
            records (monitor-sourced, so no span tree is attached).
        :param slow_op_threshold: slow-operation latency floor in seconds;
            ``None`` disables the slow-op journal."""
        self._recent_window = recent_window
        self._stats: dict[tuple[str, str], OperationStats] = {}
        self._lock = threading.Lock()
        self._registry = registry
        self._handles: dict[tuple[str, str], tuple[Histogram, Counter]] = {}
        self._events = events
        self._slow_op_threshold = slow_op_threshold

    # ------------------------------------------------------------------
    def record(self, store: str, operation: str, latency: float, *, size: int = 0) -> None:
        """Record one measurement for ``store.operation``."""
        self.stats_for(store, operation).record(latency, size=size)
        if self._registry is not None:
            histogram, bytes_counter = self._handles_for(store, operation)
            histogram.observe(latency)
            if size:
                bytes_counter.inc(size)
        if (
            self._events is not None
            and self._slow_op_threshold is not None
            and latency >= self._slow_op_threshold
        ):
            self._events.emit(
                "slow_op",
                source="monitor",
                op=f"{store}.{operation}",
                seconds=round(latency, 6),
                threshold=self._slow_op_threshold,
            )

    def _handles_for(self, store: str, operation: str) -> tuple[Histogram, Counter]:
        key = (store, operation)
        handles = self._handles.get(key)
        if handles is None:
            with self._lock:
                handles = self._handles.get(key)
                if handles is None:
                    prefix = f"store.{store}.{operation}"
                    handles = (
                        self._registry.histogram(prefix + ".seconds"),
                        self._registry.counter(prefix + ".bytes"),
                    )
                    self._handles[key] = handles
        return handles

    def stats_for(self, store: str, operation: str) -> OperationStats:
        """Get (creating if needed) the stats bucket for a pair."""
        key = (store, operation)
        with self._lock:
            stats = self._stats.get(key)
            if stats is None:
                stats = OperationStats(self._recent_window)
                self._stats[key] = stats
            return stats

    def snapshot(self) -> dict[tuple[str, str], OperationStats]:
        """Copy of the registry (buckets themselves are live objects)."""
        with self._lock:
            return dict(self._stats)

    def report(self) -> str:
        """Human-readable latency table, one row per (store, operation)."""
        rows = [
            ("store", "op", "count", "mean ms", "stdev ms", "p50 ms", "p95 ms", "p99 ms", "max ms")
        ]
        for (store, operation), stats in sorted(self.snapshot().items()):
            rows.append(
                (
                    store,
                    operation,
                    str(stats.count),
                    f"{stats.mean * 1e3:.3f}",
                    f"{stats.stdev * 1e3:.3f}",
                    f"{stats.percentile(0.50) * 1e3:.3f}",
                    f"{stats.percentile(0.95) * 1e3:.3f}",
                    f"{stats.percentile(0.99) * 1e3:.3f}",
                    f"{stats.maximum * 1e3:.3f}",
                )
            )
        widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            for row in rows
        ]
        lines.insert(1, "  ".join("-" * width for width in widths))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Persistence onto any registered store
    # ------------------------------------------------------------------
    def persist(self, store: KeyValueStore, key: str = "udsm-performance") -> None:
        """Write all summaries to *store* under *key*."""
        payload = {
            f"{name}\x00{operation}": stats.to_dict()
            for (name, operation), stats in self.snapshot().items()
        }
        store.put(key, payload)

    def restore(self, store: KeyValueStore, key: str = "udsm-performance") -> None:
        """Merge persisted summaries back in (replacing same-name buckets)."""
        payload = store.get(key)
        if not isinstance(payload, dict):
            raise MonitoringError(f"persisted monitor data under {key!r} is corrupt")
        with self._lock:
            for packed, data in payload.items():
                name, _sep, operation = packed.partition("\x00")
                self._stats[(name, operation)] = OperationStats.from_dict(
                    data, recent_window=self._recent_window
                )


class StoreHealth:
    """Per-store health, derived from tracked circuit breakers.

    The monitoring counterpart of the fault-tolerance plane: the UDSM
    registers the breaker of every store it protects (see
    :meth:`~repro.udsm.manager.UniversalDataStoreManager.protect`), and
    routing decisions consult this registry to steer traffic away from
    open-circuited stores.  A store with no tracked breaker is presumed
    healthy -- health tracking is opt-in per store.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def track(self, name: str, breaker: CircuitBreaker) -> None:
        """Derive *name*'s health from *breaker* from now on."""
        with self._lock:
            self._breakers[name] = breaker

    def untrack(self, name: str) -> None:
        with self._lock:
            self._breakers.pop(name, None)

    def is_healthy(self, name: str) -> bool:
        """False only while *name*'s breaker is refusing calls (OPEN).

        HALF_OPEN counts as healthy: the breaker is admitting probes, and
        shunning the store then would prevent it from ever recovering.
        """
        with self._lock:
            breaker = self._breakers.get(name)
        if breaker is None:
            return True
        # Reading .state advances open -> half-open once recovery is due, so
        # a quiet store never reads as unhealthy forever.
        return breaker.state is not CircuitState.OPEN

    def snapshot(self) -> dict[str, CircuitState]:
        """Current breaker state per tracked store."""
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.state for name, breaker in breakers.items()}


class MonitoredStore(_DelegatingStore):
    """Times every operation of a wrapped store into a monitor.

    Written once against the interface; monitoring therefore comes free for
    every backend, exactly as the paper argues for interface-level features.
    """

    def __init__(
        self,
        inner: KeyValueStore,
        monitor: PerformanceMonitor,
        *,
        name: str | None = None,
    ) -> None:
        super().__init__(inner, name=name)
        self._monitor = monitor

    @property
    def monitor(self) -> PerformanceMonitor:
        return self._monitor

    # ------------------------------------------------------------------
    def _timed(self, operation: str, thunk, *, size: int = 0) -> Any:
        start = time.perf_counter()
        try:
            return thunk()
        finally:
            self._monitor.record(
                self.name, operation, time.perf_counter() - start, size=size
            )

    @staticmethod
    def _size_of(value: Any) -> int:
        if isinstance(value, (bytes, bytearray)):
            return len(value)
        if isinstance(value, str):
            return len(value)
        return 0

    def get(self, key: str) -> Any:
        value = self._timed("get", lambda: self._inner.get(key))
        return value

    def put(self, key: str, value: Any) -> None:
        self._timed("put", lambda: self._inner.put(key, value), size=self._size_of(value))

    def put_with_version(self, key: str, value: Any) -> str | None:
        return self._timed(
            "put", lambda: self._inner.put_with_version(key, value), size=self._size_of(value)
        )

    def delete(self, key: str) -> bool:
        return self._timed("delete", lambda: self._inner.delete(key))

    def contains(self, key: str) -> bool:
        return self._timed("contains", lambda: self._inner.contains(key))

    def get_with_version(self, key: str) -> tuple[Any, str]:
        return self._timed("get", lambda: self._inner.get_with_version(key))

    def get_if_modified(self, key: str, version: str) -> tuple[Any, str] | NotModified:
        return self._timed("revalidate", lambda: self._inner.get_if_modified(key, version))

    def keys(self) -> Iterator[str]:
        return self._timed("keys", lambda: self._inner.keys())

    def keys_with_prefix(self, prefix: str) -> Iterator[str]:
        return self._timed("keys", lambda: self._inner.keys_with_prefix(prefix))

    def size(self) -> int:
        return self._timed("size", lambda: self._inner.size())
