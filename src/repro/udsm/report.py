"""Text output for performance data.

The paper: "Data from performance testing is stored in text files which can
be easily imported into graph plotting tools such as gnuplot, spreadsheets
... and data analysis tools".  These helpers write exactly that: whitespace-
separated ``.dat`` columns with a ``#`` header line, plus fixed-width tables
for the console and a small log-log ASCII chart so benchmark output is
readable without leaving the terminal.
"""

from __future__ import annotations

import math
import os
from typing import Iterable, Sequence

__all__ = ["write_dat", "format_table", "ascii_loglog_chart"]


def write_dat(
    path: str | os.PathLike[str],
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Write a gnuplot-friendly data file: ``# header`` then one row per line."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# " + "\t".join(str(column) for column in header) + "\n")
        for row in rows:
            handle.write("\t".join(_format_cell(cell) for cell in row) + "\n")


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.9g}"
    return str(cell)


def format_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width console table."""
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    all_rows = [list(header)] + text_rows
    widths = [max(len(row[col]) for row in all_rows) for col in range(len(header))]
    lines = ["  ".join(cell.rjust(width) for cell, width in zip(row, widths)) for row in all_rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def ascii_loglog_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "size (bytes)",
    y_label: str = "latency (ms)",
) -> str:
    """Tiny log-log scatter chart (the paper's plots are log-log).

    :param series: name -> list of (x, y) points; each series gets one
        marker character.
    """
    points = [
        (x, y) for pts in series.values() for x, y in pts if x > 0 and y > 0
    ]
    if not points:
        return "(no data)"
    log_x = [math.log10(x) for x, _ in points]
    log_y = [math.log10(y) for _, y in points]
    x_min, x_max = min(log_x), max(log_x)
    y_min, y_max = min(log_y), max(log_y)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    legend: list[str] = []
    for index, (name, pts) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"  {marker} {name}")
        for x, y in pts:
            if x <= 0 or y <= 0:
                continue
            col = round((math.log10(x) - x_min) / x_span * (width - 1))
            row = round((math.log10(y) - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    top = f"{10 ** y_max:.3g} {y_label}"
    bottom = f"{10 ** y_min:.3g}"
    x_left = f"{10 ** x_min:.3g}"
    x_right = f"{10 ** x_max:.3g} {x_label}"
    body = "\n".join("|" + "".join(row) for row in grid)
    footer = "+" + "-" * width
    x_axis = x_left + " " * max(1, width - len(x_left) - len(x_right) + 1) + x_right
    return "\n".join([top, body, footer, x_axis, bottom, *legend])
