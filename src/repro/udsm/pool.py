"""Fixed-size thread pool feeding ListenableFutures.

The paper: "Since creating a new thread is expensive, the UDSM uses thread
pools in which a given number of threads are started up when the UDSM is
initiated and maintained throughout the lifetime of the UDSM. ... Users can
specify the thread pool size via a configuration parameter."

This is that pool, built from scratch on a queue of work items.  Workers
are daemon threads; :meth:`ThreadPool.shutdown` drains or discards the queue
and joins them.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, TypeVar

from ..errors import AsyncOperationError, ConfigurationError
from .futures import ListenableFuture

__all__ = ["ThreadPool"]

T = TypeVar("T")


class ThreadPool:
    """Bounded pool of long-lived worker threads."""

    def __init__(self, size: int = 8, *, name: str = "udsm-pool") -> None:
        """Start *size* workers immediately (they live until shutdown)."""
        if size < 1:
            raise ConfigurationError("thread pool size must be at least 1")
        self.size = size
        self._queue: "queue.SimpleQueue[tuple[ListenableFuture[Any], Callable[[], Any]] | None]" = (
            queue.SimpleQueue()
        )
        self._shutdown = False
        self._lock = threading.Lock()
        self._workers = [
            threading.Thread(target=self._worker, name=f"{name}-{i}", daemon=True)
            for i in range(size)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return  # poison pill
            future, thunk = item
            if not future._try_start():
                continue  # cancelled while queued
            try:
                future.set_result(thunk())
            except BaseException as exc:  # noqa: BLE001 - must not kill worker
                future.set_exception(exc)

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., T], *args: Any, **kwargs: Any) -> ListenableFuture[T]:
        """Queue ``fn(*args, **kwargs)``; returns its future immediately."""
        with self._lock:
            if self._shutdown:
                raise AsyncOperationError("thread pool has been shut down")
            future: ListenableFuture[T] = ListenableFuture()
            self._queue.put((future, lambda: fn(*args, **kwargs)))
            return future

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop accepting work; optionally join the workers.

        Queued work that has not started is still executed before workers
        exit (each worker drains until it meets its poison pill).
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            for _ in self._workers:
                self._queue.put(None)
        if wait:
            for worker in self._workers:
                worker.join()

    @property
    def active(self) -> bool:
        with self._lock:
            return not self._shutdown

    def __enter__(self) -> "ThreadPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"<ThreadPool size={self.size} active={self.active}>"
