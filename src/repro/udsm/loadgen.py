"""Open-loop load generation: traffic modeled as a population of users.

The workload generator in :mod:`repro.udsm.workload` is **closed-loop**:
one driver issues an operation, waits for it to finish, then issues the
next.  Closed loops measure per-operation cost well, but they cannot say
how a *server* behaves under load, because the moment the server slows
down the driver slows down with it -- offered load collapses exactly when
it should be stressing the system (the "coordinated omission" trap).

This module models traffic the way capacity planners do (after AsyncFlow's
workload API -- see SNIPPETS.md snippet 3): a population of **active
users**, re-sampled every *sampling window* from a Poisson or normal
distribution, each issuing requests at a per-user rate; arrivals within a
window form a Poisson process at the aggregate rate; keys follow a
**Zipf** popularity distribution.  The resulting schedule is **open-loop**:
arrival times are fixed up front and do not depend on how fast the target
answers.  Latency is measured from the *scheduled arrival* to completion,
so queueing delay under overload is part of the number -- exactly what a
throughput-vs-latency curve needs.

Two layers, split so tests never sleep:

* :meth:`OpenLoopLoadGenerator.schedule` is **pure**: seeded RNG in,
  deterministic list of timestamped requests out.  No clock, no I/O.
* :meth:`OpenLoopLoadGenerator.run` replays a schedule against anything
  with ``get(key)`` / ``put(key, value)`` using injectable ``clock`` and
  ``sleep`` (virtual time in tests, wall time in benchmarks), on the
  caller's thread (``workers=0``) or a small dispatch pool.

Used by ``benchmarks/bench_serving_async.py`` to draw
throughput-vs-latency curves for the threaded vs async serving engines,
and by ``scripts/check_serving.py`` as the smoke-gate load source.
"""

from __future__ import annotations

import math
import random
import statistics
import threading
import time
from dataclasses import dataclass, field
from queue import SimpleQueue
from typing import Any, Callable, Sequence

from ..errors import WorkloadError
from .workload import random_payload

__all__ = [
    "RVConfig",
    "Request",
    "OpenLoopSpec",
    "OpenLoopLoadGenerator",
    "LoadResult",
]


@dataclass(frozen=True)
class RVConfig:
    """A random variable: ``mean`` plus a named distribution.

    Distributions: ``"poisson"`` (the default; Knuth sampling below mean
    30, normal approximation above), ``"normal"`` (``stdev`` defaults to
    ``mean / 10``), and ``"constant"``.  Samples are clamped to >= 0 --
    a negative user count or rate is meaningless.
    """

    mean: float
    distribution: str = "poisson"
    stdev: float | None = None

    def __post_init__(self) -> None:
        if self.mean < 0:
            raise WorkloadError("RVConfig mean must be non-negative")
        if self.distribution not in ("poisson", "normal", "constant"):
            raise WorkloadError(
                f"unknown distribution {self.distribution!r} "
                "(expected poisson, normal, or constant)"
            )
        if self.stdev is not None and self.stdev < 0:
            raise WorkloadError("RVConfig stdev must be non-negative")

    def sample(self, rng: random.Random) -> float:
        if self.distribution == "constant":
            return self.mean
        if self.distribution == "normal":
            stdev = self.stdev if self.stdev is not None else self.mean / 10.0
            return max(0.0, rng.gauss(self.mean, stdev))
        return float(_poisson(rng, self.mean))


def _poisson(rng: random.Random, mean: float) -> int:
    """Poisson sample: exact (Knuth) for small means, normal approximation
    (mean + sqrt(mean) * N(0,1), rounded) for large ones -- an active-user
    population of a million must not loop a million times per sample."""
    if mean <= 0:
        return 0
    if mean > 30.0:
        return max(0, round(rng.gauss(mean, math.sqrt(mean))))
    threshold = math.exp(-mean)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


@dataclass(frozen=True)
class Request:
    """One scheduled arrival: when, which key, which operation."""

    at: float  # seconds from schedule start (virtual time)
    key: str
    op: str  # "get" or "put"
    size: int  # payload bytes (writes)


@dataclass(frozen=True)
class OpenLoopSpec:
    """Shape of the simulated traffic (the AsyncFlow workload fields).

    ``active_users`` is re-sampled every ``user_sampling_window`` seconds;
    within a window, arrivals form a Poisson process at
    ``users * requests_per_user_per_s``.  Keys are drawn from a
    Zipf(``zipf_s``) popularity ranking over ``key_space`` keys (rank 0
    hottest); each request is a read with probability ``read_fraction``.
    """

    active_users: RVConfig = field(default_factory=lambda: RVConfig(mean=100))
    requests_per_user_per_s: RVConfig = field(
        default_factory=lambda: RVConfig(mean=1.0, distribution="constant")
    )
    user_sampling_window: float = 1.0
    key_space: int = 1_000
    zipf_s: float = 1.1
    read_fraction: float = 0.9
    value_size: int = 256
    key_prefix: str = "load"

    def __post_init__(self) -> None:
        if self.user_sampling_window <= 0:
            raise WorkloadError("user_sampling_window must be positive")
        if self.key_space < 1:
            raise WorkloadError("key_space must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise WorkloadError("read_fraction must be within [0, 1]")
        if self.value_size < 0:
            raise WorkloadError("value_size must be non-negative")
        if self.zipf_s < 0:
            raise WorkloadError("zipf_s must be non-negative")


@dataclass
class LoadResult:
    """Outcome of one open-loop run."""

    duration: float
    offered: int  # requests in the schedule
    completed: int
    errors: int
    latencies: list[float]  # seconds, scheduled arrival -> completion
    reads: int
    writes: int

    @property
    def offered_rate(self) -> float:
        """Scheduled arrivals per second (what the generator demanded)."""
        return self.offered / self.duration if self.duration else 0.0

    @property
    def throughput(self) -> float:
        """Completed requests per second (what the target delivered)."""
        return self.completed / self.duration if self.duration else 0.0

    @property
    def mean_latency(self) -> float:
        return statistics.fmean(self.latencies) if self.latencies else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the latency samples (seconds)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(1, math.ceil(fraction * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)


class OpenLoopLoadGenerator:
    """Turns an :class:`OpenLoopSpec` into schedules and measured runs."""

    def __init__(self, spec: OpenLoopSpec | None = None, *, seed: int = 0) -> None:
        self.spec = spec if spec is not None else OpenLoopSpec()
        self._seed = seed
        # Zipf popularity: weight 1/rank^s over the key space, as one
        # cumulative table so each draw is a binary search, not an O(k) scan.
        weights = [
            1.0 / ((rank + 1) ** self.spec.zipf_s) for rank in range(self.spec.key_space)
        ]
        total = 0.0
        self._cum_weights: list[float] = []
        for weight in weights:
            total += weight
            self._cum_weights.append(total)
        self._keys = [
            f"{self.spec.key_prefix}:{rank:06d}" for rank in range(self.spec.key_space)
        ]

    # ------------------------------------------------------------------
    # Pure schedule generation (virtual time; deterministic per seed)
    # ------------------------------------------------------------------
    def schedule(self, duration: float) -> list[Request]:
        """The arrival schedule for *duration* seconds of traffic.

        Pure and deterministic for a given (spec, seed): windows re-sample
        the active-user count and per-user rate, arrivals within a window
        are exponential gaps at the aggregate rate, each arrival draws a
        Zipf key and a read/write coin.  An empty schedule (rates sampled
        to zero throughout) is legal.
        """
        if duration <= 0:
            raise WorkloadError("duration must be positive")
        spec = self.spec
        rng = random.Random(f"{self._seed}/openloop")
        requests: list[Request] = []
        window_start = 0.0
        while window_start < duration:
            window_end = min(duration, window_start + spec.user_sampling_window)
            users = spec.active_users.sample(rng)
            per_user = spec.requests_per_user_per_s.sample(rng)
            rate = users * per_user  # aggregate arrivals / second
            if rate > 0:
                at = window_start + rng.expovariate(rate)
                while at < window_end:
                    pick = rng.random() * self._cum_weights[-1]
                    index = _bisect(self._cum_weights, pick)
                    op = "get" if rng.random() < spec.read_fraction else "put"
                    requests.append(
                        Request(at=at, key=self._keys[index], op=op, size=spec.value_size)
                    )
                    at += rng.expovariate(rate)
            window_start = window_end
        return requests

    def offered_rate(self, duration: float) -> float:
        """Mean scheduled arrivals/second over *duration* (for reporting)."""
        return len(self.schedule(duration)) / duration

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def run(
        self,
        target: Any = None,
        *,
        duration: float,
        workers: int = 0,
        targets: Sequence[Any] | None = None,
        clock: Callable[[], float] = time.perf_counter,
        sleep: Callable[[float], None] = time.sleep,
        payload: Callable[[int, int], bytes] | None = None,
        prepopulate: bool = True,
        schedule: Sequence[Request] | None = None,
    ) -> LoadResult:
        """Replay a schedule against *target* and measure open-loop latency.

        *target* is anything with ``get(key)`` / ``put(key, value)`` -- a
        store, a remote client adapter, an enhanced client.  Each request
        executes as close to its scheduled arrival as ``sleep`` allows;
        its latency runs from the **scheduled arrival** to completion, so
        time spent queueing behind a slow target is included rather than
        silently deferred (the open-loop property).

        :param workers: 0 executes on the calling thread (deterministic
            with a virtual ``clock``/``sleep``; a slow operation delays
            later dispatches, which the arrival-anchored latency then
            reports as queueing).  N > 0 dispatches to N worker threads so
            the offered schedule keeps its timing even when individual
            operations block.
        :param targets: per-worker targets (one each; implies
            ``workers=len(targets)``) -- e.g. one TCP client per worker so
            the run exercises many server connections instead of
            serializing on one socket.
        :param prepopulate: write every key once before the measured phase
            (reads against a cold keyspace would measure miss handling).
        :param schedule: replay this schedule instead of generating one
            (lets callers share one schedule across engines).
        """
        if (target is None) == (targets is None):
            raise WorkloadError("pass exactly one of target / targets")
        if targets is not None:
            if not targets:
                raise WorkloadError("targets must be non-empty")
            workers = len(targets)
        spec = self.spec
        source = payload if payload is not None else random_payload
        value = source(spec.value_size, 0)
        plan = list(schedule) if schedule is not None else self.schedule(duration)
        primary = target if target is not None else targets[0]
        if prepopulate:
            for key in self._keys:
                primary.put(key, value)

        reads = sum(1 for request in plan if request.op == "get")
        if workers < 0:
            raise WorkloadError("workers must be non-negative")
        if workers == 0:
            completed, errors, latencies = self._run_inline(
                primary, plan, value, clock, sleep
            )
        else:
            pool_targets = (
                list(targets) if targets is not None else [primary] * workers
            )
            completed, errors, latencies = self._run_pooled(
                pool_targets, plan, value, clock, sleep
            )
        return LoadResult(
            duration=duration,
            offered=len(plan),
            completed=completed,
            errors=errors,
            latencies=latencies,
            reads=reads,
            writes=len(plan) - reads,
        )

    def _run_inline(
        self,
        target: Any,
        plan: Sequence[Request],
        value: bytes,
        clock: Callable[[], float],
        sleep: Callable[[float], None],
    ) -> tuple[int, int, list[float]]:
        epoch = clock()
        completed, errors = 0, 0
        latencies: list[float] = []
        for request in plan:
            delay = epoch + request.at - clock()
            if delay > 0:
                sleep(delay)
            try:
                if request.op == "get":
                    target.get(request.key)
                else:
                    target.put(request.key, value)
            except Exception:  # noqa: BLE001 - overload errors are data
                errors += 1
            else:
                completed += 1
                latencies.append(clock() - (epoch + request.at))
        return completed, errors, latencies

    def _run_pooled(
        self,
        pool_targets: Sequence[Any],
        plan: Sequence[Request],
        value: bytes,
        clock: Callable[[], float],
        sleep: Callable[[float], None],
    ) -> tuple[int, int, list[float]]:
        queue: "SimpleQueue[Request | None]" = SimpleQueue()
        lock = threading.Lock()
        state = {"completed": 0, "errors": 0}
        latencies: list[float] = []
        epoch = clock()

        def work(target: Any) -> None:
            while True:
                request = queue.get()
                if request is None:
                    return
                try:
                    if request.op == "get":
                        target.get(request.key)
                    else:
                        target.put(request.key, value)
                except Exception:  # noqa: BLE001 - overload errors are data
                    with lock:
                        state["errors"] += 1
                else:
                    elapsed = clock() - (epoch + request.at)
                    with lock:
                        state["completed"] += 1
                        latencies.append(elapsed)

        pool = [
            threading.Thread(
                target=work, args=(target,), name=f"loadgen-{index}", daemon=True
            )
            for index, target in enumerate(pool_targets)
        ]
        for thread in pool:
            thread.start()
        for request in plan:
            delay = epoch + request.at - clock()
            if delay > 0:
                sleep(delay)
            queue.put(request)
        for _ in pool:
            queue.put(None)
        for thread in pool:
            thread.join()
        return state["completed"], state["errors"], latencies


def _bisect(cum_weights: list[float], pick: float) -> int:
    """Leftmost index whose cumulative weight covers *pick*."""
    low, high = 0, len(cum_weights) - 1
    while low < high:
        mid = (low + high) // 2
        if cum_weights[mid] < pick:
            low = mid + 1
        else:
            high = mid
    return low
