"""The Universal Data Store Manager (UDSM), paper Section II.A.

One registry of heterogeneous data stores, all behind the common key-value
interface, each automatically gaining:

* a **synchronous** interface (the store itself);
* an **asynchronous** interface -- every operation returns a
  :class:`~repro.udsm.futures.ListenableFuture` executed on a shared,
  configurable thread pool (the paper's ListenableFuture + thread-pool
  design), even for stores whose own clients are synchronous-only;
* **performance monitoring** -- per-store, per-operation latency summaries
  plus a bounded window of recent detailed measurements, persistable to any
  registered store;
* the **workload generator** -- size sweeps, hit-rate extrapolation, and
  codec overhead measurement for comparing stores (Section V's tooling);
* the **open-loop load generator** (:mod:`repro.udsm.loadgen`) -- traffic
  modeled as a Poisson/normal population of active users with Zipf key
  popularity, for throughput-vs-latency curves against the serving plane.
"""

from .futures import FutureState, ListenableFuture
from .pool import ThreadPool
from .async_api import AsyncKeyValue
from .monitoring import MonitoredStore, OperationStats, PerformanceMonitor, StoreHealth
from .manager import UniversalDataStoreManager
from .workload import (
    CachedReadSpec,
    CodecTiming,
    HitRateCurve,
    SweepPoint,
    SweepResult,
    WorkloadGenerator,
    compressible_payload,
    random_payload,
)
from .loadgen import (
    LoadResult,
    OpenLoopLoadGenerator,
    OpenLoopSpec,
    Request,
    RVConfig,
)

__all__ = [
    "RVConfig",
    "Request",
    "OpenLoopSpec",
    "OpenLoopLoadGenerator",
    "LoadResult",
    "ListenableFuture",
    "FutureState",
    "ThreadPool",
    "AsyncKeyValue",
    "PerformanceMonitor",
    "MonitoredStore",
    "OperationStats",
    "StoreHealth",
    "UniversalDataStoreManager",
    "WorkloadGenerator",
    "SweepPoint",
    "SweepResult",
    "HitRateCurve",
    "CachedReadSpec",
    "CodecTiming",
    "random_payload",
    "compressible_payload",
]
