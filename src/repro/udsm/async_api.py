"""Asynchronous (nonblocking) interface to any data store.

"A key advantage to our UDSM is that it provides an asynchronous interface
to all data stores it supports, even if a data store does not provide a
client with asynchronous operations on the data store."  The trick is the
common key-value interface: :class:`AsyncKeyValue` is written once against
:class:`~repro.kv.interface.KeyValueStore` and therefore asynchronises
*every* backend -- each method dispatches the corresponding synchronous call
onto the UDSM thread pool and returns a
:class:`~repro.udsm.futures.ListenableFuture` at once.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from ..kv.interface import KeyValueStore, NotModified
from .futures import ListenableFuture
from .pool import ThreadPool

__all__ = ["AsyncKeyValue"]


class AsyncKeyValue:
    """Nonblocking facade over a synchronous store."""

    def __init__(self, store: KeyValueStore, pool: ThreadPool) -> None:
        """Wrap *store*; operations run on *pool* (shared, not owned)."""
        self._store = store
        self._pool = pool
        self.name = f"async({store.name})"

    @property
    def store(self) -> KeyValueStore:
        """The underlying synchronous store."""
        return self._store

    # ------------------------------------------------------------------
    # Core operations, asynchronised
    # ------------------------------------------------------------------
    def get(self, key: str) -> ListenableFuture[Any]:
        """Future of the value (fails with ``KeyNotFoundError`` if absent)."""
        return self._pool.submit(self._store.get, key)

    def get_or_default(self, key: str, default: Any = None) -> ListenableFuture[Any]:
        return self._pool.submit(self._store.get_or_default, key, default)

    def put(self, key: str, value: Any) -> ListenableFuture[None]:
        """Future completing when the write is durable at the store."""
        return self._pool.submit(self._store.put, key, value)

    def delete(self, key: str) -> ListenableFuture[bool]:
        return self._pool.submit(self._store.delete, key)

    def contains(self, key: str) -> ListenableFuture[bool]:
        return self._pool.submit(self._store.contains, key)

    def size(self) -> ListenableFuture[int]:
        return self._pool.submit(self._store.size)

    def clear(self) -> ListenableFuture[int]:
        return self._pool.submit(self._store.clear)

    def get_many(self, keys: Iterable[str]) -> ListenableFuture[dict[str, Any]]:
        return self._pool.submit(self._store.get_many, list(keys))

    def put_many(self, items: Mapping[str, Any]) -> ListenableFuture[None]:
        return self._pool.submit(self._store.put_many, dict(items))

    def get_with_version(self, key: str) -> ListenableFuture[tuple[Any, str]]:
        return self._pool.submit(self._store.get_with_version, key)

    def get_if_modified(
        self, key: str, version: str
    ) -> "ListenableFuture[tuple[Any, str] | NotModified]":
        return self._pool.submit(self._store.get_if_modified, key, version)

    # ------------------------------------------------------------------
    # Bulk helper
    # ------------------------------------------------------------------
    def put_all(self, items: Mapping[str, Any]) -> list[ListenableFuture[None]]:
        """One independent future per write -- maximum overlap.

        Unlike :meth:`put_many` (one future for one batched call), each
        write is its own pool task, so they proceed in parallel up to the
        pool size.  This is the pattern behind the async-vs-sync ablation.
        """
        return [self.put(key, value) for key, value in items.items()]

    def __repr__(self) -> str:
        return f"<AsyncKeyValue store={self._store.name!r}>"
