"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

The paper's UDSM monitor (:mod:`repro.udsm.monitoring`) sees whole
operations at the store boundary.  The metrics registry is the substrate
*underneath* it: one thread-safe, zero-dependency home for every number the
stack produces -- cache hit/miss counters, per-stage pipeline latencies,
network round trips, retry counts -- named by one scheme
(``layer.component.op``, see ``docs/observability.md``) so that the cache
layer, the value pipeline, and the UDSM report one consistent set of
figures instead of three private ones.

Design notes:

* **Counters are objects, not registry methods.**  Hot paths capture the
  :class:`Counter` once and call ``inc()`` on it; the name -> metric lookup
  is paid at setup time, not per operation.  This also lets
  :class:`repro.caching.stats.CacheStats` use registry counters as its
  *backing storage* (``bind``), so the same event is never counted in two
  uncoordinated places.
* **Histograms use fixed buckets** (Prometheus-style cumulative ``le``
  bounds).  Recording is O(log buckets) with no allocation; percentiles are
  bucket-resolution estimates, which is the right trade for an always-on
  registry.  The UDSM monitor keeps its exact recent-window percentiles on
  top of this.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Any, Iterable

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "snapshot_delta",
    "bucket_percentile",
]

#: Default histogram bucket upper bounds, in seconds: 1 microsecond to 10
#: seconds, roughly logarithmic.  Chosen to resolve both an in-process dict
#: probe (~1 us) and a WAN store round trip (~100 ms) on one scale.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonic counter.  Thread-safe; usable standalone or via a registry."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be non-negative; counters never go down)."""
        if amount < 0:
            raise ConfigurationError("counters cannot be decremented")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        """Zero the counter (for test isolation and explicit stat resets)."""
        with self._lock:
            self._value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (pool occupancy, cache bytes...)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max.

    Bucket semantics are cumulative upper bounds: an observation lands in
    the first bucket whose bound is >= the value (``le`` inclusive, like
    Prometheus); values above the last bound go to the overflow bucket.
    """

    __slots__ = ("name", "_lock", "_bounds", "_buckets", "_count", "_sum", "_min", "_max")

    def __init__(
        self,
        name: str = "",
        *,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ConfigurationError("a histogram needs at least one bucket bound")
        self.name = name
        self._lock = threading.Lock()
        self._bounds = bounds
        self._buckets = [0] * (len(bounds) + 1)  # +1: overflow (> last bound)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._buckets[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # ------------------------------------------------------------------
    @property
    def bounds(self) -> tuple[float, ...]:
        return self._bounds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        with self._lock:
            return self._max if self._count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs; the final bound is
        ``inf`` (the overflow bucket)."""
        with self._lock:
            counts = list(self._buckets)
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip((*self._bounds, math.inf), counts):
            running += count
            pairs.append((bound, running))
        return pairs

    def percentile(self, fraction: float) -> float:
        """Bucket-resolution percentile estimate (the bucket's upper bound,
        clamped to the observed maximum)."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("percentile fraction must be within [0, 1]")
        with self._lock:
            if not self._count:
                return 0.0
            rank = max(1, math.ceil(fraction * self._count))
            running = 0
            for bound, count in zip((*self._bounds, math.inf), self._buckets):
                running += count
                if running >= rank:
                    return min(bound, self._max)
            return self._max  # pragma: no cover - unreachable

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-data copy (for JSON export and assertions)."""
        with self._lock:
            count, total = self._count, self._sum
            minimum = self._min if count else 0.0
            maximum = self._max if count else 0.0
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": minimum,
            "max": maximum,
            "buckets": self.bucket_counts(),
        }

    def reset(self) -> None:
        with self._lock:
            self._buckets = [0] * (len(self._bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.6g})"


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    One registry is meant to serve a whole process (the UDSM shares its
    registry with every cache and pipeline it wires up); ``counter`` /
    ``gauge`` / ``histogram`` are cheap enough to call at setup time and
    return live objects for the hot path.  A name identifies exactly one
    metric of exactly one kind; re-requesting it returns the same object,
    and requesting it as a different kind raises
    :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def _check_name(self, name: str, want: dict[str, Any]) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not want and name in table:
                raise ConfigurationError(f"metric {name!r} already registered as a {kind}")

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_name(name, self._counters)
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_name(name, self._gauges)
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, *, buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_name(name, self._histograms)
                metric = self._histograms[name] = Histogram(name, buckets=buckets)
            return metric

    def names(self) -> list[str]:
        with self._lock:
            return sorted([*self._counters, *self._gauges, *self._histograms])

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """All metrics as plain data: ``{"counters": {...}, "gauges": {...},
        "histograms": {name: {count, sum, mean, min, max, buckets}}}``."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {name: h.snapshot() for name, h in sorted(histograms.items())},
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """JSON export of :meth:`snapshot` (bucket bounds as finite floats;
        the overflow bucket is labelled ``"+inf"``)."""
        snap = self.snapshot()
        for data in snap["histograms"].values():
            data["buckets"] = [
                ["+inf" if math.isinf(bound) else bound, count]
                for bound, count in data["buckets"]
            ]
        return json.dumps(snap, indent=indent)

    def render_text(self) -> str:
        """Human-readable dump: counters and gauges as ``name = value``
        lines, histograms as a latency-style table (milliseconds)."""
        snap = self.snapshot()
        lines: list[str] = []
        if snap["counters"]:
            lines.append("counters:")
            width = max(len(name) for name in snap["counters"])
            for name, value in snap["counters"].items():
                lines.append(f"  {name.ljust(width)}  {value}")
        if snap["gauges"]:
            lines.append("gauges:")
            width = max(len(name) for name in snap["gauges"])
            for name, value in snap["gauges"].items():
                lines.append(f"  {name.ljust(width)}  {value:g}")
        if snap["histograms"]:
            lines.append("histograms (ms):")
            with self._lock:
                histograms = dict(self._histograms)
            rows = [("", "count", "mean", "p50", "p95", "p99", "max")]
            for name in sorted(histograms):
                hist = histograms[name]
                rows.append(
                    (
                        name,
                        str(hist.count),
                        f"{hist.mean * 1e3:.3f}",
                        f"{hist.percentile(0.50) * 1e3:.3f}",
                        f"{hist.percentile(0.95) * 1e3:.3f}",
                        f"{hist.percentile(0.99) * 1e3:.3f}",
                        f"{hist.maximum * 1e3:.3f}",
                    )
                )
            widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
            for row in rows:
                lines.append(
                    "  " + "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        """Zero every metric (objects stay live; hot-path handles survive)."""
        with self._lock:
            metrics = [*self._counters.values(), *self._histograms.values()]
            gauges = list(self._gauges.values())
        for metric in metrics:
            metric.reset()
        for gauge in gauges:
            gauge.set(0.0)

    def __repr__(self) -> str:
        return f"<MetricsRegistry metrics={len(self.names())}>"

    def delta(self, previous: dict[str, Any] | None, *, current: dict[str, Any] | None = None) -> dict[str, Any]:
        """Per-series increments since *previous* (a prior :meth:`snapshot`).

        Convenience wrapper over :func:`snapshot_delta`.  When *current* is
        omitted a fresh snapshot is taken internally; callers that need the
        current snapshot for the *next* round (rate dashboards, the anomaly
        engine) should snapshot once themselves and pass it in, so the
        delta and the retained snapshot agree exactly::

            current = registry.snapshot()
            delta = registry.delta(previous, current=current)
            previous = current
        """
        if current is None:
            current = self.snapshot()
        return snapshot_delta(previous, current)


# ----------------------------------------------------------------------
# Snapshot arithmetic (plain data -- works on live snapshots and on
# ``/metrics.json`` scrapes alike, where the overflow bound is "+inf").
# ----------------------------------------------------------------------

def _bound_key(bound: Any) -> float:
    """Normalize a bucket bound: floats pass through, the JSON overflow
    label ``"+inf"`` (and friends) becomes ``math.inf``."""
    if isinstance(bound, str):
        text = bound.lstrip("+")
        return math.inf if text.lower() == "inf" else float(text)
    return float(bound)


def snapshot_delta(previous: dict[str, Any] | None, current: dict[str, Any]) -> dict[str, Any]:
    """Per-series increments between two registry snapshots.

    Returns the same ``{"counters", "gauges", "histograms"}`` shape as
    :meth:`MetricsRegistry.snapshot`, but with interval semantics:

    * **counters** -- increment since *previous*.  A series absent from
      *previous* contributes its full value; a negative difference (the
      counter was reset in between) clamps to the current value, so a
      restart never yields negative rates.
    * **gauges** -- change in level (``current - previous``; new series
      contribute their level).  The absolute level lives in *current*,
      which the caller already holds.
    * **histograms** -- interval ``count``/``sum``/``mean`` plus
      ``buckets`` as cumulative ``(bound, interval_count)`` pairs (the
      same cumulative-``le`` convention as :meth:`Histogram.bucket_counts`,
      restricted to the interval).  A count that went backwards is treated
      as a reset: the whole current histogram is the interval.

    *previous* may be ``None`` (first poll): everything is new.  Buckets
    are matched by bound value, so snapshots from a live registry and from
    a ``/metrics.json`` scrape (string ``"+inf"`` bound) mix freely.
    """
    previous = previous or {}
    prev_counters = previous.get("counters", {})
    counters = {}
    for name, value in current.get("counters", {}).items():
        diff = value - prev_counters.get(name, 0)
        counters[name] = value if diff < 0 else diff
    prev_gauges = previous.get("gauges", {})
    gauges = {
        name: value - prev_gauges.get(name, 0.0)
        for name, value in current.get("gauges", {}).items()
    }
    prev_hists = previous.get("histograms", {})
    histograms = {}
    for name, cur in current.get("histograms", {}).items():
        prev = prev_hists.get(name)
        count = cur.get("count", 0) - (prev.get("count", 0) if prev else 0)
        total = cur.get("sum", 0.0) - (prev.get("sum", 0.0) if prev else 0.0)
        if count < 0:  # reset between snapshots
            prev = None
            count = cur.get("count", 0)
            total = cur.get("sum", 0.0)
        prev_buckets: dict[float, int] = {}
        if prev:
            for bound, cumulative in prev.get("buckets", []):
                prev_buckets[_bound_key(bound)] = cumulative
        buckets = [
            (bound, cumulative - prev_buckets.get(_bound_key(bound), 0))
            for bound, cumulative in cur.get("buckets", [])
        ]
        histograms[name] = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "buckets": buckets,
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def bucket_percentile(buckets: Iterable[tuple[Any, int]], fraction: float) -> float:
    """Nearest-rank percentile from cumulative ``(bound, count)`` pairs.

    The plain-data sibling of :meth:`Histogram.percentile`, usable on
    snapshot/delta bucket lists (including scraped ones with a ``"+inf"``
    overflow label).  Returns the upper bound of the bucket holding the
    rank; when the rank lands in the overflow bucket, returns the last
    finite bound (the histogram cannot resolve beyond it).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("percentile fraction must be within [0, 1]")
    pairs = [(_bound_key(bound), count) for bound, count in buckets]
    if not pairs or pairs[-1][1] <= 0:
        return 0.0
    total = pairs[-1][1]
    rank = max(1, math.ceil(fraction * total))
    last_finite = 0.0
    for bound, cumulative in pairs:
        if math.isfinite(bound):
            last_finite = bound
        if cumulative >= rank:
            return bound if math.isfinite(bound) else last_finite
    return last_finite  # pragma: no cover - cumulative covers total
