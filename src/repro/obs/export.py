"""Telemetry export plane: Prometheus text rendering and an HTTP exporter.

PR 1 gave the stack an in-process :class:`~repro.obs.metrics.MetricsRegistry`
and :class:`~repro.obs.tracing.TraceCollector`; this module makes them
*externally* observable, following the pull-based exposition model
(a scraper GETs ``/metrics`` whenever it wants a sample):

* :func:`render_prometheus` -- the registry in the Prometheus text
  exposition format (version 0.0.4): counters, gauges, and cumulative
  ``le``-bucket histograms.
* :func:`parse_prometheus` -- the inverse, used by tests to prove the
  scrape round-trips and by ``repro top`` when pointed at a foreign
  endpoint.
* :func:`start_http_exporter` -- a zero-dependency stdlib
  :mod:`http.server` thread serving ``/metrics`` (Prometheus text),
  ``/metrics.json`` (exact snapshot, dotted names preserved), ``/traces``
  (recent span trees), ``/events.json`` (the structured event log,
  including slow-op records; filter with ``?kind=`` -- trailing ``*`` for
  a prefix -- and ``?limit=N``), and ``/anomalies.json`` (the attached
  :class:`~repro.obs.anomaly.AnomalyEngine`'s status, when one is wired).

Everything is read-only and safe to leave running: handlers only take
snapshots, and the server thread is a daemon.
"""

from __future__ import annotations

import json
import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs, urlsplit

from ..errors import ConfigurationError
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import Observability
    from .events import EventLog
    from .tracing import TraceCollector

__all__ = [
    "sanitize_metric_name",
    "render_prometheus",
    "parse_prometheus",
    "ExporterHandle",
    "start_http_exporter",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Registry name -> legal Prometheus metric name.

    Dots (the registry's separator) become underscores; any other illegal
    character does too, and a leading digit gains an underscore prefix.
    ``client.cache_hits`` -> ``client_cache_hits``.
    """
    sanitized = _NAME_BAD_CHARS.sub("_", name)
    if not sanitized or not _NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format (version 0.0.4).

    Counters are suffixed ``_total`` (the exposition convention), gauges
    keep their name, histograms expand to cumulative ``_bucket{le=...}``
    series plus ``_sum`` and ``_count``.  Series are sorted by name so the
    output is diff-stable.
    """
    snapshot = registry.snapshot()
    lines: list[str] = []
    for name, value in snapshot["counters"].items():
        metric = sanitize_metric_name(name) + "_total"
        lines.append(f"# HELP {metric} Counter {name!r} from the repro metrics registry.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot["gauges"].items():
        metric = sanitize_metric_name(name)
        lines.append(f"# HELP {metric} Gauge {name!r} from the repro metrics registry.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, data in snapshot["histograms"].items():
        metric = sanitize_metric_name(name)
        lines.append(f"# HELP {metric} Histogram {name!r} from the repro metrics registry.")
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in data["buckets"]:
            le = "+Inf" if math.isinf(bound) else _format_value(bound)
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(data['sum'])}")
        lines.append(f"{metric}_count {data['count']}")
    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text: str) -> dict[str, dict[str, Any]]:
    """Parse Prometheus text format back into plain data.

    Returns ``{"counters": {name: value}, "gauges": {name: value},
    "histograms": {name: {"count": int, "sum": float,
    "buckets": [(le, cumulative), ...]}}}`` keyed by the *sanitized*
    (exposition) family name -- counter names have their ``_total`` suffix
    stripped.  Only the subset of the format :func:`render_prometheus`
    emits is understood, which is exactly what the round-trip tests need.
    """
    types: dict[str, str] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, Any]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ConfigurationError(f"unparseable metrics line: {raw!r}")
        name = match.group("name")
        value = _parse_number(match.group("value"))
        labels: dict[str, str] = {}
        if match.group("labels"):
            for item in match.group("labels").split(","):
                key, _sep, val = item.partition("=")
                labels[key.strip()] = val.strip().strip('"')
        if types.get(name) == "counter":
            counters[name.removesuffix("_total")] = value
            continue
        if types.get(name) == "gauge":
            gauges[name] = value
            continue
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and types.get(name.removesuffix(suffix)) == "histogram":
                family = histograms.setdefault(
                    name.removesuffix(suffix), {"count": 0, "sum": 0.0, "buckets": []}
                )
                if suffix == "_bucket":
                    family["buckets"].append((_parse_number(labels.get("le", "+Inf")), int(value)))
                elif suffix == "_sum":
                    family["sum"] = value
                else:
                    family["count"] = int(value)
                break
        else:
            raise ConfigurationError(f"sample {name!r} has no TYPE declaration")
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


# ----------------------------------------------------------------------
# HTTP exporter
# ----------------------------------------------------------------------
class _ExporterServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the telemetry sources for its handler."""

    daemon_threads = True
    allow_reuse_address = True

    registry: MetricsRegistry
    collector: "TraceCollector | None"
    events: "EventLog | None"
    anomaly: Any  # AnomalyEngine | None (duck-typed: .status())


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-exporter/1.0"

    # The exporter must never spam stdout/stderr of the host process.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        return None

    def _send(self, body: str, *, content_type: str, status: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, data: Any, *, status: int = 200) -> None:
        self._send(
            json.dumps(data, indent=2, default=repr),
            content_type="application/json; charset=utf-8",
            status=status,
        )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        server: _ExporterServer = self.server  # type: ignore[assignment]
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        try:
            if path == "/metrics":
                self._send(
                    render_prometheus(server.registry),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/metrics.json":
                self._send(
                    server.registry.to_json(indent=2),
                    content_type="application/json; charset=utf-8",
                )
            elif path in ("/traces", "/traces.json"):
                if server.collector is None:
                    self._send("no trace collector attached\n",
                               content_type="text/plain; charset=utf-8", status=404)
                elif path == "/traces":
                    self._send(server.collector.render() + "\n",
                               content_type="text/plain; charset=utf-8")
                else:
                    self._send_json(
                        {
                            "dropped": server.collector.dropped,
                            "traces": [root.to_dict() for root in server.collector.roots()],
                        }
                    )
            elif path in ("/events", "/events.json"):
                if server.events is None:
                    self._send("no event log attached\n",
                               content_type="text/plain; charset=utf-8", status=404)
                else:
                    kind = query.get("kind", [None])[0]
                    # ?limit=N is the documented spelling; ?count=N stays
                    # accepted for PR-2 compatibility.
                    count_raw = query.get("limit", query.get("count", [None]))[0]
                    count = int(count_raw) if count_raw else None
                    self._send_json(server.events.tail(count, kind=kind))
            elif path in ("/anomalies", "/anomalies.json"):
                if getattr(server, "anomaly", None) is None:
                    self._send("no anomaly engine attached\n",
                               content_type="text/plain; charset=utf-8", status=404)
                else:
                    self._send_json(server.anomaly.status())
            elif path == "/healthz":
                self._send("ok\n", content_type="text/plain; charset=utf-8")
            elif path == "/":
                self._send(
                    "repro telemetry exporter\n"
                    "  /metrics       Prometheus text format\n"
                    "  /metrics.json  registry snapshot (dotted names)\n"
                    "  /traces        recent span trees (text)\n"
                    "  /traces.json   recent span trees (JSON)\n"
                    "  /events.json   structured event log (?kind=anomaly_*&limit=10)\n"
                    "  /anomalies.json  anomaly engine status (active, rules, actions)\n"
                    "  /healthz       liveness\n",
                    content_type="text/plain; charset=utf-8",
                )
            else:
                self._send("not found\n", content_type="text/plain; charset=utf-8", status=404)
        except BrokenPipeError:  # scraper went away mid-reply
            pass


class ExporterHandle:
    """A running HTTP exporter; stop it with :meth:`stop` or ``with``."""

    def __init__(self, server: _ExporterServer, thread: threading.Thread) -> None:
        self._server = server
        self._thread = thread
        self.host, self.port = server.server_address[0], server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the exporter down and release the port.  Idempotent."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None  # type: ignore[assignment]
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None  # type: ignore[assignment]

    def __enter__(self) -> "ExporterHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        return f"<ExporterHandle {self.url}>"


def start_http_exporter(
    source: "Observability | MetricsRegistry",
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    anomaly: Any = None,
) -> ExporterHandle:
    """Serve *source*'s telemetry over HTTP on a daemon thread.

    :param source: an enabled :class:`~repro.obs.Observability` bundle
        (metrics + traces + events all exposed) or a bare
        :class:`~repro.obs.metrics.MetricsRegistry` (metrics endpoints
        only).
    :param port: TCP port; 0 picks a free one (see the handle's ``port``).
    :param anomaly: an :class:`~repro.obs.anomaly.AnomalyEngine` (anything
        with a ``status()`` method) to serve at ``/anomalies.json``;
        omitted, that endpoint answers 404 like the other absent sources.
    :returns: an :class:`ExporterHandle`; the server runs until
        :meth:`ExporterHandle.stop`.
    """
    if isinstance(source, MetricsRegistry):
        registry, collector, events = source, None, None
    else:
        if not getattr(source, "enabled", False) or source.registry is None:
            raise ConfigurationError(
                "cannot export a disabled Observability bundle (NULL_OBS)"
            )
        registry, collector, events = source.registry, source.collector, source.events
    server = _ExporterServer((host, port), _Handler)
    server.registry = registry
    server.collector = collector
    server.events = events
    server.anomaly = anomaly
    thread = threading.Thread(
        target=server.serve_forever, name="repro-metrics-exporter", daemon=True
    )
    thread.start()
    return ExporterHandle(server, thread)
