"""Structured event log: bounded, rotating, thread-safe JSON lines.

Metrics aggregate and spans attribute, but neither answers "what *happened*
around 14:32?" -- a cache server reconnect, a retry storm, one request that
took 80x the median.  The event log is the third leg: a bounded in-memory
ring of structured records, optionally mirrored to a JSON-lines file with
size-based rotation, safe to write from any thread.

Two kinds of records matter enough to have conventions:

* **events** -- anything notable: ``retry_exhausted``, ``reconnect``,
  ``snapshot_saved``.  Flat records: ``{"ts": ..., "kind": ..., **fields}``.
* **slow operations** -- emitted automatically by
  :class:`~repro.obs.Observability` when a root span finishes over the
  configured ``slow_op_threshold``.  A slow-op record carries the finished
  span tree as its ``trace`` field (an *exemplar*, in Prometheus/OpenTelemetry
  terms): the one concrete request that landed in the histogram's tail,
  with its per-stage breakdown attached.

The file format is one JSON object per line, append-only.  When the file
would exceed ``max_bytes`` it is rotated to ``<path>.1`` (one generation is
kept) and a fresh file is started, so a long-lived process can log forever
in bounded disk.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError

__all__ = ["EventLog", "DEFAULT_MAX_EVENTS", "DEFAULT_MAX_BYTES"]

DEFAULT_MAX_EVENTS = 512

#: Rotate the JSON-lines file beyond this many bytes (1 MiB).
DEFAULT_MAX_BYTES = 1_048_576


def _jsonable(value: Any) -> Any:
    """Best-effort conversion for attribute values of arbitrary type."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class EventLog:
    """Bounded ring of structured events, optionally mirrored to a file.

    Thread-safe: :meth:`emit` may be called concurrently from request
    threads, the cache server's connection threads, and background pools.
    The in-memory ring keeps the newest ``max_events`` records for the
    ``/events`` endpoint and ``repro top``; the optional file keeps a
    rotating on-disk journal for post-mortems.
    """

    def __init__(
        self,
        *,
        max_events: int = DEFAULT_MAX_EVENTS,
        path: str | Path | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        clock=time.time,
    ) -> None:
        """Create a log.

        :param max_events: in-memory ring capacity (oldest fall off).
        :param path: when set, every record is also appended to this
            JSON-lines file.
        :param max_bytes: rotate the file to ``<path>.1`` when an append
            would push it past this size.
        :param clock: timestamp source (injectable for tests); records
            carry ``ts`` = ``clock()`` (wall-clock seconds by default).
        """
        if max_events < 1:
            raise ConfigurationError("max_events must be at least 1")
        if max_bytes < 1:
            raise ConfigurationError("max_bytes must be positive")
        self._lock = threading.Lock()
        self._ring: deque[dict[str, Any]] = deque(maxlen=max_events)
        self._path = Path(path) if path is not None else None
        self._max_bytes = max_bytes
        self._clock = clock
        self._handle = None
        self._written_bytes = 0
        self._emitted = 0
        self._rotations = 0
        if self._path is not None:
            self._open_file()

    # ------------------------------------------------------------------
    def _open_file(self) -> None:
        """(Re)open the journal for appending; caller holds no lock yet
        (constructor) or ``self._lock`` (rotation)."""
        assert self._path is not None
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self._path, "a", encoding="utf-8")
        self._written_bytes = self._handle.tell()

    def _rotate(self) -> None:
        """Move the full journal aside and start a fresh one (lock held)."""
        assert self._path is not None and self._handle is not None
        self._handle.close()
        self._path.replace(self._path.with_name(self._path.name + ".1"))
        self._handle = None
        self._open_file()
        self._rotations += 1

    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Record one event; returns the record that was stored."""
        record: dict[str, Any] = {"ts": self._clock(), "kind": kind}
        for key, value in fields.items():
            record[key] = _jsonable(value)
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._ring.append(record)
            self._emitted += 1
            if self._handle is not None:
                encoded = len(line) + 1
                if self._written_bytes and self._written_bytes + encoded > self._max_bytes:
                    self._rotate()
                self._handle.write(line + "\n")
                self._handle.flush()
                self._written_bytes += encoded
        return record

    # ------------------------------------------------------------------
    def tail(self, count: int | None = None, *, kind: str | None = None) -> list[dict[str, Any]]:
        """Newest-last copy of the retained records, optionally filtered by
        *kind* and truncated to the last *count*.

        *kind* matches exactly, unless it ends with ``*`` -- then it is a
        prefix filter: ``kind="anomaly_*"`` selects ``anomaly_detected``,
        ``anomaly_cleared``, and ``anomaly_action`` records together.
        """
        with self._lock:
            records = list(self._ring)
        if kind is not None:
            if kind.endswith("*"):
                prefix = kind[:-1]
                records = [
                    record
                    for record in records
                    if str(record.get("kind", "")).startswith(prefix)
                ]
            else:
                records = [record for record in records if record.get("kind") == kind]
        if count is not None:
            records = records[-count:]
        return records

    def slow_ops(self, count: int | None = None) -> list[dict[str, Any]]:
        """The retained slow-operation records (see module docstring)."""
        return self.tail(count, kind="slow_op")

    @property
    def emitted(self) -> int:
        """Total records emitted (including ones aged out of the ring)."""
        with self._lock:
            return self._emitted

    @property
    def rotations(self) -> int:
        """How many times the journal file has been rotated."""
        with self._lock:
            return self._rotations

    @property
    def path(self) -> Path | None:
        return self._path

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        """Drop the in-memory ring (the file journal is left alone)."""
        with self._lock:
            self._ring.clear()

    def close(self) -> None:
        """Close the journal file (the in-memory ring stays usable)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        where = f", path={str(self._path)!r}" if self._path else ""
        return f"<EventLog events={len(self)}{where}>"
