"""Cross-layer observability for the DSCL stack.

Two zero-dependency primitives and a bundle that carries them through the
stack:

* :class:`~repro.obs.metrics.MetricsRegistry` -- thread-safe counters,
  gauges, and fixed-bucket latency histograms with text/JSON export;
* :class:`~repro.obs.tracing.Tracer` / :class:`~repro.obs.tracing.Span` --
  nested per-request spans collected into an in-memory
  :class:`~repro.obs.tracing.TraceCollector`;
* :class:`Observability` -- one object holding a registry and a tracer,
  accepted by every instrumented constructor (DSCL, enhanced client,
  caches, retrying stores, the network client, the UDSM).

Instrumentation is **opt-in per object**: constructors take
``obs: Observability | None = None``, and ``None`` resolves to the shared
:data:`NULL_OBS` singleton whose every operation is a no-op -- no spans, no
metrics, near-zero overhead.  The instrumentation contract (metric and span
naming, how to instrument new components) is ``docs/observability.md``.

Quick use::

    from repro import InMemoryStore, EnhancedDataStoreClient
    from repro.obs import Observability

    obs = Observability()
    client = EnhancedDataStoreClient(InMemoryStore(), obs=obs)
    client.put("k", "v")
    client.get("k")
    print(obs.registry.render_text())     # counters + latency histograms
    print(obs.collector.last().render())  # the get's span tree
"""

from __future__ import annotations

import time
from typing import Any

from .events import DEFAULT_MAX_BYTES, DEFAULT_MAX_EVENTS, EventLog
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracing import DEFAULT_MAX_TRACES, Span, SpanEvent, TraceCollector, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_MAX_BYTES",
    "EventLog",
    "Span",
    "SpanEvent",
    "Tracer",
    "TraceCollector",
    "Observability",
    "NULL_OBS",
    "resolve_obs",
]


class _NullContext:
    """Reusable no-op context manager (the disabled-mode span/stage)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _StageContext:
    """A span whose duration is also observed into a latency histogram."""

    __slots__ = ("_span", "_histogram")

    def __init__(self, span: Span, histogram: Histogram) -> None:
        self._span = span
        self._histogram = histogram

    def __enter__(self) -> Span:
        return self._span.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        result = self._span.__exit__(exc_type, exc, tb)
        self._histogram.observe(self._span.duration)
        return result


class Observability:
    """A metrics registry plus a tracer, handed through constructors.

    One ``Observability`` is meant to serve a whole client stack (or a
    whole process): pass the same instance to the enhanced client, its
    cache, the network client, and the UDSM, and they all report into one
    registry and one trace collector.
    """

    #: False only on the :data:`NULL_OBS` singleton; instrumented hot paths
    #: may branch on it to skip attribute construction entirely.
    enabled: bool = True

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        collector: TraceCollector | None = None,
        max_traces: int = DEFAULT_MAX_TRACES,
        events: EventLog | None = None,
        slow_op_threshold: float | None = None,
    ) -> None:
        """Create an enabled observability bundle.

        :param registry: share an existing registry (default: a fresh one).
        :param collector: share an existing trace collector (default: a
            fresh one retaining the newest *max_traces* traces).
        :param events: a structured :class:`~repro.obs.events.EventLog` for
            notable happenings (reconnects, retry exhaustion, slow
            operations).  ``None`` disables event recording unless
            *slow_op_threshold* is set, in which case a default in-memory
            log is created.
        :param slow_op_threshold: when set (seconds), any root span whose
            duration reaches the threshold is journalled to the event log
            as a ``slow_op`` record carrying the full span tree as its
            exemplar, and counted in ``obs.slow_ops``.
        """
        self.registry = registry if registry is not None else MetricsRegistry()
        self.collector = collector if collector is not None else TraceCollector(max_traces)
        registry_ref = self.registry
        self.collector.bind_dropped_counter(
            lambda: registry_ref.counter("obs.traces.dropped")
        )
        self.tracer = Tracer(self.collector)
        if events is None and slow_op_threshold is not None:
            events = EventLog()
        self.events = events
        self.slow_op_threshold = slow_op_threshold
        if slow_op_threshold is not None:
            self._slow_counter = self.registry.counter("obs.slow_ops")
            self.collector.add_listener(self._on_root_span)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Any:
        """Open a span (context manager); nests under the current span."""
        return self.tracer.span(name, **attributes)

    def stage(self, name: str, *, metric: str | None = None, **attributes: Any) -> Any:
        """A span that also records its duration into the histogram
        ``<metric or name>.seconds`` -- the standard way to instrument one
        pipeline stage so traces and metrics always agree."""
        histogram = self.registry.histogram((metric if metric is not None else name) + ".seconds")
        return _StageContext(self.tracer.span(name, **attributes), histogram)

    def event(self, name: str, **attributes: Any) -> None:
        """Annotate the current span (no-op when no span is open)."""
        span = self.tracer.current()
        if span is not None:
            span.add_event(name, **attributes)

    # ------------------------------------------------------------------
    # Structured events / slow-operation log
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> None:
        """Journal a structured event (no-op when no event log is set)."""
        if self.events is not None:
            self.events.emit(kind, **fields)

    def _on_root_span(self, span: Span) -> None:
        """Collector listener: journal root spans over the slow threshold."""
        threshold = self.slow_op_threshold
        if threshold is None or span.duration < threshold:
            return
        self._slow_counter.inc()
        if self.events is not None:
            self.events.emit(
                "slow_op",
                op=span.name,
                seconds=round(span.duration, 6),
                threshold=threshold,
                trace=span.to_dict(),
            )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.registry.histogram(name)

    def inc(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    def time(self, name: str) -> Any:
        """Bare histogram timer (no span): ``with obs.time("x"):`` records
        the block's duration into ``x.seconds``."""
        return _Timer(self.registry.histogram(name + ".seconds"))

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<Observability registry={self.registry!r} collector={self.collector!r}>"


class _Timer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> None:
        self._start = time.perf_counter()
        return None

    def __exit__(self, *exc_info: object) -> bool:
        self._histogram.observe(time.perf_counter() - self._start)
        return False


class _NullObservability(Observability):
    """Disabled mode: every operation is a no-op.

    ``span``/``stage``/``time`` return one shared reusable context manager,
    so an instrumented call path costs a method call and a ``with`` block
    and nothing else -- no span objects, no metric lookups, no recording.
    """

    enabled = False

    def __init__(self) -> None:  # deliberately no super().__init__()
        self.registry = None  # type: ignore[assignment]
        self.collector = None  # type: ignore[assignment]
        self.tracer = None  # type: ignore[assignment]
        self.events = None
        self.slow_op_threshold = None

    def span(self, name: str, **attributes: Any) -> Any:
        return _NULL_CONTEXT

    def stage(self, name: str, *, metric: str | None = None, **attributes: Any) -> Any:
        return _NULL_CONTEXT

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def emit(self, kind: str, **fields: Any) -> None:
        return None

    def inc(self, name: str, amount: int = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def time(self, name: str) -> Any:
        return _NULL_CONTEXT

    def counter(self, name: str) -> Counter:
        raise TypeError("observability is disabled; no registry to create metrics in")

    def gauge(self, name: str) -> Gauge:
        raise TypeError("observability is disabled; no registry to create metrics in")

    def histogram(self, name: str) -> Histogram:
        raise TypeError("observability is disabled; no registry to create metrics in")

    def __repr__(self) -> str:
        return "<Observability disabled>"


#: Shared disabled singleton; what ``obs=None`` resolves to everywhere.
NULL_OBS = _NullObservability()


def resolve_obs(obs: "Observability | None") -> Observability:
    """``None`` -> :data:`NULL_OBS`; anything else passes through."""
    return obs if obs is not None else NULL_OBS
