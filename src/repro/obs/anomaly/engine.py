"""The :class:`AnomalyEngine`: poll, derive, detect, act.

Each poll the engine:

1. snapshots the :class:`~repro.obs.metrics.MetricsRegistry` and computes
   the interval delta (:func:`~repro.obs.metrics.snapshot_delta`);
2. **derives a flat series vocabulary** from it -- the rules' input:

   ========================  =============================================
   source metric             derived series
   ========================  =============================================
   counter ``c``             ``c.delta`` (interval increment),
                             ``c.rate`` (increments / second)
   gauge ``g``               ``g`` (current level)
   histogram ``h``           ``h.rate`` (observations / second) always;
                             ``h.p50`` / ``h.p99`` / ``h.mean`` from the
                             *interval's* bucket deltas, only when the
                             interval saw observations (a quiet interval
                             emits no latency -- rules never score stale
                             values)
   ========================  =============================================

3. feeds per-series exemplar windows
   (:class:`~repro.obs.anomaly.sketch.WindowedQuantileSketch`) and the
   optional :class:`~repro.obs.anomaly.sketch.FrequentDirections`
   correlation sketch;
4. runs every rule; ``DETECTED`` transitions journal an
   ``anomaly_detected`` event (with the series' recent window attached as
   an exemplar) and engage any bound actions; ``CLEARED`` journals
   ``anomaly_cleared`` and reverts them.

Time is injectable (``clock=``) and :meth:`AnomalyEngine.poll` can be
driven manually, so every behaviour above is testable with zero real
sleeps; :meth:`AnomalyEngine.start` adds a daemon thread for production
use.  The engine reports on itself through the same registry it watches:
``obs.anomaly.polls`` / ``.detected`` / ``.cleared`` / ``.actions``
counters and the ``obs.anomaly.active`` gauge.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable, Mapping

from ...errors import ConfigurationError
from .. import Observability
from ..events import EventLog
from ..metrics import MetricsRegistry, bucket_percentile, snapshot_delta
from .actions import AnomalyAction
from .detectors import (
    DetectorRule,
    ErrorRatioRule,
    RateOfChangeRule,
    RuleEvent,
    RuleEventKind,
    ZScoreRule,
)

__all__ = ["AnomalyEngine", "default_rules", "DEFAULT_POLL_INTERVAL"]

DEFAULT_POLL_INTERVAL = 1.0

#: How many recent values of each watched series are kept as the exemplar
#: attached to ``anomaly_detected`` records.
DEFAULT_EXEMPLAR_WINDOW = 32


class AnomalyEngine:
    """Polls registry deltas, evaluates rules, journals and acts.

    Construct with an :class:`~repro.obs.Observability` bundle (registry
    and event log are taken from it) or a bare
    :class:`~repro.obs.metrics.MetricsRegistry` plus an explicit
    ``events=``.  Rules are added at construction or via :meth:`add_rule`;
    actions bind to rules by name (:meth:`bind_action`).

    Not re-entrant: :meth:`poll` holds an internal lock, so manual polls
    and the background thread never interleave.
    """

    def __init__(
        self,
        obs: Observability | MetricsRegistry,
        *,
        events: EventLog | None = None,
        rules: Iterable[DetectorRule] = (),
        clock=time.monotonic,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        exemplar_window: int = DEFAULT_EXEMPLAR_WINDOW,
        correlate: Iterable[str] = (),
        correlate_sketch_size: int = 8,
    ) -> None:
        """Wire the engine to a metrics plane.

        :param obs: the observability bundle to watch (its registry) and
            journal into (its event log), or a bare registry.
        :param events: event log override; required when *obs* is a bare
            registry without one (detection without a journal is allowed
            but pointless -- ``None`` means transitions only update state).
        :param rules: initial detector rules.
        :param clock: monotonic-seconds source; injectable for tests.
        :param poll_interval: background-thread cadence (seconds); manual
            :meth:`poll` ignores it.
        :param exemplar_window: recent values retained per watched series.
        :param correlate: series names to feed the frequent-directions
            correlation sketch (reported via :meth:`status`); empty
            disables it.
        :param correlate_sketch_size: sketch rows for the FD sketch.
        """
        if isinstance(obs, Observability):
            if not obs.enabled:
                raise ConfigurationError(
                    "AnomalyEngine needs an enabled Observability (NULL_OBS has no registry)"
                )
            registry = obs.registry
            if events is None:
                events = obs.events
        elif isinstance(obs, MetricsRegistry):
            registry = obs
        else:
            raise ConfigurationError(
                "obs must be an Observability bundle or a MetricsRegistry"
            )
        if poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")
        if exemplar_window < 1:
            raise ConfigurationError("exemplar_window must be at least 1")
        self.registry = registry
        self.events = events
        self.clock = clock
        self.poll_interval = poll_interval
        self._exemplar_window = exemplar_window
        self._rules: list[DetectorRule] = []
        self._actions: dict[str, list[AnomalyAction]] = {}
        self._lock = threading.Lock()
        self._previous_snapshot: dict[str, Any] | None = None
        self._previous_time: float | None = None
        self._series: dict[str, float] = {}
        self._exemplars: dict[str, Any] = {}
        self._active: dict[str, dict[str, Any]] = {}
        self._polls = registry.counter("obs.anomaly.polls")
        self._detected = registry.counter("obs.anomaly.detected")
        self._cleared = registry.counter("obs.anomaly.cleared")
        self._action_count = registry.counter("obs.anomaly.actions")
        self._active_gauge = registry.gauge("obs.anomaly.active")
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._correlate = tuple(correlate)
        self._fd = None
        if self._correlate:
            from .sketch import FrequentDirections

            self._fd = FrequentDirections(
                len(self._correlate), sketch_size=correlate_sketch_size
            )
        for rule in rules:
            self.add_rule(rule)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_rule(self, rule: DetectorRule, *, actions: Iterable[AnomalyAction] = ()) -> DetectorRule:
        """Register a rule (optionally with actions bound in one call)."""
        with self._lock:
            if any(existing.name == rule.name for existing in self._rules):
                raise ConfigurationError(f"duplicate rule name {rule.name!r}")
            self._rules.append(rule)
        for action in actions:
            self.bind_action(rule.name, action)
        return rule

    def bind_action(self, rule_name: str, action: AnomalyAction) -> None:
        """Engage *action* when *rule_name* detects; revert when it clears."""
        with self._lock:
            if not any(rule.name == rule_name for rule in self._rules):
                raise ConfigurationError(f"unknown rule {rule_name!r}")
            self._actions.setdefault(rule_name, []).append(action)

    @property
    def rules(self) -> list[DetectorRule]:
        with self._lock:
            return list(self._rules)

    # ------------------------------------------------------------------
    # Series derivation
    # ------------------------------------------------------------------
    @staticmethod
    def derive_series(
        delta: Mapping[str, Any],
        current: Mapping[str, Any],
        interval: float | None,
    ) -> dict[str, float]:
        """Flatten a snapshot delta into the rules' series vocabulary
        (see the module docstring for the naming table)."""
        series: dict[str, float] = {}
        rate_ok = interval is not None and interval > 0
        for name, increment in delta.get("counters", {}).items():
            series[name + ".delta"] = float(increment)
            if rate_ok:
                series[name + ".rate"] = increment / interval
        for name, level in current.get("gauges", {}).items():
            series[name] = float(level)
        for name, hist in delta.get("histograms", {}).items():
            count = hist.get("count", 0)
            if rate_ok:
                series[name + ".rate"] = count / interval
            if count > 0:
                series[name + ".p50"] = bucket_percentile(hist["buckets"], 0.50)
                series[name + ".p99"] = bucket_percentile(hist["buckets"], 0.99)
                series[name + ".mean"] = hist.get("mean", 0.0)
        return series

    def _watched_series(self) -> set[str]:
        watched: set[str] = set()
        for rule in self._rules:
            watched.add(rule.series)
            total = getattr(rule, "total_series", None)
            if total:
                watched.add(total)
        watched.update(self._correlate)
        return watched

    # ------------------------------------------------------------------
    # The poll
    # ------------------------------------------------------------------
    def poll(self, now: float | None = None) -> list[RuleEvent]:
        """Run one detection cycle; returns the rule transitions it saw."""
        with self._lock:
            return self._poll_locked(self.clock() if now is None else now)

    def _poll_locked(self, now: float) -> list[RuleEvent]:
        current = self.registry.snapshot()
        interval = None
        if self._previous_time is not None:
            interval = now - self._previous_time
            if interval <= 0:
                interval = None
        delta = snapshot_delta(self._previous_snapshot, current)
        first_poll = self._previous_snapshot is None
        self._previous_snapshot = current
        self._previous_time = now
        self._polls.inc()
        if first_poll:
            # No interval yet: deltas are cumulative-since-forever, which
            # would look like a giant burst. Prime state, detect nothing.
            return []
        series = self.derive_series(delta, current, interval)
        self._series = series
        self._feed_sketches(series)
        transitions: list[RuleEvent] = []
        for rule in self._rules:
            event = rule.update(series, interval=interval)
            if event is None:
                continue
            transitions.append(event)
            if event.kind is RuleEventKind.DETECTED:
                self._on_detected(rule, event, now)
            else:
                self._on_cleared(rule, event, now)
        self._active_gauge.set(float(len(self._active)))
        return transitions

    def _feed_sketches(self, series: Mapping[str, float]) -> None:
        from .sketch import WindowedQuantileSketch

        for name in self._watched_series():
            value = series.get(name)
            if value is None:
                continue
            sketch = self._exemplars.get(name)
            if sketch is None:
                sketch = self._exemplars[name] = WindowedQuantileSketch(
                    window=self._exemplar_window
                )
            sketch.update(value)
        if self._fd is not None:
            self._fd.update([series.get(name, 0.0) for name in self._correlate])

    def _exemplar(self, name: str) -> list[float]:
        sketch = self._exemplars.get(name)
        return [round(v, 9) for v in sketch.recent()] if sketch is not None else []

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.events is not None:
            self.events.emit(kind, **fields)

    def _correlation_hint(self, series: str) -> dict[str, Any] | None:
        """Root-cause hint from the frequent-directions sketch.

        The sketch's top direction names the series that have been moving
        *together*; the ones co-moving with the firing series are the first
        places to look for a cause (``docs/anomaly.md``).
        """
        if self._fd is None or not self._fd.appended:
            return None
        directions = self._fd.directions()
        if not directions:
            return None
        weight, _direction = directions[0]
        correlated = [self._correlate[i] for i in self._fd.correlates()]
        return {
            "weight": round(weight, 6),
            "correlated": correlated,
            "co_moving": [name for name in correlated if name != series],
        }

    def _on_detected(self, rule: DetectorRule, event: RuleEvent, now: float) -> None:
        self._detected.inc()
        record = {
            "rule": rule.name,
            "series": event.series,
            "value": round(event.value, 9),
            "threshold": event.threshold,
            "since": now,
            "detail": dict(event.detail),
            "actions": [],
        }
        hint = self._correlation_hint(event.series)
        if hint is not None:
            record["correlation"] = hint
        self._active[rule.name] = record
        action_names: list[str] = []
        for action in self._actions.get(rule.name, ()):
            detail = action.engage()
            self._action_count.inc()
            action_names.append(action.name)
            self._emit(
                "anomaly_action",
                action=action.name,
                rule=rule.name,
                direction="engage",
                **detail,
            )
        record["actions"] = action_names
        self._emit(
            "anomaly_detected",
            rule=rule.name,
            series=event.series,
            value=record["value"],
            threshold=event.threshold,
            exemplar=self._exemplar(event.series),
            actions=action_names,
            co_moving=None if hint is None else hint["co_moving"],
            **event.detail,
        )

    def _on_cleared(self, rule: DetectorRule, event: RuleEvent, now: float) -> None:
        self._cleared.inc()
        record = self._active.pop(rule.name, None)
        duration = round(now - record["since"], 9) if record else None
        for action in self._actions.get(rule.name, ()):
            detail = action.revert()
            self._emit(
                "anomaly_action",
                action=action.name,
                rule=rule.name,
                direction="revert",
                **detail,
            )
        self._emit(
            "anomaly_cleared",
            rule=rule.name,
            series=event.series,
            value=round(event.value, 9),
            threshold=event.threshold,
            duration=duration,
            **event.detail,
        )

    # ------------------------------------------------------------------
    # Introspection (powers /anomalies.json, top, and the CLI)
    # ------------------------------------------------------------------
    def active(self) -> list[dict[str, Any]]:
        """Currently-active anomalies, oldest first."""
        with self._lock:
            return sorted(
                (dict(record) for record in self._active.values()),
                key=lambda record: record["since"],
            )

    def status(self) -> dict[str, Any]:
        """Plain-data engine report (JSON-safe)."""
        with self._lock:
            status: dict[str, Any] = {
                "polls": self._polls.value,
                "detected": self._detected.value,
                "cleared": self._cleared.value,
                "active": sorted(
                    (dict(record) for record in self._active.values()),
                    key=lambda record: record["since"],
                ),
                "rules": [rule.describe() for rule in self._rules],
                "actions": [
                    {**action.describe(), "rule": rule_name}
                    for rule_name, actions in sorted(self._actions.items())
                    for action in actions
                ],
                "series": {
                    name: round(value, 9) for name, value in sorted(self._series.items())
                },
            }
            if self._fd is not None and self._fd.appended:
                directions = self._fd.directions()
                if directions:
                    weight, direction = directions[0]
                    status["correlation"] = {
                        "series": list(self._correlate),
                        "weight": round(weight, 6),
                        "direction": [round(c, 6) for c in direction],
                        "correlated": [
                            self._correlate[i] for i in self._fd.correlates()
                        ],
                    }
            return status

    # ------------------------------------------------------------------
    # Background polling (production mode; tests drive poll() directly)
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background poll thread (idempotent)."""
        if self.running:
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.poll_interval):
                self.poll()

        self._thread = threading.Thread(
            target=run, name="anomaly-engine", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread (idempotent; joins briefly)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "AnomalyEngine":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "running" if self.running else "idle"
        return (
            f"<AnomalyEngine rules={len(self._rules)} "
            f"active={len(self._active)} {state}>"
        )


def default_rules(
    *,
    latency_series: str = "client.get.seconds.p99",
    latency_zmax: float = 4.0,
    error_series: str = "kv.retry.exhausted.delta",
    total_series: str = "client.store_reads.delta",
    error_ratio: float = 0.5,
    leak_series: str = "demo.leak.bytes",
    leak_per_second: float = 1.0,
) -> list[DetectorRule]:
    """A starter rule set for the demo stack (CLI ``repro anomaly demo``
    and ``repro top --demo``): p99 latency deviation over the enhanced
    client's read path, retry-exhaustion ratio against store reads, and a
    gauge-leak drift rule.  Rules whose series never appear simply stay
    quiet.  Production deployments should name their own series; this is
    a template, not a default policy."""
    return [
        ZScoreRule(
            "latency_p99",
            latency_series,
            zmax=latency_zmax,
            trigger_after=2,
            clear_after=3,
        ),
        ErrorRatioRule(
            "error_burst",
            error_series,
            total_series,
            ratio=error_ratio,
            trigger_after=1,
            clear_after=2,
        ),
        RateOfChangeRule(
            "slow_leak",
            leak_series,
            per_second=leak_per_second,
            trigger_after=3,
            clear_after=3,
        ),
    ]
