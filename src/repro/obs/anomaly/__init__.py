"""Streaming anomaly detection over the metrics plane.

PRs 1-2 made the stack *observable* (metrics, traces, events, exporter,
``repro top``); this package makes it *self-observing*: a constant-memory
streaming layer that watches the :class:`~repro.obs.metrics.MetricsRegistry`
online, decides when a series has left its normal regime, and closes the
loop by journaling structured events and -- optionally -- engaging the
fault-tolerance plane before callers feel the failure.

Four pieces, smallest first:

* :mod:`~repro.obs.anomaly.sketch` -- constant-memory online summaries:
  exponentially-decayed Welford mean/variance, a windowed quantile sketch,
  and a frequent-directions matrix sketch for correlating many series;
* :mod:`~repro.obs.anomaly.detectors` -- composable detector rules (static
  threshold, robust z-score, rate-of-change, error-ratio) wrapped in one
  shared hysteresis + debounce state machine so flapping series do not spam
  events;
* :mod:`~repro.obs.anomaly.engine` -- the :class:`AnomalyEngine`: polls
  registry deltas on an injectable clock, derives per-interval series
  (counter rates, gauge levels, histogram interval percentiles), evaluates
  the rules, and emits ``anomaly_detected`` / ``anomaly_cleared`` records
  into the event log with the offending series' recent window attached as
  an exemplar;
* :mod:`~repro.obs.anomaly.actions` -- reversible resilience actions an
  anomaly can engage (trip a circuit breaker preemptively, enable hedged
  reads, switch a client into serve-stale mode), each journaled on engage
  and reverted on clear.

The whole loop runs with zero real sleeps under test: the engine's clock is
injectable and :meth:`AnomalyEngine.poll` can be driven manually, which is
how ``scripts/check_anomaly.py`` validates detection coverage against the
chaos plane (inject a latency step, an error burst, a slow leak -- assert
all detected and a clean baseline stays quiet).  Contract and tuning guide:
``docs/anomaly.md``.
"""

from __future__ import annotations

from .actions import (
    AnomalyAction,
    CallbackAction,
    EnableHedgingAction,
    ServeStaleAction,
    TripCircuitAction,
)
from .detectors import (
    DetectorRule,
    ErrorRatioRule,
    RateOfChangeRule,
    RuleEvent,
    ThresholdRule,
    ZScoreRule,
)
from .engine import AnomalyEngine, default_rules
from .sketch import DecayedMeanVar, FrequentDirections, WindowedQuantileSketch

__all__ = [
    "DecayedMeanVar",
    "WindowedQuantileSketch",
    "FrequentDirections",
    "DetectorRule",
    "RuleEvent",
    "ThresholdRule",
    "ZScoreRule",
    "RateOfChangeRule",
    "ErrorRatioRule",
    "AnomalyEngine",
    "default_rules",
    "AnomalyAction",
    "CallbackAction",
    "TripCircuitAction",
    "EnableHedgingAction",
    "ServeStaleAction",
]
