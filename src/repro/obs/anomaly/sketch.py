"""Constant-memory online summaries for metric streams.

Every structure here answers one question about an unbounded stream in
bounded memory, because the anomaly engine runs forever inside the process
it watches and must never become the memory leak it is supposed to detect:

* :class:`DecayedMeanVar` -- "what is normal *lately*?"  Welford's online
  mean/variance with exponential decay, so the baseline tracks regime
  changes instead of averaging over the whole process lifetime.  O(1)
  state, O(1) update.
* :class:`WindowedQuantileSketch` -- "what does the recent distribution
  look like?"  A bounded ring of the last *window* observations with
  nearest-rank quantiles; the exemplar attached to anomaly events comes
  from here.  O(window) state, O(1) update, O(window log window) query
  (queries happen at poll cadence, not per operation).
* :class:`FrequentDirections` -- "which series move *together*?"  The
  Liberty frequent-directions matrix sketch: a deterministic, provably
  bounded low-rank summary of the stream of per-poll series vectors.  The
  top retained direction names the correlated group an anomalous series
  belongs to, which turns "latency p99 jumped" into "latency p99 jumped
  together with retry rate and circuit rejections".  O(sketch_size x dim)
  state, amortized O(sketch_size x dim) update via a pure-python Jacobi
  eigensolver on the small ``sketch_size x sketch_size`` Gram matrix
  (independent of how many polls the stream has seen).

Nothing here imports beyond the stdlib; the sketches are usable standalone
(they know nothing about metrics or rules).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable, Sequence

from ...errors import ConfigurationError

__all__ = ["DecayedMeanVar", "WindowedQuantileSketch", "FrequentDirections"]


class DecayedMeanVar:
    """Exponentially-decayed Welford mean/variance.

    ``alpha`` is the weight of each new observation: the effective memory is
    roughly the last ``1/alpha`` observations (``alpha=0.05`` ~ the last 20
    polls).  ``update`` keeps the classic numerically-stable recurrence::

        diff      = x - mean
        mean     += alpha * diff
        variance  = (1 - alpha) * (variance + alpha * diff^2)

    which for a stationary stream converges to the stream's variance, and
    for a shifting stream forgets the old regime at rate ``1 - alpha``.
    ``zscore`` guards against a degenerate (constant) baseline with a
    minimum standard deviation floor.
    """

    __slots__ = ("_alpha", "_mean", "_var", "_count", "_min_std")

    def __init__(self, *, alpha: float = 0.05, min_std: float = 1e-9) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be within (0, 1]")
        if min_std < 0:
            raise ConfigurationError("min_std must be non-negative")
        self._alpha = alpha
        self._mean = 0.0
        self._var = 0.0
        self._count = 0
        self._min_std = min_std

    def update(self, value: float) -> None:
        """Fold one observation into the decayed baseline."""
        if self._count == 0:
            self._mean = float(value)
            self._var = 0.0
        else:
            diff = float(value) - self._mean
            increment = self._alpha * diff
            self._mean += increment
            self._var = (1.0 - self._alpha) * (self._var + diff * increment)
        self._count += 1

    @property
    def count(self) -> int:
        """Observations folded in so far (undecayed tally)."""
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._var

    @property
    def std(self) -> float:
        return math.sqrt(self._var)

    def zscore(self, value: float) -> float:
        """Robust deviation of *value* from the decayed baseline.

        Returns 0.0 until at least one observation exists; the divisor is
        floored at ``min_std`` so a perfectly flat baseline (variance 0)
        yields a large-but-finite score instead of a division error.
        """
        if self._count == 0:
            return 0.0
        return (float(value) - self._mean) / max(self.std, self._min_std)

    def __repr__(self) -> str:
        return (
            f"DecayedMeanVar(mean={self._mean:.6g}, std={self.std:.6g}, "
            f"count={self._count})"
        )


class WindowedQuantileSketch:
    """Nearest-rank quantiles over the last *window* observations.

    A plain bounded ring: O(window) memory forever, O(1) update.  Queries
    sort a copy, which at the engine's poll cadence (a handful per second
    at most) is far cheaper than maintaining a tree.  Also the source of
    the ``recent`` exemplar attached to anomaly events.
    """

    __slots__ = ("_ring",)

    def __init__(self, window: int = 128) -> None:
        if window < 1:
            raise ConfigurationError("window must be at least 1")
        self._ring: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._ring.append(float(value))

    def quantile(self, fraction: float) -> float:
        """Nearest-rank quantile of the retained window (0.0 when empty)."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("quantile fraction must be within [0, 1]")
        if not self._ring:
            return 0.0
        ordered = sorted(self._ring)
        rank = max(1, math.ceil(fraction * len(ordered)))
        return ordered[rank - 1]

    def recent(self, count: int | None = None) -> list[float]:
        """Newest-last copy of the retained values (the exemplar window)."""
        values = list(self._ring)
        return values if count is None else values[-count:]

    @property
    def window(self) -> int:
        return self._ring.maxlen or 0

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return f"WindowedQuantileSketch(len={len(self)}, window={self.window})"


# ----------------------------------------------------------------------
# Frequent directions
# ----------------------------------------------------------------------
def _jacobi_eigh(matrix: list[list[float]], *, sweeps: int = 32,
                 tol: float = 1e-12) -> tuple[list[float], list[list[float]]]:
    """Eigen-decomposition of a small symmetric matrix by cyclic Jacobi.

    Returns ``(eigenvalues, eigenvectors)`` with eigenvectors as *rows*,
    sorted by descending eigenvalue.  Pure python on purpose: the matrices
    here are ``sketch_size x sketch_size`` (a dozen rows), where Jacobi's
    O(n^3) per sweep is microseconds and numpy would be the project's first
    hard dependency.
    """
    n = len(matrix)
    a = [row[:] for row in matrix]
    # Eigenvector accumulator, starts as identity (rows are vectors).
    v = [[1.0 if i == j else 0.0 for j in range(n)] for i in range(n)]
    for _ in range(sweeps):
        off = math.sqrt(sum(a[i][j] ** 2 for i in range(n) for j in range(n) if i != j))
        if off <= tol:
            break
        for p in range(n - 1):
            for q in range(p + 1, n):
                if abs(a[p][q]) <= tol:
                    continue
                # Rotation angle zeroing a[p][q].
                theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q])
                t = math.copysign(1.0, theta) / (abs(theta) + math.sqrt(theta * theta + 1.0))
                c = 1.0 / math.sqrt(t * t + 1.0)
                s = t * c
                for k in range(n):
                    akp, akq = a[k][p], a[k][q]
                    a[k][p] = c * akp - s * akq
                    a[k][q] = s * akp + c * akq
                for k in range(n):
                    apk, aqk = a[p][k], a[q][k]
                    a[p][k] = c * apk - s * aqk
                    a[q][k] = s * apk + c * aqk
                for k in range(n):
                    vpk, vqk = v[p][k], v[q][k]
                    v[p][k] = c * vpk - s * vqk
                    v[q][k] = s * vpk + c * vqk
    eigen = sorted(
        ((a[i][i], v[i]) for i in range(n)), key=lambda pair: pair[0], reverse=True
    )
    return [value for value, _vec in eigen], [vec for _value, vec in eigen]


class FrequentDirections:
    """The frequent-directions matrix sketch (Liberty, KDD 2013).

    Maintains ``B``, a ``sketch_size x dim`` matrix such that for any unit
    vector ``x``::

        0 <= |A x|^2 - |B x|^2 <= |A|_F^2 / (sketch_size / 2)

    where ``A`` is the full (unbounded) history of appended rows.  In other
    words: directions along which the stream has persistent mass survive in
    the sketch; noise is shrunk away -- deterministically, with no
    randomness to seed and no dependence on stream length.

    The anomaly engine appends one row per poll (the vector of watched
    series, z-normalized), so the top retained direction is the dominant
    *co-movement pattern* across series, and :meth:`correlates` names the
    series that move together along it.
    """

    def __init__(self, dim: int, *, sketch_size: int = 8) -> None:
        if dim < 1:
            raise ConfigurationError("dim must be at least 1")
        if sketch_size < 2:
            raise ConfigurationError("sketch_size must be at least 2")
        self._dim = dim
        self._size = sketch_size
        self._rows: list[list[float]] = []
        self._appended = 0
        self._shrinkages = 0

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._dim

    @property
    def appended(self) -> int:
        """Rows appended over the sketch's lifetime."""
        return self._appended

    @property
    def shrinkages(self) -> int:
        """How many times the sketch compacted itself."""
        return self._shrinkages

    # ------------------------------------------------------------------
    def update(self, row: Sequence[float]) -> None:
        """Append one row (a per-poll vector of series values)."""
        if len(row) != self._dim:
            raise ConfigurationError(
                f"row has {len(row)} entries, sketch dimension is {self._dim}"
            )
        self._rows.append([float(value) for value in row])
        self._appended += 1
        if len(self._rows) >= self._size:
            self._shrink()

    def _shrink(self) -> None:
        """SVD shrinkage via the small Gram matrix ``B B^T``.

        ``B = U S V^T`` implies ``B B^T = U S^2 U^T`` -- an eigenproblem of
        size ``len(rows) x len(rows)``, *independent of dim*.  The right
        singular vectors are recovered as ``V^T = S^-1 U^T B`` and the
        singular values are shrunk by the median eigenvalue, halving the
        occupied rows.
        """
        rows = self._rows
        m = len(rows)
        gram = [
            [sum(rows[i][k] * rows[j][k] for k in range(self._dim)) for j in range(m)]
            for i in range(m)
        ]
        eigenvalues, eigenvectors = _jacobi_eigh(gram)
        # Shrink by the middle eigenvalue: standard FD keeps size/2 rows.
        cutoff_index = self._size // 2
        cutoff = eigenvalues[cutoff_index] if cutoff_index < m else 0.0
        survivors: list[list[float]] = []
        for value, u_row in zip(eigenvalues, eigenvectors):
            shrunk = value - cutoff
            if shrunk <= 1e-12:
                continue
            sigma = math.sqrt(max(value, 0.0))
            if sigma <= 1e-12:
                continue
            # v = (1/sigma) * B^T u ; survivor row = sqrt(shrunk) * v.
            scale = math.sqrt(shrunk) / sigma
            survivors.append(
                [
                    scale * sum(u_row[i] * rows[i][k] for i in range(m))
                    for k in range(self._dim)
                ]
            )
        self._rows = survivors
        self._shrinkages += 1

    # ------------------------------------------------------------------
    def directions(self) -> list[tuple[float, list[float]]]:
        """Retained ``(weight, unit_vector)`` pairs, heaviest first.

        Weight is the row's squared norm -- its share of the retained
        energy along that direction.
        """
        out: list[tuple[float, list[float]]] = []
        for row in self._rows:
            norm_sq = sum(value * value for value in row)
            if norm_sq <= 1e-24:
                continue
            norm = math.sqrt(norm_sq)
            out.append((norm_sq, [value / norm for value in row]))
        out.sort(key=lambda pair: pair[0], reverse=True)
        return out

    def top_direction(self) -> list[float] | None:
        """Unit vector of the heaviest retained direction (``None`` when
        the sketch is empty)."""
        directions = self.directions()
        return directions[0][1] if directions else None

    def correlates(self, *, threshold: float = 0.3) -> list[int]:
        """Indices whose |component| in the top direction >= *threshold*.

        The "these series move together" answer: indices of the vector
        positions (series) that carry real weight in the dominant
        co-movement direction.
        """
        top = self.top_direction()
        if top is None:
            return []
        return [index for index, value in enumerate(top) if abs(value) >= threshold]

    def covariance_with(self, index: int) -> list[float]:
        """Sketched inner products of series *index* with every series
        (column ``index`` of ``B^T B``) -- a cheap correlation profile."""
        if not 0 <= index < self._dim:
            raise ConfigurationError("index out of range")
        return [
            sum(row[index] * row[k] for row in self._rows) for k in range(self._dim)
        ]

    def __repr__(self) -> str:
        return (
            f"FrequentDirections(dim={self._dim}, size={self._size}, "
            f"rows={len(self._rows)}, appended={self._appended})"
        )
