"""Reversible resilience actions an anomaly can engage.

The point of detection is to *do something* before callers feel the
failure: trip a circuit breaker preemptively (shed load now, not after N
more failures), turn on hedged reads (mask a slow replica), or switch a
client into serve-stale mode (trade freshness for availability).  Each
action here is the smallest safe version of that idea:

* **reversible** -- :meth:`~AnomalyAction.engage` captures whatever state
  it changes and :meth:`~AnomalyAction.revert` restores it exactly, so an
  ``anomaly_cleared`` puts the stack back the way it was;
* **reference-counted** -- two concurrent anomalies bound to the same
  action (say, a latency rule and an error rule both tripping the same
  breaker) engage it twice but apply it once, and it reverts only when the
  *last* of them clears;
* **journaled by the engine** -- every engage/revert becomes an
  ``anomaly_action`` event, so the audit trail answers "who flipped this
  and why" without reading code.

Targets are duck-typed on purpose: this module must not import
:mod:`repro.kv` (which imports :mod:`repro.obs` -- a cycle), so
:class:`TripCircuitAction` needs only ``.trip()``/``.reset()``,
:class:`EnableHedgingAction` only a ``hedge_delay`` property, and
:class:`ServeStaleAction` only a ``serve_stale`` property.  Anything with
the right surface works, including test doubles.
"""

from __future__ import annotations

from typing import Any, Callable

from ...errors import ConfigurationError

__all__ = [
    "AnomalyAction",
    "CallbackAction",
    "TripCircuitAction",
    "EnableHedgingAction",
    "ServeStaleAction",
]


class AnomalyAction:
    """Base class: reference-counted engage/revert around a state change.

    Subclasses implement :meth:`_apply` (change the target, return journal
    detail) and :meth:`_restore` (undo it).  The base class guarantees
    ``_apply`` runs only on the 0 -> 1 engagement edge and ``_restore``
    only on 1 -> 0, so binding one action to several rules is safe.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ConfigurationError("action name must be non-empty")
        self.name = name
        self._engaged = 0
        #: lifetime count of 0 -> 1 applications (for reports/assertions)
        self.applications = 0

    # ------------------------------------------------------------------
    @property
    def engaged(self) -> bool:
        """True while at least one anomaly holds this action engaged."""
        return self._engaged > 0

    @property
    def holders(self) -> int:
        """How many active anomalies currently hold the action."""
        return self._engaged

    def engage(self) -> dict[str, Any]:
        """Engage once; applies the change on the first holder only."""
        self._engaged += 1
        if self._engaged == 1:
            self.applications += 1
            detail = self._apply() or {}
            return {"applied": True, **detail}
        return {"applied": False, "holders": self._engaged}

    def revert(self) -> dict[str, Any]:
        """Release one hold; restores the change when the last one clears."""
        if self._engaged == 0:
            return {"restored": False, "reason": "not engaged"}
        self._engaged -= 1
        if self._engaged == 0:
            detail = self._restore() or {}
            return {"restored": True, **detail}
        return {"restored": False, "holders": self._engaged}

    def describe(self) -> dict[str, Any]:
        return {
            "action": self.name,
            "kind": type(self).__name__,
            "engaged": self.engaged,
            "holders": self._engaged,
            "applications": self.applications,
        }

    # ------------------------------------------------------------------
    def _apply(self) -> dict[str, Any] | None:
        raise NotImplementedError

    def _restore(self) -> dict[str, Any] | None:
        raise NotImplementedError

    def __repr__(self) -> str:
        state = f"engaged x{self._engaged}" if self._engaged else "idle"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class CallbackAction(AnomalyAction):
    """Run arbitrary callables on engage/revert -- the escape hatch.

    ``on_engage`` / ``on_revert`` may return a dict of journal detail.
    ``on_revert`` may be omitted for one-way notifications (paging a
    human), in which case revert journals but changes nothing.
    """

    def __init__(
        self,
        name: str,
        on_engage: Callable[[], Any],
        on_revert: Callable[[], Any] | None = None,
    ) -> None:
        super().__init__(name)
        self._on_engage = on_engage
        self._on_revert = on_revert

    def _apply(self) -> dict[str, Any] | None:
        result = self._on_engage()
        return result if isinstance(result, dict) else None

    def _restore(self) -> dict[str, Any] | None:
        if self._on_revert is None:
            return {"note": "no revert callback"}
        result = self._on_revert()
        return result if isinstance(result, dict) else None


class TripCircuitAction(AnomalyAction):
    """Preemptively open a circuit breaker; close it again on clear.

    The breaker normally opens *after* enough callers have eaten failures;
    this action opens it the moment the metrics plane sees trouble, so the
    fallback path (UDSM rerouting, serve-stale) takes over before the
    error budget is spent.  Revert calls ``reset()``, returning the breaker
    to closed; if the underlying store is still sick, the breaker's own
    thresholds will re-open it from real traffic.

    *breaker* needs ``trip()`` and ``reset()``
    (:class:`repro.kv.circuit.CircuitBreaker` grows both in this PR).
    """

    def __init__(self, breaker: Any, *, name: str = "trip_circuit") -> None:
        super().__init__(name)
        self.breaker = breaker

    def _apply(self) -> dict[str, Any]:
        self.breaker.trip()
        return {"breaker": getattr(self.breaker, "name", repr(self.breaker))}

    def _restore(self) -> dict[str, Any]:
        self.breaker.reset()
        return {"breaker": getattr(self.breaker, "name", repr(self.breaker))}


class EnableHedgingAction(AnomalyAction):
    """Turn on (or tighten) hedged reads while an anomaly is active.

    Captures the store's current ``hedge_delay`` and sets it to
    *hedge_delay*; revert restores the captured value -- including ``None``
    (hedging off), so a store that never hedged goes back to never hedging.

    *store* needs a readable/writable ``hedge_delay`` property
    (:class:`repro.kv.resilience.ReplicatedStore` grows the setter in this
    PR).
    """

    def __init__(
        self, store: Any, *, hedge_delay: float = 0.0, name: str = "enable_hedging"
    ) -> None:
        super().__init__(name)
        if hedge_delay < 0:
            raise ConfigurationError("hedge_delay must be >= 0")
        self.store = store
        self.hedge_delay = hedge_delay
        self._previous: Any = None

    def _apply(self) -> dict[str, Any]:
        self._previous = self.store.hedge_delay
        self.store.hedge_delay = self.hedge_delay
        return {"hedge_delay": self.hedge_delay, "previous": self._previous}

    def _restore(self) -> dict[str, Any]:
        self.store.hedge_delay = self._previous
        return {"hedge_delay": self._previous}


class ServeStaleAction(AnomalyAction):
    """Switch a client into serve-stale degradation while anomalous.

    Captures the client's ``serve_stale`` flag (and ``max_stale``, when a
    bound is given) and enables stale serving; revert restores both.  The
    client's own safety rules still apply -- negatives are never served
    stale, and entries beyond ``max_stale`` stay misses -- this action only
    flips the policy switch.

    *client* needs ``serve_stale`` (and optionally ``max_stale``) as
    readable/writable properties
    (:class:`repro.core.enhanced.EnhancedDataStoreClient` grows the setters
    in this PR).
    """

    def __init__(
        self, client: Any, *, max_stale: float | None = None, name: str = "serve_stale"
    ) -> None:
        super().__init__(name)
        if max_stale is not None and max_stale < 0:
            raise ConfigurationError("max_stale must be >= 0")
        self.client = client
        self.max_stale = max_stale
        self._previous_flag = False
        self._previous_max: Any = None

    def _apply(self) -> dict[str, Any]:
        self._previous_flag = self.client.serve_stale
        self.client.serve_stale = True
        detail: dict[str, Any] = {"serve_stale": True}
        if self.max_stale is not None:
            self._previous_max = self.client.max_stale
            self.client.max_stale = self.max_stale
            detail["max_stale"] = self.max_stale
        return detail

    def _restore(self) -> dict[str, Any]:
        self.client.serve_stale = self._previous_flag
        detail: dict[str, Any] = {"serve_stale": self._previous_flag}
        if self.max_stale is not None:
            self.client.max_stale = self._previous_max
            detail["max_stale"] = self._previous_max
        return detail
