"""Composable detector rules with hysteresis and debounce.

A rule watches one (or two) derived series from the engine's per-poll view
and decides *breach or not*; the base class turns that raw boolean into
calm, operator-grade transitions:

* **debounce** -- a rule must breach ``trigger_after`` consecutive polls
  before it fires (one garbage-collection pause is not an incident);
* **hysteresis** -- a fired rule must stay *below its clear threshold* for
  ``clear_after`` consecutive polls before it clears, and the clear
  threshold sits below the trigger threshold (``clear_ratio``), so a series
  oscillating around the trigger level produces one anomaly, not fifty.

The contract with the engine: :meth:`DetectorRule.update` is called once
per poll with the full series mapping and returns zero or one
:class:`RuleEvent` (``DETECTED`` or ``CLEARED``).  Rules are deliberately
clock-free -- the engine owns time -- and sleep-free, so the whole detection
plane is testable by calling ``update`` in a loop.

Concrete rules:

* :class:`ThresholdRule` -- static bound on a series (above or below);
* :class:`ZScoreRule` -- robust deviation from a
  :class:`~repro.obs.anomaly.sketch.DecayedMeanVar` baseline that is
  *frozen while the anomaly is active*, so a latency step cannot absorb
  itself into "normal" and silently clear;
* :class:`RateOfChangeRule` -- per-second drift bound (the slow-leak
  detector);
* :class:`ErrorRatioRule` -- errors / total over the poll interval with a
  minimum-volume guard so one failing request out of one does not page.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from ...errors import ConfigurationError
from .sketch import DecayedMeanVar

__all__ = [
    "RuleEventKind",
    "RuleEvent",
    "DetectorRule",
    "ThresholdRule",
    "ZScoreRule",
    "RateOfChangeRule",
    "ErrorRatioRule",
]


class RuleEventKind(enum.Enum):
    DETECTED = "detected"
    CLEARED = "cleared"


@dataclass
class RuleEvent:
    """One state transition produced by a rule during a poll."""

    kind: RuleEventKind
    rule: str
    series: str
    value: float
    threshold: float
    detail: dict[str, Any] = field(default_factory=dict)


class DetectorRule:
    """Base class: breach logic is the subclass's, calm-down logic is here.

    State machine (per rule -- a rule binds one logical condition):

    ``quiet`` --[breach x trigger_after]--> ``active`` --[calm x
    clear_after]--> ``quiet``.  "Calm" means *below the clear threshold*,
    which subclasses place below the trigger threshold; in between, the
    counters simply hold (no event either way -- that is the hysteresis
    band).
    """

    def __init__(
        self,
        name: str,
        series: str,
        *,
        trigger_after: int = 1,
        clear_after: int = 2,
    ) -> None:
        """Configure the transition discipline.

        :param name: rule identifier (journaled with every event).
        :param series: the engine-derived series this rule watches (purely
            informational for two-series rules, which override
            :meth:`_breach` and read what they need).
        :param trigger_after: consecutive breaching polls before DETECTED.
        :param clear_after: consecutive calm polls before CLEARED.
        """
        if not name:
            raise ConfigurationError("rule name must be non-empty")
        if trigger_after < 1 or clear_after < 1:
            raise ConfigurationError("trigger_after and clear_after must be >= 1")
        self.name = name
        self.series = series
        self.trigger_after = trigger_after
        self.clear_after = clear_after
        self._breaching_polls = 0
        self._calm_polls = 0
        self._active = False
        #: lifetime transition counts (for reports and assertions)
        self.detections = 0
        self.clearances = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._active

    def describe(self) -> dict[str, Any]:
        """Static description for ``repro anomaly rules`` and the export."""
        return {
            "rule": self.name,
            "kind": type(self).__name__,
            "series": self.series,
            "trigger_after": self.trigger_after,
            "clear_after": self.clear_after,
            "active": self._active,
            **self._describe_thresholds(),
        }

    def _describe_thresholds(self) -> dict[str, Any]:
        return {}

    # ------------------------------------------------------------------
    # Subclass contract
    # ------------------------------------------------------------------
    def _breach(
        self, series: Mapping[str, float], interval: float | None
    ) -> tuple[bool | None, bool, float, float, dict[str, Any]]:
        """Evaluate one poll.

        Returns ``(breached, calm, value, threshold, detail)``:

        * ``breached`` -- the trigger condition holds (``None`` = the rule
          cannot evaluate this poll, e.g. its series is absent or a
          baseline is still warming up; counters hold, nothing happens);
        * ``calm`` -- the value is below the *clear* threshold (the
          hysteresis band is ``not breached and not calm``);
        * ``value`` / ``threshold`` -- what to journal;
        * ``detail`` -- extra journal fields (z-score, ratio, ...).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def update(
        self, series: Mapping[str, float], *, interval: float | None = None
    ) -> RuleEvent | None:
        """Feed one poll; returns a transition event or ``None``."""
        breached, calm, value, threshold, detail = self._breach(series, interval)
        if breached is None:
            return None
        if not self._active:
            if breached:
                self._breaching_polls += 1
                if self._breaching_polls >= self.trigger_after:
                    self._active = True
                    self._breaching_polls = 0
                    self._calm_polls = 0
                    self.detections += 1
                    return RuleEvent(
                        RuleEventKind.DETECTED, self.name, self.series,
                        value, threshold, detail,
                    )
            else:
                self._breaching_polls = 0
            return None
        # Active: wait for sustained calm below the clear threshold.
        if calm:
            self._calm_polls += 1
            if self._calm_polls >= self.clear_after:
                self._active = False
                self._calm_polls = 0
                self._breaching_polls = 0
                self.clearances += 1
                return RuleEvent(
                    RuleEventKind.CLEARED, self.name, self.series,
                    value, threshold, detail,
                )
        else:
            self._calm_polls = 0
        return None

    def __repr__(self) -> str:
        state = "active" if self._active else "quiet"
        return f"<{type(self).__name__} {self.name!r} on {self.series!r} {state}>"


class ThresholdRule(DetectorRule):
    """Static bound: breach when the series is at or beyond ``limit``.

    ``direction="above"`` (the default) triggers at ``value >= limit`` and
    clears below ``limit * clear_ratio``; ``direction="below"`` mirrors
    (trigger at ``value <= limit``, clear above ``limit / clear_ratio``).
    """

    def __init__(
        self,
        name: str,
        series: str,
        *,
        limit: float,
        direction: str = "above",
        clear_ratio: float = 0.8,
        **discipline: Any,
    ) -> None:
        super().__init__(name, series, **discipline)
        if direction not in ("above", "below"):
            raise ConfigurationError("direction must be 'above' or 'below'")
        if not 0.0 < clear_ratio <= 1.0:
            raise ConfigurationError("clear_ratio must be within (0, 1]")
        self.limit = limit
        self.direction = direction
        self._clear_ratio = clear_ratio

    def _describe_thresholds(self) -> dict[str, Any]:
        return {"limit": self.limit, "direction": self.direction,
                "clear_at": self.clear_threshold}

    @property
    def clear_threshold(self) -> float:
        if self.direction == "above":
            return self.limit * self._clear_ratio
        return self.limit / self._clear_ratio if self._clear_ratio else self.limit

    def _breach(self, series, interval):
        value = series.get(self.series)
        if value is None:
            return None, False, 0.0, self.limit, {}
        if self.direction == "above":
            breached = value >= self.limit
            calm = value < self.clear_threshold
        else:
            breached = value <= self.limit
            calm = value > self.clear_threshold
        return breached, calm, value, self.limit, {"direction": self.direction}


class ZScoreRule(DetectorRule):
    """Robust deviation from an exponentially-decayed baseline.

    Breaches when ``|z| >= zmax`` (or only positive deviations with
    ``two_sided=False``); clears when ``|z| < zmax * clear_ratio``.  The
    baseline needs ``min_observations`` polls before the rule evaluates at
    all (an empty baseline flags everything), and **freezes while the rule
    is active**: a level shift keeps scoring against the *pre-anomaly*
    normal until it clears, so a persistent regression stays visible
    instead of becoming the new baseline.  Pass ``freeze_while_active=False``
    for streams where adaptation is wanted (e.g. diurnal load).
    """

    def __init__(
        self,
        name: str,
        series: str,
        *,
        zmax: float = 4.0,
        alpha: float = 0.05,
        min_observations: int = 8,
        two_sided: bool = False,
        clear_ratio: float = 0.5,
        min_std: float = 1e-9,
        freeze_while_active: bool = True,
        **discipline: Any,
    ) -> None:
        super().__init__(name, series, **discipline)
        if zmax <= 0:
            raise ConfigurationError("zmax must be positive")
        if min_observations < 1:
            raise ConfigurationError("min_observations must be at least 1")
        if not 0.0 < clear_ratio <= 1.0:
            raise ConfigurationError("clear_ratio must be within (0, 1]")
        self.zmax = zmax
        self.min_observations = min_observations
        self.two_sided = two_sided
        self._clear_ratio = clear_ratio
        self._freeze = freeze_while_active
        self.baseline = DecayedMeanVar(alpha=alpha, min_std=min_std)

    def _describe_thresholds(self) -> dict[str, Any]:
        return {
            "zmax": self.zmax,
            "baseline_mean": round(self.baseline.mean, 9),
            "baseline_std": round(self.baseline.std, 9),
            "two_sided": self.two_sided,
        }

    def _breach(self, series, interval):
        value = series.get(self.series)
        if value is None:
            return None, False, 0.0, self.zmax, {}
        if self.baseline.count < self.min_observations:
            self.baseline.update(value)
            return None, False, value, self.zmax, {}
        z = self.baseline.zscore(value)
        score = abs(z) if self.two_sided else z
        breached = score >= self.zmax
        calm = score < self.zmax * self._clear_ratio
        if not (self._freeze and (self._active or breached)):
            self.baseline.update(value)
        return breached, calm, value, self.zmax, {
            "zscore": round(z, 3),
            "baseline_mean": round(self.baseline.mean, 9),
            "baseline_std": round(self.baseline.std, 9),
        }


class RateOfChangeRule(DetectorRule):
    """Per-second drift bound -- the slow-leak detector.

    Computes ``(value - previous) / interval`` each poll and breaches when
    the drift is at or beyond ``per_second`` for ``trigger_after``
    consecutive polls (debounce is what separates a leak from a blip --
    default 3).  ``direction="above"`` catches growth (queue depth, open
    fds, bytes held); ``"below"`` catches collapse (hit ratio draining).
    """

    def __init__(
        self,
        name: str,
        series: str,
        *,
        per_second: float,
        direction: str = "above",
        clear_ratio: float = 0.5,
        trigger_after: int = 3,
        **discipline: Any,
    ) -> None:
        super().__init__(name, series, trigger_after=trigger_after, **discipline)
        if per_second <= 0:
            raise ConfigurationError("per_second must be positive")
        if direction not in ("above", "below"):
            raise ConfigurationError("direction must be 'above' or 'below'")
        if not 0.0 < clear_ratio <= 1.0:
            raise ConfigurationError("clear_ratio must be within (0, 1]")
        self.per_second = per_second
        self.direction = direction
        self._clear_ratio = clear_ratio
        self._previous: float | None = None

    def _describe_thresholds(self) -> dict[str, Any]:
        return {"per_second": self.per_second, "direction": self.direction}

    def _breach(self, series, interval):
        value = series.get(self.series)
        if value is None:
            return None, False, 0.0, self.per_second, {}
        previous, self._previous = self._previous, value
        if previous is None or not interval or interval <= 0:
            return None, False, value, self.per_second, {}
        rate = (value - previous) / interval
        signed = rate if self.direction == "above" else -rate
        breached = signed >= self.per_second
        calm = signed < self.per_second * self._clear_ratio
        return breached, calm, value, self.per_second, {
            "rate_per_second": round(rate, 6)
        }


class ErrorRatioRule(DetectorRule):
    """Errors over total for the poll interval, with a volume guard.

    Watches two delta series (per-interval increments, which the engine
    derives for every counter as ``<name>.delta``): breach when
    ``errors / total >= ratio`` and ``total >= min_total``.  Quiet
    intervals (under ``min_total`` events) hold state -- silence is not
    health, but it is not an error burst either.
    """

    def __init__(
        self,
        name: str,
        errors_series: str,
        total_series: str,
        *,
        ratio: float = 0.5,
        min_total: float = 5.0,
        clear_ratio: float = 0.5,
        **discipline: Any,
    ) -> None:
        super().__init__(name, errors_series, **discipline)
        if not 0.0 < ratio <= 1.0:
            raise ConfigurationError("ratio must be within (0, 1]")
        if min_total <= 0:
            raise ConfigurationError("min_total must be positive")
        if not 0.0 < clear_ratio <= 1.0:
            raise ConfigurationError("clear_ratio must be within (0, 1]")
        self.errors_series = errors_series
        self.total_series = total_series
        self.ratio = ratio
        self.min_total = min_total
        self._clear_ratio = clear_ratio

    def _describe_thresholds(self) -> dict[str, Any]:
        return {
            "ratio": self.ratio,
            "total_series": self.total_series,
            "min_total": self.min_total,
        }

    def _breach(self, series, interval):
        errors = series.get(self.errors_series)
        total = series.get(self.total_series)
        if errors is None or total is None:
            return None, False, 0.0, self.ratio, {}
        if total < self.min_total:
            return None, False, 0.0, self.ratio, {}
        observed = errors / total
        breached = observed >= self.ratio
        calm = observed < self.ratio * self._clear_ratio
        return breached, calm, observed, self.ratio, {
            "errors": errors,
            "total": total,
        }
