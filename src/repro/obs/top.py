"""``repro top`` -- a live, curses-free terminal dashboard.

The operator-facing end of the telemetry plane: poll a metrics source
(either the HTTP exporter's ``/metrics.json`` endpoint or an in-process
:class:`~repro.obs.metrics.MetricsRegistry`), diff consecutive snapshots
to get per-operation *rates*, estimate tail latencies from the histogram
buckets, and redraw one plain-text screen per refresh.  No curses, no
third-party TUI -- every frame is a string, which makes the dashboard
trivially testable and usable over the dumbest of terminals
(``watch``-style redraw via ANSI clear).

What a frame shows:

* **operations** -- every ``*.seconds`` histogram as a row: cumulative
  count, ops/s since the previous frame, mean / p50 / p99 / max latency;
* **hit ratios** -- every ``<prefix>.hits`` / ``<prefix>.misses`` counter
  pair as a ratio (caches, and the enhanced client's ``client.cache_*``);
* **gauges** -- current levels (live connections, pool occupancy...);
* **anomalies** -- the anomaly engine's active detections (rule, series,
  value vs threshold, engaged actions), when the exporter serves
  ``/anomalies.json``; older exporters without the endpoint simply have
  no panel;
* **slow operations** -- the tail of the event log's ``slow_op`` records,
  newest last, with the root span name and duration.
"""

from __future__ import annotations

import json
import math
import time
import urllib.request
from typing import Any, Iterable

from .metrics import MetricsRegistry, snapshot_delta

__all__ = [
    "normalize_buckets",
    "percentile_from_buckets",
    "scrape_metrics_json",
    "scrape_events_json",
    "scrape_anomalies_json",
    "Dashboard",
    "CLEAR_SCREEN",
]

#: ANSI "clear screen, cursor home" -- the whole redraw machinery.
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def normalize_buckets(buckets: Iterable[Iterable[Any]]) -> list[tuple[float, int]]:
    """Bucket pairs from either a live snapshot (``math.inf`` bound) or the
    JSON export (``"+inf"`` label) as uniform ``(float, int)`` tuples."""
    normalized: list[tuple[float, int]] = []
    for bound, cumulative in buckets:
        if isinstance(bound, str):
            bound = math.inf if bound.lstrip("+") == "inf" else float(bound)
        normalized.append((float(bound), int(cumulative)))
    return normalized


def percentile_from_buckets(
    buckets: list[tuple[float, int]], fraction: float, *, maximum: float | None = None
) -> float:
    """Bucket-resolution percentile estimate from cumulative ``le`` pairs
    (the same estimate :meth:`~repro.obs.metrics.Histogram.percentile`
    computes, but from exported plain data)."""
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if not total:
        return 0.0
    rank = max(1, math.ceil(fraction * total))
    for bound, cumulative in buckets:
        if cumulative >= rank:
            if maximum is not None:
                return min(bound, maximum)
            return bound
    return buckets[-1][0]  # pragma: no cover - cumulative counts reach total


# ----------------------------------------------------------------------
# Scraping
# ----------------------------------------------------------------------
def scrape_metrics_json(url: str, *, timeout: float = 5.0) -> dict[str, Any]:
    """GET ``<url>/metrics.json`` and return the decoded snapshot."""
    with urllib.request.urlopen(url.rstrip("/") + "/metrics.json", timeout=timeout) as reply:
        return json.loads(reply.read().decode("utf-8"))


def scrape_events_json(
    url: str, *, kind: str | None = "slow_op", count: int = 8, timeout: float = 5.0
) -> list[dict[str, Any]]:
    """GET ``<url>/events.json``; an exporter without an event log (404)
    simply yields no events rather than an error."""
    query = f"?count={count}" + (f"&kind={kind}" if kind else "")
    try:
        with urllib.request.urlopen(
            url.rstrip("/") + "/events.json" + query, timeout=timeout
        ) as reply:
            return json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        if exc.code == 404:
            return []
        raise


def scrape_anomalies_json(
    url: str, *, timeout: float = 5.0
) -> dict[str, Any] | None:
    """GET ``<url>/anomalies.json``; ``None`` when the exporter has no
    anomaly engine attached (404) or predates the endpoint entirely --
    the dashboard simply omits the panel instead of erroring."""
    try:
        with urllib.request.urlopen(
            url.rstrip("/") + "/anomalies.json", timeout=timeout
        ) as reply:
            return json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        if exc.code == 404:
            return None
        raise


def snapshot_registry(registry: MetricsRegistry) -> dict[str, Any]:
    """An in-process registry in the same shape ``/metrics.json`` serves."""
    return registry.snapshot()


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _table(rows: list[tuple[str, ...]]) -> list[str]:
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    return [
        "  " + "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]


class Dashboard:
    """Stateful frame renderer: diffs consecutive snapshots for rates."""

    def __init__(self, *, clock=time.monotonic) -> None:
        self._clock = clock
        self._previous_snapshot: dict[str, Any] | None = None
        self._previous_at: float | None = None

    # ------------------------------------------------------------------
    def render(
        self,
        snapshot: dict[str, Any],
        slow_ops: list[dict[str, Any]] | None = None,
        *,
        title: str = "repro top",
        anomalies: dict[str, Any] | None = None,
    ) -> str:
        """One frame of the dashboard for *snapshot* (a registry snapshot,
        live or scraped); rates are computed against the previous call.
        *anomalies* is an engine status dict (``/anomalies.json``); ``None``
        -- an exporter without the endpoint -- omits the panel."""
        now = self._clock()
        interval = None if self._previous_at is None else max(1e-9, now - self._previous_at)
        delta = snapshot_delta(self._previous_snapshot, snapshot)
        lines: list[str] = [title]
        lines.extend(self._render_operations(snapshot, delta, interval))
        lines.extend(self._render_hit_ratios(snapshot))
        lines.extend(self._render_gauges(snapshot))
        lines.extend(self._render_anomalies(anomalies))
        lines.extend(self._render_slow_ops(slow_ops or []))
        self._previous_at = now
        self._previous_snapshot = snapshot
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _render_operations(
        self,
        snapshot: dict[str, Any],
        delta: dict[str, Any],
        interval: float | None,
    ) -> list[str]:
        histograms = {
            name: data
            for name, data in snapshot.get("histograms", {}).items()
            if name.endswith(".seconds")
        }
        if not histograms:
            return ["", "operations: (none recorded)"]
        first_frame = self._previous_snapshot is None
        delta_histograms = delta.get("histograms", {})
        rows = [("operation", "count", "ops/s", "mean ms", "p50 ms", "p99 ms", "max ms")]
        for name in sorted(histograms):
            data = histograms[name]
            count = int(data["count"])
            if interval is None or first_frame:
                rate = "-"
            else:
                increment = delta_histograms.get(name, {}).get("count", 0)
                rate = f"{max(0, increment) / interval:.1f}"
            buckets = normalize_buckets(data.get("buckets", []))
            maximum = float(data.get("max", 0.0))
            rows.append(
                (
                    name[: -len(".seconds")],
                    str(count),
                    rate,
                    f"{float(data['mean']) * 1e3:.3f}",
                    f"{percentile_from_buckets(buckets, 0.50, maximum=maximum) * 1e3:.3f}",
                    f"{percentile_from_buckets(buckets, 0.99, maximum=maximum) * 1e3:.3f}",
                    f"{maximum * 1e3:.3f}",
                )
            )
        return ["", "operations:"] + _table(rows)

    def _render_hit_ratios(self, snapshot: dict[str, Any]) -> list[str]:
        counters = snapshot.get("counters", {})
        pairs: list[tuple[str, int, int]] = []
        for name, hits in counters.items():
            if name.endswith(".hits"):
                misses = counters.get(name[: -len(".hits")] + ".misses")
                if misses is not None:
                    pairs.append((name[: -len(".hits")], int(hits), int(misses)))
        if "client.cache_hits" in counters and "client.cache_misses" in counters:
            pairs.append(
                ("client.cache", int(counters["client.cache_hits"]),
                 int(counters["client.cache_misses"]))
            )
        if not pairs:
            return []
        rows = [("cache", "hits", "misses", "hit ratio")]
        for name, hits, misses in sorted(pairs):
            total = hits + misses
            ratio = f"{hits / total:.1%}" if total else "-"
            rows.append((name, str(hits), str(misses), ratio))
        return ["", "hit ratios:"] + _table(rows)

    def _render_gauges(self, snapshot: dict[str, Any]) -> list[str]:
        gauges = snapshot.get("gauges", {})
        if not gauges:
            return []
        rows = [("gauge", "value")]
        for name in sorted(gauges):
            rows.append((name, f"{float(gauges[name]):g}"))
        return ["", "gauges:"] + _table(rows)

    def _render_anomalies(self, anomalies: dict[str, Any] | None) -> list[str]:
        if anomalies is None:
            return []
        detected = int(anomalies.get("detected", 0))
        cleared = int(anomalies.get("cleared", 0))
        active = anomalies.get("active", [])
        header = f"anomalies (detected {detected}, cleared {cleared}):"
        if not active:
            return ["", header + " none active"]
        rows = [("rule", "series", "value", "threshold", "actions")]
        for record in active:
            actions = ",".join(record.get("actions", [])) or "-"
            rows.append(
                (
                    str(record.get("rule", "?")),
                    str(record.get("series", "?")),
                    f"{float(record.get('value', 0.0)):.6g}",
                    f"{float(record.get('threshold', 0.0)):.6g}",
                    actions,
                )
            )
        return ["", header] + _table(rows)

    def _render_slow_ops(self, slow_ops: list[dict[str, Any]]) -> list[str]:
        if not slow_ops:
            return []
        rows = [("slow op", "ms", "threshold ms", "stages")]
        for record in slow_ops:
            trace = record.get("trace") or {}
            children = trace.get("children", []) if isinstance(trace, dict) else []
            stages = ">".join(child.get("name", "?") for child in children[:4]) or "-"
            rows.append(
                (
                    str(record.get("op", "?")),
                    f"{float(record.get('seconds', 0.0)) * 1e3:.2f}",
                    f"{float(record.get('threshold', 0.0)) * 1e3:.2f}",
                    stages,
                )
            )
        return ["", "slow operations (newest last):"] + _table(rows)
