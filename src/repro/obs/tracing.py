"""Lightweight tracing: nested spans over one request.

Where metrics aggregate (how slow are gets *on average*), spans attribute
(where did *this* get spend its time).  A DSCL read through a cache,
compression, and encryption produces a tree like::

    dscl.get  1.900 ms  [key='user:42']
      cache.lookup  0.011 ms
      store.get  1.780 ms
        pipeline.decrypt  0.190 ms
        pipeline.decompress  0.240 ms
        pipeline.deserialize  0.031 ms

which is exactly the per-stage breakdown the paper's Figures 11-21 reason
about, produced per request instead of per benchmark run.

Propagation uses a :mod:`contextvars` context variable: a span opened while
another span of the *same tracer* is active becomes its child, with no
explicit parent passing through the call stack.  This follows async tasks
but (like most tracers) does **not** cross thread-pool boundaries -- a span
opened inside a :class:`~repro.udsm.pool.ThreadPool` job starts a new trace.

Finished *root* spans land in a bounded :class:`TraceCollector`; nothing is
kept per-span beyond what the application opened, so tracing is safe to
leave on in long-lived processes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Callable, Iterator

__all__ = ["Span", "SpanEvent", "Tracer", "TraceCollector"]

#: The active span of the *current* logical context (shared by all tracers;
#: each tracer only adopts parents it created itself).
_CURRENT: ContextVar["Span | None"] = ContextVar("repro_obs_current_span", default=None)

DEFAULT_MAX_TRACES = 64


class SpanEvent:
    """A point-in-time annotation on a span (a retry, an eviction...)."""

    __slots__ = ("name", "at", "attributes")

    def __init__(self, name: str, at: float, attributes: dict[str, Any]) -> None:
        self.name = name
        self.at = at  # perf_counter timestamp, comparable to span start/end
        self.attributes = attributes

    def __repr__(self) -> str:
        return f"SpanEvent({self.name!r}, {self.attributes!r})"


class Span:
    """One timed stage of a request; also its own context manager.

    Entering the span makes it the current span (child spans nest under
    it); exiting records the end time, captures any exception as an
    ``exception`` event, and -- for root spans -- hands the finished tree to
    the tracer's collector.
    """

    __slots__ = (
        "name",
        "attributes",
        "events",
        "children",
        "parent",
        "start_time",
        "end_time",
        "error",
        "_tracer",
        "_token",
    )

    def __init__(
        self,
        name: str,
        *,
        tracer: "Tracer | None" = None,
        attributes: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.attributes = attributes if attributes is not None else {}
        self.events: list[SpanEvent] = []
        self.children: list[Span] = []
        self.parent: Span | None = None
        self.start_time = 0.0
        self.end_time = 0.0
        self.error: str | None = None
        self._tracer = tracer
        self._token = None

    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Seconds from enter to exit (0.0 while still open)."""
        return self.end_time - self.start_time if self.end_time else 0.0

    @property
    def finished(self) -> bool:
        return self.end_time != 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: Any) -> SpanEvent:
        event = SpanEvent(name, time.perf_counter(), attributes)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        current = _CURRENT.get()
        if current is not None and self._tracer is not None and current._tracer is self._tracer:
            self.parent = current
            current.children.append(self)
        self._token = _CURRENT.set(self)
        self.start_time = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_time = time.perf_counter()
        if exc_type is not None:
            self.error = exc_type.__name__
            self.add_event("exception", type=exc_type.__name__, message=str(exc))
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if self.parent is None and self._tracer is not None:
            self._tracer.collector.add(self)
        return False  # never swallow exceptions

    # ------------------------------------------------------------------
    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named *name* in this subtree, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def render(self) -> str:
        """Indented one-line-per-span tree with per-stage latency."""
        lines: list[str] = []
        self._render_into(lines, 0)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """The whole subtree as JSON-friendly plain data.

        Used by the ``/traces`` HTTP endpoint and as the ``trace`` exemplar
        attached to slow-operation events; attribute values that are not
        JSON types are ``repr()``-ed rather than dropped.
        """
        def scrub(value: Any) -> Any:
            if isinstance(value, (str, int, float, bool)) or value is None:
                return value
            return repr(value)

        data: dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration * 1e3, 3),
        }
        if self.attributes:
            data["attributes"] = {k: scrub(v) for k, v in self.attributes.items()}
        if self.error is not None:
            data["error"] = self.error
        if self.events:
            data["events"] = [
                {
                    "name": event.name,
                    "offset_ms": round((event.at - self.start_time) * 1e3, 3),
                    **{k: scrub(v) for k, v in event.attributes.items()},
                }
                for event in self.events
            ]
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data

    def _render_into(self, lines: list[str], depth: int) -> None:
        pad = "  " * depth
        line = f"{pad}{self.name}  {self.duration * 1e3:.3f} ms"
        if self.attributes:
            attrs = " ".join(f"{k}={v!r}" for k, v in self.attributes.items())
            line += f"  [{attrs}]"
        if self.error is not None:
            line += f"  !{self.error}"
        lines.append(line)
        for event in self.events:
            offset = (event.at - self.start_time) * 1e3
            attrs = " ".join(f"{k}={v!r}" for k, v in event.attributes.items())
            lines.append(f"{pad}  @ {event.name} +{offset:.3f} ms" + (f"  [{attrs}]" if attrs else ""))
        for child in self.children:
            child._render_into(lines, depth + 1)

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration={self.duration * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


class TraceCollector:
    """Bounded in-memory sink for finished root spans (newest kept).

    The bound means old traces are *dropped*, which used to be silent; the
    collector now counts every drop (:attr:`dropped`), can mirror the count
    into a registry counter (``obs.traces.dropped``, see
    :meth:`bind_dropped_counter`), and can notify listeners of every
    finished root span -- the hook the slow-operation log hangs off.
    """

    def __init__(self, max_traces: int = DEFAULT_MAX_TRACES) -> None:
        self._lock = threading.Lock()
        self._roots: deque[Span] = deque(maxlen=max_traces)
        self._dropped = 0
        self._dropped_counter = None
        self._dropped_counter_factory: Callable[[], Any] | None = None
        self._listeners: list[Callable[[Span], None]] = []

    def add(self, span: Span) -> None:
        with self._lock:
            if self._roots.maxlen is not None and len(self._roots) == self._roots.maxlen:
                self._dropped += 1
                counter = self._resolve_dropped_counter_locked()
            else:
                counter = None
            self._roots.append(span)
            listeners = list(self._listeners)
        if counter is not None:
            counter.inc()
        for listener in listeners:
            listener(span)

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Finished traces discarded because the bound was hit."""
        with self._lock:
            return self._dropped

    def _resolve_dropped_counter_locked(self):
        """Materialise the bound counter on first use (caller holds lock)."""
        if self._dropped_counter is None and self._dropped_counter_factory is not None:
            self._dropped_counter = self._dropped_counter_factory()
        return self._dropped_counter

    def bind_dropped_counter(self, factory: "Callable[[], Any]") -> None:
        """Mirror drops into a registry :class:`~repro.obs.metrics.Counter`
        such as ``obs.traces.dropped``.

        *factory* is a zero-argument callable returning the counter; it is
        invoked lazily, on the first actual drop, so binding never touches
        the registry for collectors that stay within their bound.
        """
        with self._lock:
            self._dropped_counter = None
            self._dropped_counter_factory = factory
            backlog = self._dropped
            counter = self._resolve_dropped_counter_locked() if backlog else None
        if counter is not None and counter.value < backlog:
            counter.inc(backlog - counter.value)

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        """Call *listener(span)* for every finished root span added.

        Listeners run on the thread that finished the span; keep them fast
        and never let them raise.
        """
        with self._lock:
            self._listeners.append(listener)

    # ------------------------------------------------------------------
    def roots(self) -> list[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    def last(self) -> Span | None:
        """The most recently finished trace, or ``None``."""
        with self._lock:
            return self._roots[-1] if self._roots else None

    def clear(self) -> None:
        """Drop retained traces (the ``dropped`` count is preserved: it
        describes lifetime loss, not current occupancy)."""
        with self._lock:
            self._roots.clear()

    def render(self) -> str:
        """Every retained trace, rendered as indented trees."""
        roots = self.roots()
        if not roots:
            text = "(no traces recorded)"
        else:
            text = "\n\n".join(root.render() for root in roots)
        dropped = self.dropped
        if dropped:
            text += f"\n\n({dropped} older trace{'s' if dropped != 1 else ''} dropped at the {self._roots.maxlen}-trace bound)"
        return text

    def __len__(self) -> int:
        return len(self._roots)

    def __repr__(self) -> str:
        return f"<TraceCollector traces={len(self)}>"


class Tracer:
    """Span factory bound to one collector.

    ``tracer.span("store.get", key=key)`` returns a context manager; spans
    opened while another of this tracer's spans is active nest under it.
    Two tracers coexisting in one process never adopt each other's spans.
    """

    def __init__(self, collector: TraceCollector | None = None) -> None:
        self.collector = collector if collector is not None else TraceCollector()

    def span(self, name: str, **attributes: Any) -> Span:
        return Span(name, tracer=self, attributes=attributes)

    def current(self) -> Span | None:
        """This tracer's active span in the current context, if any."""
        span = _CURRENT.get()
        if span is not None and span._tracer is self:
            return span
        return None

    def __repr__(self) -> str:
        return f"<Tracer collector={self.collector!r}>"
