"""Topology-aware sharded store serving with smart clients.

One key-value namespace spanning many shard servers, with the routing
intelligence pushed into the *client* -- the paper's thesis (enhance the
data store from the client side) applied to horizontal scale:

* :class:`ClusterTopology` / :class:`ShardInfo` -- the versioned shard map
  (consistent-hash ring + monotonic epoch) every participant shares;
* :class:`ClusterCoordinator` -- boots shard servers, adds/removes shards,
  and live-rebalances only the moved key ranges;
* :class:`ClusterStoreClient` -- a :class:`~repro.kv.interface.KeyValueStore`
  with Hot Rod-style intelligence levels: L1 proxies through any node,
  L2 subscribes to the topology, L3 hash-routes every operation to the
  owning shard and converges on membership changes via piggybacked epochs
  and ``-MOVED`` redirects, without reconnecting;
* :mod:`~repro.cluster.rebalancer` -- the no-downtime key-movement passes
  built on the ``repro migrate`` machinery.

Start at ``docs/cluster.md``; the wire grammar is in ``docs/protocol.md``.
"""

from .client import ClusterStoreClient
from .coordinator import ClusterCoordinator
from .rebalancer import RebalanceReport, copy_moved_keys, moved_pairs, purge_stale_keys, rebalance
from .topology import ClusterTopology, ShardInfo

__all__ = [
    "ClusterTopology",
    "ShardInfo",
    "ClusterCoordinator",
    "ClusterStoreClient",
    "RebalanceReport",
    "rebalance",
    "moved_pairs",
    "copy_moved_keys",
    "purge_stale_keys",
]
