"""Versioned cluster topology: a shard map plus a monotonic epoch.

A :class:`ClusterTopology` is the single piece of shared state that makes
"smart clients" possible: it names every shard, gives each a TCP address,
and places them on a consistent-hash ring (reusing
:class:`~repro.caching.sharded.HashRing`, so cache sharding and store
sharding agree on placement math).  The **epoch** is a monotonically
increasing version number: every membership change produces a *new*
topology with ``epoch + 1``, and servers piggyback their current epoch on
responses so clients can detect staleness without polling (see
``docs/cluster.md`` and the ``TOPOLOGY``/``CEPOCH`` commands in
``docs/protocol.md``).

Topologies are immutable value objects: :meth:`with_shard` and
:meth:`without_shard` return new instances.  They serialize to compact
JSON for the ``TOPOLOGY`` wire command (:meth:`encode` /
:meth:`decode`), so any client can bootstrap its routing table from any
member with one round trip.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..caching.sharded import HashRing
from ..errors import ConfigurationError, ProtocolError

__all__ = ["ShardInfo", "ClusterTopology"]


@dataclass(frozen=True)
class ShardInfo:
    """One shard's identity and address."""

    name: str
    host: str
    port: int

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name}@{self.host}:{self.port}"


class ClusterTopology:
    """Immutable shard map + epoch over a consistent-hash ring."""

    def __init__(
        self,
        shards: Iterable[ShardInfo],
        *,
        epoch: int = 1,
        replicas: int = 64,
    ) -> None:
        """Build a topology from *shards*.

        :param epoch: the topology version; successors must be strictly
            greater (``with_shard``/``without_shard`` bump it for you).
        :param replicas: virtual nodes per shard on the hash ring.  Every
            participant (servers and clients) must use the same value or
            they will disagree on placement.
        """
        shard_list = list(shards)
        if epoch < 1:
            raise ConfigurationError("topology epoch must be >= 1")
        names = [shard.name for shard in shard_list]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate shard names in topology: {names}")
        self._shards: dict[str, ShardInfo] = {s.name: s for s in shard_list}
        self._epoch = epoch
        self._replicas = replicas
        self._ring = HashRing(replicas=replicas)
        for name in self._shards:
            self._ring.add(name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def replicas(self) -> int:
        return self._replicas

    @property
    def members(self) -> tuple[str, ...]:
        """Shard names, sorted (stable for display and iteration)."""
        return tuple(sorted(self._shards))

    @property
    def shards(self) -> tuple[ShardInfo, ...]:
        return tuple(self._shards[name] for name in sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    def shard(self, name: str) -> ShardInfo:
        try:
            return self._shards[name]
        except KeyError:
            raise ConfigurationError(f"no shard named {name!r} in topology") from None

    def address(self, name: str) -> tuple[str, int]:
        return self.shard(name).address

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The shard name owning *key* under this topology."""
        return self._ring.locate(key)

    def owner_shard(self, key: str) -> ShardInfo:
        return self._shards[self._ring.locate(key)]

    # ------------------------------------------------------------------
    # Evolution (always returns a NEW topology with epoch + 1)
    # ------------------------------------------------------------------
    def with_shard(self, name: str, host: str, port: int) -> "ClusterTopology":
        """Scale out: a successor topology containing a new shard."""
        if name in self._shards:
            raise ConfigurationError(f"shard {name!r} already in topology")
        return ClusterTopology(
            list(self._shards.values()) + [ShardInfo(name, host, port)],
            epoch=self._epoch + 1,
            replicas=self._replicas,
        )

    def without_shard(self, name: str) -> "ClusterTopology":
        """Scale in: a successor topology without *name*."""
        if name not in self._shards:
            raise ConfigurationError(f"no shard named {name!r} in topology")
        if len(self._shards) == 1:
            raise ConfigurationError("cannot remove the last shard of a topology")
        return ClusterTopology(
            [s for s in self._shards.values() if s.name != name],
            epoch=self._epoch + 1,
            replicas=self._replicas,
        )

    # ------------------------------------------------------------------
    # Wire codec (the TOPOLOGY command payload)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data rendering (JSON-safe; also used by status surfaces)."""
        return {
            "epoch": self._epoch,
            "replicas": self._replicas,
            "shards": [
                {"name": s.name, "host": s.host, "port": s.port}
                for s in self.shards
            ],
        }

    def encode(self) -> bytes:
        """Compact JSON bytes for the ``TOPOLOGY`` reply."""
        return json.dumps(self.to_dict(), separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_dict(cls, document: Mapping) -> "ClusterTopology":
        try:
            shards = [
                ShardInfo(str(s["name"]), str(s["host"]), int(s["port"]))
                for s in document["shards"]
            ]
            return cls(
                shards,
                epoch=int(document["epoch"]),
                replicas=int(document.get("replicas", 64)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed topology document: {exc}") from exc

    @classmethod
    def decode(cls, payload: bytes) -> "ClusterTopology":
        """Parse a ``TOPOLOGY`` reply; raises ProtocolError when malformed."""
        try:
            document = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"malformed topology payload: {exc}") from exc
        if not isinstance(document, dict):
            raise ProtocolError("topology payload must be a JSON object")
        return cls.from_dict(document)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterTopology):
            return NotImplemented
        return (
            self._epoch == other._epoch
            and self._replicas == other._replicas
            and self._shards == other._shards
        )

    def __repr__(self) -> str:
        members = ", ".join(str(s) for s in self.shards)
        return f"<ClusterTopology epoch={self._epoch} [{members}]>"
