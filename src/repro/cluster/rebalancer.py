"""Key-range rebalancing between two topology versions.

When a shard joins or leaves, consistent hashing guarantees only ~K/N of
the K keys change owner -- the job here is to move exactly those keys,
without stopping traffic, reusing the UDSM migration machinery
(:func:`repro.tools.migration.copy_store`, the same batched copy loop
behind ``repro migrate``).

The live-rebalance choreography (driven by
:class:`~repro.cluster.coordinator.ClusterCoordinator`) is:

1. **First copy pass** -- with the *old* topology still serving, copy every
   moved key to its new owner (``overwrite=True``; the destination is not
   yet authoritative for them, so nothing can be clobbered).
2. **Install** -- flip every server to the new topology (the *install*
   callback).  From this instant new traffic routes to the new owners.
3. **Catch-up pass** -- copy keys that landed on the old owners during
   pass 1, with ``overwrite=False``: a key the destination already has was
   either copied in pass 1 or *written there post-install* -- and the
   post-install write is the newer one, so it must win.
4. **Purge** -- delete from surviving shards the keys they no longer own.

Consistency note (documented, not hidden): writes are never blocked, so a
key **overwritten on its old owner during pass 1** can keep its pre-pass-1
value after the move -- the same non-atomic resharding window Redis
Cluster accepts.  Keys written once (the common ingest shape) are never
lost, which is what the ``make check-cluster`` gate asserts under live
mid-rebalance traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Mapping

from ..kv.interface import KeyValueStore
from ..tools.migration import copy_store
from .topology import ClusterTopology

__all__ = ["RebalanceReport", "moved_pairs", "copy_moved_keys", "purge_stale_keys", "rebalance"]


@dataclass
class RebalanceReport:
    """Outcome of one live rebalance between two topology epochs."""

    epoch_from: int
    epoch_to: int
    #: Keys copied by the first pass (the bulk move).
    moved: int = 0
    #: Keys copied by the catch-up pass (written mid-move).
    catch_up: int = 0
    #: Stale copies deleted from the shards that lost the ranges.
    purged: int = 0
    elapsed_seconds: float = 0.0
    #: Per-direction copy counts, ``"src->dst" -> keys`` (both passes).
    pairs: dict[str, int] = field(default_factory=dict)

    @property
    def total_copied(self) -> int:
        return self.moved + self.catch_up

    def __str__(self) -> str:
        return (
            f"epoch {self.epoch_from}->{self.epoch_to}: moved {self.moved} keys "
            f"(+{self.catch_up} catch-up), purged {self.purged} stale copies "
            f"in {self.elapsed_seconds:.2f}s"
        )


def moved_pairs(old: ClusterTopology, new: ClusterTopology) -> list[tuple[str, str]]:
    """The (source, destination) shard pairs keys can move along.

    Consistent hashing bounds the traffic matrix: adding members pulls keys
    only *toward* the added members, and removing members pushes the
    removed members' keys only *toward* survivors -- so instead of scanning
    all |old| x |new| combinations, only these pairs need a copy pass.
    """
    added = [name for name in new.members if name not in old]
    removed = [name for name in old.members if name not in new]
    survivors = [name for name in old.members if name in new]
    pairs = [(src, dst) for src in survivors for dst in added]
    pairs += [(src, dst) for src in removed for dst in new.members]
    return pairs


def copy_moved_keys(
    stores: Mapping[str, KeyValueStore],
    old: ClusterTopology,
    new: ClusterTopology,
    *,
    batch_size: int = 100,
    overwrite: bool = True,
) -> dict[tuple[str, str], int]:
    """One copy pass: stream every moved key from its old owner to its new one.

    Returns copied counts per (source, destination) pair.
    """
    copied: dict[tuple[str, str], int] = {}
    for src, dst in moved_pairs(old, new):
        source, destination = stores.get(src), stores.get(dst)
        if source is None or destination is None:
            continue
        report = copy_store(
            source,
            destination,
            batch_size=batch_size,
            key_filter=lambda key, dst=dst: new.owner(key) == dst,
            overwrite=overwrite,
        )
        if report.copied:
            copied[(src, dst)] = report.copied
    return copied


def purge_stale_keys(
    stores: Mapping[str, KeyValueStore], topology: ClusterTopology
) -> int:
    """Delete from each surviving member the keys it no longer owns."""
    purged = 0
    for name in topology.members:
        store = stores.get(name)
        if store is None:
            continue
        stale = [key for key in list(store.keys()) if topology.owner(key) != name]
        if stale:
            purged += store.delete_many(stale)
    return purged


def rebalance(
    stores: Mapping[str, KeyValueStore],
    old: ClusterTopology,
    new: ClusterTopology,
    install: Callable[[], None],
    *,
    batch_size: int = 100,
) -> RebalanceReport:
    """Move the changed key ranges from *old* to *new* without stopping traffic.

    *install* is called between the bulk pass and the catch-up pass; it must
    flip every server (and the coordinator's own view) to *new*.  See the
    module docstring for the choreography and its consistency window.
    """
    report = RebalanceReport(epoch_from=old.epoch, epoch_to=new.epoch)
    start = perf_counter()
    first = copy_moved_keys(stores, old, new, batch_size=batch_size, overwrite=True)
    install()
    catch_up = copy_moved_keys(stores, old, new, batch_size=batch_size, overwrite=False)
    survivors = {name: stores[name] for name in new.members if name in stores}
    report.purged = purge_stale_keys(survivors, new)
    report.moved = sum(first.values())
    report.catch_up = sum(catch_up.values())
    for pairs in (first, catch_up):
        for (src, dst), count in pairs.items():
            label = f"{src}->{dst}"
            report.pairs[label] = report.pairs.get(label, 0) + count
    report.elapsed_seconds = perf_counter() - start
    return report
