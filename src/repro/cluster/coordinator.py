"""Cluster coordinator: boots shard servers and drives membership changes.

A :class:`ClusterCoordinator` owns a set of in-process shard servers (one
:class:`~repro.net.server.StoreServer` or
:class:`~repro.net.aio.AsyncStoreServer` per member, each hosting a caller-
supplied :class:`~repro.kv.interface.KeyValueStore`), the authoritative
:class:`~repro.cluster.topology.ClusterTopology`, and the live-rebalance
choreography (:mod:`repro.cluster.rebalancer`).

``add_shard``/``remove_shard`` bump the topology epoch, move only the
affected key ranges while traffic keeps flowing, and install the new map
on every server -- smart clients then converge via piggybacked epochs and
``-MOVED`` redirects without reconnecting (``docs/cluster.md``).

This is deliberately a *single-process* control plane: the point of this
subsystem is client-side enhancement (the paper's thesis), so the
coordinator stays simple -- one process owns membership, the data plane
(servers + clients) does all the distributed work over real sockets.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..obs import Observability, resolve_obs
from .rebalancer import RebalanceReport, rebalance
from .topology import ClusterTopology, ShardInfo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..kv.interface import KeyValueStore
    from .client import ClusterStoreClient

__all__ = ["ClusterCoordinator"]

_ENGINES = ("threaded", "async")


class ClusterCoordinator:
    """Owns shard servers, the topology, and membership transitions.

    :param engine: serving engine per shard, ``"threaded"`` or ``"async"``
        (same wire protocol either way; see ``docs/serving.md``).
    :param replicas: virtual nodes per shard on the hash ring.
    :param batch_size: keys per batch while rebalancing
        (:func:`repro.tools.migration.copy_store`).
    :param obs: observability bundle for ``cluster.*`` metrics and the
        ``topology_changed`` / ``rebalance`` events.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        engine: str = "threaded",
        replicas: int = 64,
        batch_size: int = 100,
        obs: Observability | None = None,
    ) -> None:
        if engine not in _ENGINES:
            raise ConfigurationError(f"unknown cluster engine {engine!r}; use one of {_ENGINES}")
        self._host = host
        self._engine = engine
        self._replicas = replicas
        self._batch_size = batch_size
        self._obs = resolve_obs(obs)
        self._servers: dict[str, object] = {}
        self._stores: dict[str, "KeyValueStore"] = {}
        self._topology: ClusterTopology | None = None
        self._lock = threading.RLock()
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def topology(self) -> ClusterTopology | None:
        return self._topology

    @property
    def epoch(self) -> int:
        topology = self._topology
        return 0 if topology is None else topology.epoch

    @property
    def shards(self) -> tuple[str, ...]:
        topology = self._topology
        return () if topology is None else topology.members

    @property
    def seeds(self) -> list[tuple[str, int]]:
        """Every member's address -- hand these to a client."""
        topology = self._topology
        if topology is None:
            return []
        return [topology.address(name) for name in topology.members]

    def store(self, name: str) -> "KeyValueStore":
        """The backing store of shard *name* (tests and verification)."""
        with self._lock:
            try:
                return self._stores[name]
            except KeyError:
                raise ConfigurationError(f"no shard named {name!r}") from None

    def status(self) -> dict:
        """Topology plus per-shard key counts (the ``repro cluster`` CLI)."""
        with self._lock:
            topology = self._topology
            shards = []
            if topology is not None:
                for name in topology.members:
                    host, port = topology.address(name)
                    store = self._stores.get(name)
                    shards.append(
                        {
                            "name": name,
                            "host": host,
                            "port": port,
                            "keys": 0 if store is None else store.size(),
                        }
                    )
            return {
                "epoch": 0 if topology is None else topology.epoch,
                "replicas": self._replicas,
                "engine": self._engine,
                "shards": shards,
                "total_keys": sum(entry["keys"] for entry in shards),
            }

    def client(self, *, level: int = 3, **kwargs) -> "ClusterStoreClient":
        """A :class:`~repro.cluster.client.ClusterStoreClient` for this cluster."""
        from .client import ClusterStoreClient

        return ClusterStoreClient(self.seeds, level=level, **kwargs)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _build_server(self, store: "KeyValueStore"):
        if self._engine == "async":
            from ..net.aio import AsyncStoreServer

            return AsyncStoreServer(store, self._host, 0)
        from ..net.server import StoreServer

        return StoreServer(store, self._host, 0)

    def add_shard(self, name: str, store: "KeyValueStore") -> RebalanceReport | None:
        """Scale out: boot a server for *store*, bump the epoch, pull only
        the moved key ranges over -- all while existing shards keep serving.

        Returns the rebalance report, or ``None`` for the founding shard.
        """
        with self._lock:
            if self._closed:
                raise ConfigurationError("coordinator is stopped")
            if name in self._servers:
                raise ConfigurationError(f"shard {name!r} already exists")
            server = self._build_server(store)
            host, port = server.start()
            self._servers[name] = server
            self._stores[name] = store
            if self._obs.enabled:
                self._obs.inc("cluster.shards_added")
            old = self._topology
            if old is None:
                founding = ClusterTopology(
                    [ShardInfo(name, host, port)], epoch=1, replicas=self._replicas
                )
                self._install(founding, added=name)
                return None
            new = old.with_shard(name, host, port)
            report = rebalance(
                self._stores,
                old,
                new,
                install=lambda: self._install(new, added=name),
                batch_size=self._batch_size,
            )
            self._emit_rebalance(report)
            return report

    def remove_shard(self, name: str) -> RebalanceReport:
        """Scale in: push *name*'s keys to the survivors, bump the epoch,
        then stop its server and clear its (caller-owned) store."""
        with self._lock:
            if self._closed:
                raise ConfigurationError("coordinator is stopped")
            old = self._topology
            if old is None or name not in old:
                raise ConfigurationError(f"no shard named {name!r} in the cluster")
            new = old.without_shard(name)  # refuses to empty the cluster
            report = rebalance(
                self._stores,
                old,
                new,
                install=lambda: self._install(new, removed=name),
                batch_size=self._batch_size,
            )
            # The leaving server kept serving through the catch-up pass
            # (redirecting stragglers); now it can go.
            server = self._servers.pop(name)
            store = self._stores.pop(name)
            server.stop()
            store.clear()  # its keys live on the survivors now
            if self._obs.enabled:
                self._obs.inc("cluster.shards_removed")
            self._emit_rebalance(report)
            return report

    def _install(self, topology: ClusterTopology, *, added: str | None = None, removed: str | None = None) -> None:
        """Flip every server (added shard first -- it must know the map
        before redirected traffic arrives) and the coordinator's own view."""
        order = sorted(self._servers, key=lambda name: 0 if name == added else 1)
        for name in order:
            self._servers[name].install_topology(topology, name)
        self._topology = topology
        if self._obs.enabled:
            self._obs.gauge("cluster.epoch").set(topology.epoch)
            self._obs.gauge("cluster.shards").set(len(topology.members))
            self._obs.emit(
                "topology_changed",
                epoch=topology.epoch,
                members=list(topology.members),
                added=added,
                removed=removed,
            )

    def _emit_rebalance(self, report: RebalanceReport) -> None:
        if not self._obs.enabled:
            return
        self._obs.inc("cluster.rebalance.moved_keys", report.total_copied)
        self._obs.inc("cluster.rebalance.purged_keys", report.purged)
        self._obs.histogram("cluster.rebalance.seconds").observe(report.elapsed_seconds)
        self._obs.emit(
            "rebalance",
            epoch_from=report.epoch_from,
            epoch_to=report.epoch_to,
            moved=report.moved,
            catch_up=report.catch_up,
            purged=report.purged,
            elapsed_seconds=round(report.elapsed_seconds, 6),
        )

    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop every shard server (stores stay with their owners).  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            servers = list(self._servers.values())
            self._servers.clear()
        for server in servers:
            server.stop()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
