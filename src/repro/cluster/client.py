"""Topology-aware cluster client with graded intelligence levels.

:class:`ClusterStoreClient` is a :class:`~repro.kv.interface.KeyValueStore`
whose namespace spans every shard of a cluster (see
:class:`~repro.cluster.topology.ClusterTopology`).  Following the way
Infinispan's Hot Rod protocol grades client smartness, it supports three
**intelligence levels**:

* **L1 -- proxy through any node.**  The client knows only its seed
  addresses and round-robins plain connections across them; the *server*
  forwards misrouted keys to their owners.  Every cross-shard key costs an
  extra server-to-server hop.
* **L2 -- topology-subscribed.**  The client bootstraps the shard map with
  one ``TOPOLOGY`` round trip and spreads load across *all* members, and
  its connections declare themselves (``CEPOCH``) so servers piggyback the
  current epoch whenever the client's view goes stale -- membership changes
  propagate without polling.  Keys are still server-routed.
* **L3 -- hash-routing.**  The client places every key exactly where the
  server would (same hash ring) and talks straight to the owner: zero
  forwarding hops on the hot path.  A stale routing table surfaces as a
  ``-MOVED`` redirect; the client follows it, refreshes the topology, and
  re-declares its epoch on existing connections -- **no reconnect, no
  restart** (the check gate asserts exactly this).

Wire-level mechanics (epoch headers, MOVED grammar) are specified in
``docs/protocol.md``; operational guidance lives in ``docs/cluster.md``.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Iterator, Mapping

from ..errors import ConfigurationError, ProtocolError, StoreConnectionError
from ..kv.interface import KeyValueStore, NotModified
from ..kv.remote import RemoteKeyValueStore
from ..net.client import CacheClient, ClusterAwareClient, parse_moved
from ..net.protocol import WireError
from ..obs import Observability, resolve_obs
from ..serialization import Serializer
from .topology import ClusterTopology

__all__ = ["ClusterStoreClient"]

Address = tuple[str, int]


class ClusterStoreClient(KeyValueStore):
    """One key-value namespace over many shards, routed client-side.

    :param seeds: ``(host, port)`` addresses of known cluster members; any
        one reachable seed suffices to bootstrap (levels 2/3 fetch the full
        shard map from it).
    :param level: client intelligence, 1..3 (see module docstring).
    :param topology: optionally skip the bootstrap fetch by supplying the
        topology directly (tests, benchmarks).
    :param max_redirects: how many ``-MOVED`` hops one operation may follow
        before giving up (each hop also refreshes the topology).
    :param coordinator: optional owning
        :class:`~repro.cluster.coordinator.ClusterCoordinator`; if given,
        :meth:`close` also stops it (used by ``udsm.cluster(...)``).
    """

    def __init__(
        self,
        seeds: Iterable[Address],
        *,
        level: int = 3,
        name: str = "cluster",
        serializer: Serializer | None = None,
        topology: ClusterTopology | None = None,
        connect_timeout: float = 5.0,
        operation_timeout: float = 30.0,
        max_redirects: int = 3,
        obs: Observability | None = None,
        coordinator=None,
    ) -> None:
        self._seeds = [(str(host), int(port)) for host, port in seeds]
        if not self._seeds:
            raise ConfigurationError("a cluster client needs at least one seed address")
        if level not in (1, 2, 3):
            raise ConfigurationError(f"cluster intelligence level must be 1..3, got {level}")
        if max_redirects < 1:
            raise ConfigurationError("max_redirects must be at least 1")
        self.name = name
        self._level = level
        self._serializer = serializer
        self._connect_timeout = connect_timeout
        self._operation_timeout = operation_timeout
        self._max_redirects = max_redirects
        self._obs = resolve_obs(obs)
        self._coordinator = coordinator
        self._lock = threading.Lock()
        self._conns: dict[Address, CacheClient] = {}
        self._stores: dict[Address, RemoteKeyValueStore] = {}
        self._rr = 0
        self._closed = False
        #: MOVED redirects followed (stale routing table moments).
        self.redirects = 0
        #: Topology refreshes performed (bootstrap included).
        self.refreshes = 0
        self._topology: ClusterTopology | None = topology
        if topology is not None:
            self._note_epoch(topology.epoch)
        elif self._level >= 2:
            self._refresh_topology()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def level(self) -> int:
        return self._level

    @property
    def topology(self) -> ClusterTopology | None:
        return self._topology

    @property
    def epoch(self) -> int | None:
        topology = self._topology
        return None if topology is None else topology.epoch

    def connection_reconnects(self) -> int:
        """Total transparent reconnects across every member connection.

        The check gate asserts this stays zero across a live topology
        change: L3 convergence must not cost a single reconnect.
        """
        with self._lock:
            return sum(conn.reconnects for conn in self._conns.values())

    # ------------------------------------------------------------------
    # Connections and routing
    # ------------------------------------------------------------------
    def _current_epoch(self) -> int:
        topology = self._topology
        return 0 if topology is None else topology.epoch

    def _connection(self, address: Address) -> CacheClient:
        with self._lock:
            if self._closed:
                raise StoreConnectionError("cluster client is closed")
            conn = self._conns.get(address)
            if conn is None:
                if self._level >= 2:
                    conn = ClusterAwareClient(
                        address[0],
                        address[1],
                        level=self._level,
                        epoch_source=self._current_epoch,
                        connect_timeout=self._connect_timeout,
                        operation_timeout=self._operation_timeout,
                    )
                else:
                    conn = CacheClient(
                        address[0],
                        address[1],
                        connect_timeout=self._connect_timeout,
                        operation_timeout=self._operation_timeout,
                    )
                self._conns[address] = conn
                self._stores[address] = RemoteKeyValueStore(
                    address[0],
                    address[1],
                    name=f"{self.name}@{address[0]}:{address[1]}",
                    serializer=self._serializer,
                    client=conn,
                )
            return conn

    def _store_at(self, address: Address) -> RemoteKeyValueStore:
        self._connection(address)
        with self._lock:
            return self._stores[address]

    def _drop_connection(self, address: Address) -> None:
        """Forget a dead member's connection so nothing retries through it."""
        with self._lock:
            conn = self._conns.pop(address, None)
            self._stores.pop(address, None)
        if conn is not None:
            conn.close()

    def _spread_addresses(self) -> list[Address]:
        """The address pool for non-hash-routed traffic."""
        topology = self._topology
        if topology is not None and self._level >= 2:
            return [topology.address(name) for name in topology.members]
        return list(self._seeds)

    def _any_address(self) -> Address:
        pool = self._spread_addresses()
        with self._lock:
            self._rr = (self._rr + 1) % len(pool)
            return pool[self._rr]

    def _address_for(self, key: str) -> Address:
        """Where one keyed operation goes, per the client's intelligence."""
        topology = self._topology
        if self._level >= 3 and topology is not None:
            if self._obs.enabled:
                self._obs.inc("cluster.client.routed")
            return topology.address(topology.owner(key))
        return self._any_address()

    # ------------------------------------------------------------------
    # Topology maintenance
    # ------------------------------------------------------------------
    def _refresh_topology(self, prefer: Address | None = None) -> ClusterTopology:
        """Fetch the shard map (TOPOLOGY) from the first member that answers."""
        candidates: list[Address] = []
        if prefer is not None:
            candidates.append(prefer)
        with self._lock:
            known = list(self._conns)
        for address in known + self._seeds:
            if address not in candidates:
                candidates.append(address)
        last_error: Exception | None = None
        for address in candidates:
            try:
                frame = self._connection(address).call(["TOPOLOGY"])
            except (StoreConnectionError, ProtocolError) as exc:
                last_error = exc
                self._drop_connection(address)
                continue
            if isinstance(frame, WireError):
                last_error = frame
                continue
            if not isinstance(frame, (bytes, bytearray)):
                last_error = ProtocolError("TOPOLOGY returned a non-bulk frame")
                continue
            return self._adopt(ClusterTopology.decode(bytes(frame)))
        raise StoreConnectionError(
            f"could not fetch the cluster topology from any member: {last_error}"
        ) from last_error

    def _adopt(self, topology: ClusterTopology) -> ClusterTopology:
        with self._lock:
            current = self._topology
            if current is not None and topology.epoch < current.epoch:
                return current  # a concurrent refresh already learned more
            self._topology = topology
            members = {topology.address(name) for name in topology.members}
            departed = [addr for addr in self._conns if addr not in members]
            conns = [conn for addr, conn in self._conns.items() if addr in members]
        for address in departed:
            self._drop_connection(address)
        self.refreshes += 1
        self._note_epoch(topology.epoch)
        # Re-declare the adopted epoch on live connections so servers stop
        # flagging them stale -- connections stay up, nothing reconnects.
        for conn in conns:
            if isinstance(conn, ClusterAwareClient):
                try:
                    conn.declare(topology.epoch)
                except (StoreConnectionError, WireError):
                    pass  # member gone or leaving; routing will route around it
        return topology

    def _note_epoch(self, epoch: int) -> None:
        if self._obs.enabled:
            self._obs.inc("cluster.client.refreshes")
            self._obs.gauge("cluster.client.epoch").set(epoch)
            self._obs.emit("topology_refreshed", name=self.name, epoch=epoch)

    def _observe_reply_epoch(self, address: Address) -> None:
        """React to a piggybacked epoch: newer than ours -> refresh now."""
        if self._level < 2:
            return
        with self._lock:
            conn = self._conns.get(address)
        topology = self._topology
        if conn is None or topology is None:
            return
        seen = conn.last_epoch
        if seen is not None and seen > topology.epoch:
            self._refresh_topology(prefer=address)

    def _note_redirect(self) -> None:
        self.redirects += 1
        if self._obs.enabled:
            self._obs.inc("cluster.client.redirects")

    # ------------------------------------------------------------------
    # The routed-operation engine
    # ------------------------------------------------------------------
    def _execute(self, key: str, op):
        """Run *op* against the store the routing table points at, following
        MOVED redirects (each one refreshes the topology) up to the bound.
        A dead member (shard removed, server gone) drops its connection and
        refreshes the topology instead of failing the operation."""
        address: Address | None = None
        last_error: Exception | None = None
        for _attempt in range(self._max_redirects + 1):
            target = self._address_for(key) if address is None else address
            address = None
            store = self._store_at(target)
            try:
                result = op(store)
            except WireError as err:
                moved = parse_moved(str(err))
                if moved is None:
                    raise
                self._note_redirect()
                last_error = err
                try:
                    self._refresh_topology(prefer=moved.address)
                except StoreConnectionError:
                    pass  # the redirect target itself is authoritative
                address = moved.address
                continue
            except StoreConnectionError as err:
                last_error = err
                self._drop_connection(target)
                if self._level >= 2:
                    self._refresh_topology()  # the member is likely gone
                continue
            self._observe_reply_epoch(target)
            return result
        raise StoreConnectionError(
            f"cluster routing for key {key!r} did not converge after "
            f"{self._max_redirects} redirects"
        ) from last_error

    def _grouped(self, keys: Iterable[str]) -> dict[Address, list[str]]:
        topology = self._topology
        assert topology is not None
        groups: dict[Address, list[str]] = {}
        for key in keys:
            groups.setdefault(topology.address(topology.owner(key)), []).append(key)
        return groups

    def _execute_grouped(self, keys: list[str], op):
        """Scatter a batched op by owner (L3), retrying the whole batch once
        per MOVED hop or dead member.  Batched ops here are idempotent
        (get/put/delete), so re-running already-succeeded groups is safe."""
        last_error: Exception | None = None
        for _attempt in range(self._max_redirects + 1):
            groups = self._grouped(keys)
            results: list[tuple[Address, Any]] = []
            try:
                for address, group in groups.items():
                    results.append((address, op(self._store_at(address), group)))
            except WireError as err:
                moved = parse_moved(str(err))
                if moved is None:
                    raise
                self._note_redirect()
                last_error = err
                self._refresh_topology(prefer=moved.address)
                continue
            except StoreConnectionError as err:
                last_error = err
                self._drop_connection(address)
                self._refresh_topology()  # the member is likely gone
                continue
            for address, _result in results:
                self._observe_reply_epoch(address)
            return [result for _address, result in results]
        raise StoreConnectionError(
            f"cluster routing for a {len(keys)}-key batch did not converge "
            f"after {self._max_redirects} redirects"
        ) from last_error

    # ------------------------------------------------------------------
    # KeyValueStore: single-key operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        return self._execute(key, lambda store: store.get(key))

    def get_with_version(self, key: str) -> tuple[Any, str]:
        return self._execute(key, lambda store: store.get_with_version(key))

    def get_if_modified(self, key: str, version: str) -> "tuple[Any, str] | NotModified":
        return self._execute(key, lambda store: store.get_if_modified(key, version))

    def put(self, key: str, value: Any) -> None:
        self._execute(key, lambda store: store.put(key, value))

    def put_with_version(self, key: str, value: Any) -> str:
        return self._execute(key, lambda store: store.put_with_version(key, value))

    def delete(self, key: str) -> bool:
        return self._execute(key, lambda store: store.delete(key))

    def contains(self, key: str) -> bool:
        return self._execute(key, lambda store: store.contains(key))

    # ------------------------------------------------------------------
    # KeyValueStore: batched operations
    # ------------------------------------------------------------------
    def get_many(self, keys: "Iterable[str]") -> dict[str, Any]:
        key_list = list(keys)
        if not key_list:
            return {}
        if self._level >= 3 and self._topology is not None:
            out: dict[str, Any] = {}
            for found in self._execute_grouped(
                key_list, lambda store, group: store.get_many(group)
            ):
                out.update(found)
            return out
        # L1/L2: one node takes the batch; the server scatter-gathers.
        return self._store_at(self._any_address()).get_many(key_list)

    def put_many(self, items: "Mapping[str, Any]") -> None:
        if not items:
            return
        if self._level >= 3 and self._topology is not None:
            self._execute_grouped(
                list(items),
                lambda store, group: store.put_many({key: items[key] for key in group}),
            )
            return
        self._store_at(self._any_address()).put_many(dict(items))

    def delete_many(self, keys: "Iterable[str]") -> int:
        key_list = list(keys)
        if not key_list:
            return 0
        if self._level >= 3 and self._topology is not None:
            return sum(
                self._execute_grouped(
                    key_list, lambda store, group: store.delete_many(group)
                )
            )
        return self._store_at(self._any_address()).delete_many(key_list)

    # ------------------------------------------------------------------
    # KeyValueStore: whole-namespace operations (aggregate across shards)
    # ------------------------------------------------------------------
    def _aggregate_addresses(self) -> list[Address]:
        """Every member address; fetches the topology on demand so even an
        L1 client aggregates the *whole* namespace, not one node's slice."""
        topology = self._topology
        if topology is None:
            topology = self._refresh_topology()
        return [topology.address(name) for name in topology.members]

    def keys(self) -> Iterator[str]:
        seen: set[str] = set()
        for address in self._aggregate_addresses():
            try:
                member_keys = list(self._store_at(address).keys())
            except StoreConnectionError:
                continue  # member mid-removal; its keys have moved
            for key in member_keys:
                if key not in seen:
                    seen.add(key)
                    yield key

    def size(self) -> int:
        # Mid-rebalance a moved key may momentarily live on two shards, so
        # this can transiently over-count; it converges with the topology.
        return sum(
            self._store_at(address).size() for address in self._aggregate_addresses()
        )

    def clear(self) -> int:
        return sum(
            self._store_at(address).clear() for address in self._aggregate_addresses()
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            conns = list(self._conns.values())
            self._conns.clear()
            self._stores.clear()
        for conn in conns:
            conn.close()
        if self._coordinator is not None:
            self._coordinator.stop()

    def __repr__(self) -> str:
        return (
            f"<ClusterStoreClient name={self.name!r} level={self._level} "
            f"epoch={self.epoch}>"
        )
