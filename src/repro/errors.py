"""Exception hierarchy for the repro library.

All exceptions raised by this library derive from :class:`DataStoreError`,
so callers can catch a single base class at an integration boundary while
still being able to discriminate on the precise failure mode.
"""

from __future__ import annotations


class DataStoreError(Exception):
    """Base class for every error raised by this library."""


class KeyNotFoundError(DataStoreError, KeyError):
    """A requested key does not exist in the data store.

    Also derives from :class:`KeyError` so code written against plain
    mapping semantics keeps working.
    """

    def __init__(self, key: object, store: str | None = None) -> None:
        self.key = key
        self.store = store
        location = f" in store {store!r}" if store else ""
        super().__init__(f"key {key!r} not found{location}")


class StoreClosedError(DataStoreError):
    """An operation was attempted on a store that has been closed."""


class StoreConnectionError(DataStoreError):
    """The client could not reach, or lost its connection to, a server."""


class WalPoisonedError(DataStoreError):
    """A write-ahead log segment failed a durability sync and is poisoned.

    After a failed ``flush``/``fsync`` the on-disk state of the segment is
    unknowable -- the frame may or may not be durable, and on Linux a
    *retried* fsync can falsely succeed because the kernel clears the
    dirty-page error state on report (the "fsyncgate" failure mode).  The
    engine therefore never retries: the segment refuses further appends,
    the un-acknowledged suffix is truncated away best-effort, and the
    owning store fails new mutations until it is reopened (reopening
    replays exactly the acknowledged prefix).  Reads of already
    acknowledged data remain correct and keep working.
    """


class ProtocolError(DataStoreError):
    """The remote peer sent data that violates the wire protocol."""


class StoreUnavailableError(StoreConnectionError):
    """The store is unreachable -- e.g. severed by a network partition.

    A :class:`StoreConnectionError` subclass on purpose: unavailability is
    transient, so retry policies treat it like any other connection
    failure, and quorum groups count it as a missing ack rather than a
    semantic error.  Raised by the chaos plane's
    :class:`~repro.kv.chaos.PartitionedStore` while a partition is active.
    """


class QuorumError(StoreConnectionError):
    """A quorum group could not gather enough member responses.

    Transient by design (members come back, partitions heal), so like
    :class:`StoreUnavailableError` it is retryable -- a retry ladder with
    backoff is the standard response to a temporarily lost quorum.
    """

    def __init__(self, store: str, *, needed: int, got: int, failures: int) -> None:
        self.store = store
        self.needed = needed
        self.got = got
        self.failures = failures
        super().__init__(
            f"quorum lost in {store!r}: needed {needed} member responses, "
            f"got {got} ({failures} member failures)"
        )


class QuorumWriteError(QuorumError):
    """Fewer than W members acknowledged a quorum write."""


class QuorumReadError(QuorumError):
    """Fewer than R members answered a quorum read."""


class CircuitOpenError(DataStoreError):
    """An operation was shed because the store's circuit breaker is open.

    Deliberately *not* a :class:`StoreConnectionError` subclass: retry
    policies treat connection errors as transient and retry them, but an
    open circuit means "stop asking" -- retrying would defeat the breaker.
    """

    def __init__(self, store: str, retry_after: float | None = None) -> None:
        self.store = store
        self.retry_after = retry_after
        hint = f" (probe allowed in {retry_after:.3f}s)" if retry_after else ""
        super().__init__(f"circuit for store {store!r} is open{hint}")


class DeadlineExceededError(DataStoreError):
    """An operation ran out of its caller's time budget.

    Like :class:`CircuitOpenError`, not a connection error: the time is
    gone no matter how healthy the backend is, so it must never be retried.
    """


class SerializationError(DataStoreError):
    """A value could not be serialized or deserialized."""


class EncryptionError(DataStoreError):
    """Encryption or decryption failed (bad key, corrupt ciphertext...)."""


class CompressionError(DataStoreError):
    """Compression or decompression failed (corrupt payload...)."""


class DeltaEncodingError(DataStoreError):
    """A delta could not be produced or applied."""


class DeltaChainBrokenError(DeltaEncodingError):
    """A stored delta chain is missing its base object or a delta link."""


class CacheError(DataStoreError):
    """Base class for cache-specific failures."""


class CapacityError(CacheError):
    """An object is too large to ever fit in the cache."""


class ConfigurationError(DataStoreError):
    """A component was configured with invalid or inconsistent options."""


class MonitoringError(DataStoreError):
    """Performance-monitoring bookkeeping failed."""


class WorkloadError(DataStoreError):
    """The workload generator was asked to do something impossible."""


class TransactionError(DataStoreError):
    """Base class for multi-store transaction failures."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back; no participant kept any write."""


class RecoveryError(TransactionError):
    """Crash recovery could not bring the stores to a consistent state."""


class AsyncOperationError(DataStoreError):
    """An asynchronous operation failed; the cause is chained."""


class FutureCancelledError(AsyncOperationError):
    """The result of a cancelled future was requested."""


class FutureTimeoutError(AsyncOperationError):
    """Waiting for a future's result timed out."""
