"""The Data Store Client Library (DSCL) -- explicit API.

The paper's second integration approach (Section III): hand applications the
library itself and let them drive caching, encryption, compression, and
delta encoding with explicit calls, independent of any particular data
store.  The DSCL is therefore a facade over the lower-level subsystems:

* a cache (any :class:`~repro.caching.interface.Cache`) under DSCL-managed
  expiration times (:class:`~repro.caching.expiration.ExpiringCache`);
* a :class:`~repro.core.pipeline.ValuePipeline` for confidentiality and
  size reduction;
* a :class:`~repro.delta.encoder.DeltaCodec` for delta-encoded updates.

Even when the tightly integrated
:class:`~repro.core.enhanced.EnhancedDataStoreClient` is in use, the paper
recommends also exposing this API for fine-grained control; the enhanced
client exposes its internal DSCL for exactly that reason.
"""

from __future__ import annotations

from typing import Any

from ..caching.expiration import ExpiringCache, LookupResult
from ..caching.inprocess import InProcessCache
from ..caching.interface import Cache
from ..compression.interface import Compressor
from ..delta.encoder import DEFAULT_WINDOW_SIZE, DeltaCodec
from ..kv.interface import KeyValueStore
from ..kv.wrappers import TransformingStore
from ..obs import Observability, resolve_obs
from ..security.interface import Encryptor
from ..serialization import Serializer
from .pipeline import ValuePipeline

__all__ = ["DSCL"]


class DSCL:
    """Facade bundling the enhanced-client building blocks."""

    def __init__(
        self,
        *,
        cache: Cache | None = None,
        default_ttl: float | None = None,
        serializer: Serializer | None = None,
        compressor: Compressor | None = None,
        encryptor: Encryptor | None = None,
        delta_window: int = DEFAULT_WINDOW_SIZE,
        obs: Observability | None = None,
    ) -> None:
        """Assemble a DSCL instance.

        :param cache: cache implementation (default: a fresh
            :class:`~repro.caching.inprocess.InProcessCache`).
        :param default_ttl: expiration applied to cached objects unless a
            ``put`` overrides it (``None`` = no expiry).
        :param serializer/compressor/encryptor: value pipeline stages.
        :param delta_window: minimum match length for delta encoding.
        :param obs: observability bundle shared with the pipeline; cache
            operations become ``cache.*`` spans and the cache's hit/miss
            counters are re-homed into the shared metrics registry.
        """
        self.obs = resolve_obs(obs)
        self.pipeline = ValuePipeline(
            serializer=serializer, compressor=compressor, encryptor=encryptor, obs=obs
        )
        self.cache = cache if cache is not None else InProcessCache()
        self.expiring = ExpiringCache(self.cache, default_ttl=default_ttl)
        self.delta_codec = DeltaCodec(delta_window)
        self._m_cache = f"cache.{self.cache.name}"
        self._m_cache_put = self._m_cache + ".put"
        self._m_cache_lookup = self._m_cache + ".lookup"
        if self.obs.enabled:
            self.cache.stats.bind(self.obs.registry, self._m_cache)

    # ------------------------------------------------------------------
    # Caching API (explicit, paper approach 2)
    # ------------------------------------------------------------------
    def cache_put(
        self,
        key: str,
        value: Any,
        *,
        ttl: float | None | type(...) = ...,
        version: str | None = None,
    ) -> None:
        """Cache *value* under DSCL-managed expiration."""
        with self.obs.stage("cache.put", metric=self._m_cache_put):
            self.expiring.put(key, value, ttl=ttl, version=version)

    def cache_get(self, key: str) -> Any:
        """Fresh cached value, or :data:`~repro.caching.interface.MISS`."""
        with self.obs.stage("cache.lookup", metric=self._m_cache_lookup):
            return self.expiring.get(key)

    def cache_lookup(self, key: str) -> LookupResult:
        """Full-fidelity lookup distinguishing fresh / expired / miss."""
        with self.obs.stage("cache.lookup", metric=self._m_cache_lookup) as span:
            result = self.expiring.lookup(key)
            if span is not None:
                span.set_attribute("freshness", result.freshness.value)
            return result

    def cache_refresh(
        self,
        key: str,
        *,
        ttl: float | None | type(...) = ...,
        version: str | None = None,
    ) -> bool:
        """Re-arm an expired entry after revalidation; True if it existed."""
        return self.expiring.refresh(key, ttl=ttl, version=version) is not None

    def cache_delete(self, key: str) -> bool:
        return self.expiring.delete(key)

    def cache_clear(self) -> int:
        return self.expiring.clear()

    # ------------------------------------------------------------------
    # Encryption / compression API
    # ------------------------------------------------------------------
    def encode_value(self, value: Any) -> bytes:
        """Serialize + compress + encrypt *value* for storage or transport."""
        return self.pipeline.encode(value)

    def decode_value(self, payload: bytes) -> Any:
        """Invert :meth:`encode_value`."""
        return self.pipeline.decode(payload)

    def encrypt(self, data: bytes) -> bytes:
        """Encrypt raw bytes (no-op without an encryptor)."""
        encryptor = self.pipeline.encryptor
        return data if encryptor is None else encryptor.encrypt(data)

    def decrypt(self, data: bytes) -> bytes:
        encryptor = self.pipeline.encryptor
        return data if encryptor is None else encryptor.decrypt(data)

    def compress(self, data: bytes) -> bytes:
        """Compress raw bytes (no-op without a compressor)."""
        compressor = self.pipeline.compressor
        return data if compressor is None else compressor.compress(data)

    def decompress(self, data: bytes) -> bytes:
        compressor = self.pipeline.compressor
        return data if compressor is None else compressor.decompress(data)

    # ------------------------------------------------------------------
    # Delta encoding API
    # ------------------------------------------------------------------
    def make_delta(
        self, old_value: Any, new_value: Any, *, max_ratio: float = 0.9
    ) -> bytes | None:
        """Delta between two values, or ``None`` when not worth using.

        Values are compared in *serialized* (pre-compression) form, where
        similar objects still have similar bytes.  *max_ratio* demands a
        real saving before a delta replaces a full write (marginal savings
        never justify managing a delta).
        """
        serializer = self.pipeline.serializer
        with self.obs.stage("delta.encode"):
            return self.delta_codec.encode_if_profitable(
                serializer.dumps(old_value), serializer.dumps(new_value), max_ratio=max_ratio
            )

    def apply_value_delta(self, old_value: Any, delta: bytes) -> Any:
        """Reconstruct the new value from the old one plus a delta."""
        serializer = self.pipeline.serializer
        with self.obs.stage("delta.apply"):
            return serializer.loads(
                self.delta_codec.apply(serializer.dumps(old_value), delta)
            )

    # ------------------------------------------------------------------
    # Store integration helper
    # ------------------------------------------------------------------
    def wrap_store(self, store: KeyValueStore) -> KeyValueStore:
        """Attach this DSCL's pipeline to an unmodified store.

        Returns the store itself when the pipeline is an identity; otherwise
        a :class:`~repro.kv.wrappers.TransformingStore` whose values are
        pipeline-encoded bytes -- the loosely coupled integration that needs
        no changes to the store's client code.
        """
        if self.pipeline.is_identity:
            return store
        return TransformingStore(
            store,
            encode=self.pipeline.encode,
            decode=self.pipeline.decode,
            name=f"{store.name}+{self.pipeline.describe()}",
        )
