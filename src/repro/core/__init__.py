"""The paper's primary contribution: the Data Store Client Library (DSCL)
and enhanced data store clients.

* :class:`~repro.core.pipeline.ValuePipeline` -- the serialize / compress /
  encrypt value transformation shared by every enhanced feature.
* :class:`~repro.core.dscl.DSCL` -- the explicit-API library (the paper's
  *loose coupling*): applications call caching / encryption / compression /
  delta operations themselves, independently of any data store.
* :class:`~repro.core.enhanced.EnhancedDataStoreClient` -- the *tight
  coupling*: a data store client whose ``get``/``put``/``delete`` transparently
  consult and maintain a cache, revalidate expired entries against the
  origin, and run values through the pipeline.
"""

from .pipeline import ValuePipeline
from .dscl import DSCL
from .enhanced import CacheConsistency, EnhancedDataStoreClient, WritePolicy

__all__ = [
    "ValuePipeline",
    "DSCL",
    "EnhancedDataStoreClient",
    "WritePolicy",
    "CacheConsistency",
]
