"""The value pipeline: serialize, compress, encrypt.

Every enhanced feature moves values through the same byte pipeline::

    application value
        --serializer.dumps-->  bytes
        --compressor.compress--> smaller bytes     (optional)
        --encryptor.encrypt-->  confidential bytes (optional)

and back.  Compression runs *before* encryption because ciphertext is
incompressible by design; reversing the order would make compression a
no-op.  The pipeline is where the paper's three headline client features
(confidentiality, size reduction, and the serialization cost that separates
in-process from remote caches) live in one place.
"""

from __future__ import annotations

from typing import Any

from ..compression.interface import Compressor
from ..security.interface import Encryptor
from ..serialization import Serializer, default_serializer

__all__ = ["ValuePipeline"]


class ValuePipeline:
    """Composable serialize/compress/encrypt transform."""

    def __init__(
        self,
        *,
        serializer: Serializer | None = None,
        compressor: Compressor | None = None,
        encryptor: Encryptor | None = None,
    ) -> None:
        """Build a pipeline; omitted stages are skipped.

        :param serializer: value <-> bytes codec (default pickle).
        :param compressor: optional compression stage.
        :param encryptor: optional encryption stage (runs last on encode).
        """
        self._serializer = serializer if serializer is not None else default_serializer()
        self._compressor = compressor
        self._encryptor = encryptor

    # ------------------------------------------------------------------
    @property
    def serializer(self) -> Serializer:
        return self._serializer

    @property
    def compressor(self) -> Compressor | None:
        return self._compressor

    @property
    def encryptor(self) -> Encryptor | None:
        return self._encryptor

    @property
    def is_identity(self) -> bool:
        """True when no compression or encryption stage is configured."""
        return self._compressor is None and self._encryptor is None

    def describe(self) -> str:
        """Human-readable stage list, e.g. ``pickle|gzip|aes-gcm``."""
        stages = [self._serializer.name]
        if self._compressor is not None:
            stages.append(self._compressor.name)
        if self._encryptor is not None:
            stages.append(self._encryptor.name)
        return "|".join(stages)

    # ------------------------------------------------------------------
    def encode(self, value: Any) -> bytes:
        """Value -> wire bytes (serialize, then compress, then encrypt)."""
        return self.encode_bytes(self._serializer.dumps(value))

    def decode(self, payload: bytes) -> Any:
        """Wire bytes -> value (decrypt, then decompress, then deserialize)."""
        return self._serializer.loads(self.decode_bytes(payload))

    def encode_bytes(self, data: bytes) -> bytes:
        """Byte-level encode for already-serialized payloads."""
        if self._compressor is not None:
            data = self._compressor.compress(data)
        if self._encryptor is not None:
            data = self._encryptor.encrypt(data)
        return data

    def decode_bytes(self, payload: bytes) -> bytes:
        """Invert :meth:`encode_bytes`."""
        if self._encryptor is not None:
            payload = self._encryptor.decrypt(payload)
        if self._compressor is not None:
            payload = self._compressor.decompress(payload)
        return payload
