"""The value pipeline: serialize, compress, encrypt.

Every enhanced feature moves values through the same byte pipeline::

    application value
        --serializer.dumps-->  bytes
        --compressor.compress--> smaller bytes     (optional)
        --encryptor.encrypt-->  confidential bytes (optional)

and back.  Compression runs *before* encryption because ciphertext is
incompressible by design; reversing the order would make compression a
no-op.  The pipeline is where the paper's three headline client features
(confidentiality, size reduction, and the serialization cost that separates
in-process from remote caches) live in one place.
"""

from __future__ import annotations

from typing import Any

from ..compression.interface import Compressor
from ..obs import Observability, resolve_obs
from ..security.interface import Encryptor
from ..serialization import Serializer, default_serializer

__all__ = ["ValuePipeline"]


class ValuePipeline:
    """Composable serialize/compress/encrypt transform."""

    def __init__(
        self,
        *,
        serializer: Serializer | None = None,
        compressor: Compressor | None = None,
        encryptor: Encryptor | None = None,
        obs: Observability | None = None,
    ) -> None:
        """Build a pipeline; omitted stages are skipped.

        :param serializer: value <-> bytes codec (default pickle).
        :param compressor: optional compression stage.
        :param encryptor: optional encryption stage (runs last on encode).
        :param obs: observability bundle; when set, every stage runs inside
            a ``pipeline.*`` span and records a per-codec latency histogram
            (see ``docs/observability.md``).
        """
        self._serializer = serializer if serializer is not None else default_serializer()
        self._compressor = compressor
        self._encryptor = encryptor
        self._obs = resolve_obs(obs)
        # Per-codec metric prefixes, precomputed off the hot path.
        self._m_serializer = f"pipeline.{self._serializer.name}"
        self._m_compressor = (
            f"pipeline.{compressor.name}" if compressor is not None else ""
        )
        self._m_encryptor = f"pipeline.{encryptor.name}" if encryptor is not None else ""

    # ------------------------------------------------------------------
    @property
    def serializer(self) -> Serializer:
        return self._serializer

    @property
    def compressor(self) -> Compressor | None:
        return self._compressor

    @property
    def encryptor(self) -> Encryptor | None:
        return self._encryptor

    @property
    def is_identity(self) -> bool:
        """True when no compression or encryption stage is configured."""
        return self._compressor is None and self._encryptor is None

    def describe(self) -> str:
        """Human-readable stage list, e.g. ``pickle|gzip|aes-gcm``."""
        stages = [self._serializer.name]
        if self._compressor is not None:
            stages.append(self._compressor.name)
        if self._encryptor is not None:
            stages.append(self._encryptor.name)
        return "|".join(stages)

    # ------------------------------------------------------------------
    def encode(self, value: Any) -> bytes:
        """Value -> wire bytes (serialize, then compress, then encrypt)."""
        if not self._obs.enabled:
            return self.encode_bytes(self._serializer.dumps(value))
        with self._obs.stage("pipeline.serialize", metric=f"{self._m_serializer}.serialize"):
            data = self._serializer.dumps(value)
        return self.encode_bytes(data)

    def decode(self, payload: bytes) -> Any:
        """Wire bytes -> value (decrypt, then decompress, then deserialize)."""
        data = self.decode_bytes(payload)
        if not self._obs.enabled:
            return self._serializer.loads(data)
        with self._obs.stage("pipeline.deserialize", metric=f"{self._m_serializer}.deserialize"):
            return self._serializer.loads(data)

    def encode_bytes(self, data: bytes) -> bytes:
        """Byte-level encode for already-serialized payloads."""
        obs = self._obs
        if not obs.enabled:
            if self._compressor is not None:
                data = self._compressor.compress(data)
            if self._encryptor is not None:
                data = self._encryptor.encrypt(data)
            return data
        if self._compressor is not None:
            with obs.stage("pipeline.compress", metric=f"{self._m_compressor}.compress") as span:
                before = len(data)
                data = self._compressor.compress(data)
                span.set_attribute("bytes_in", before)
                span.set_attribute("bytes_out", len(data))
            obs.inc(f"{self._m_compressor}.bytes_in", before)
            obs.inc(f"{self._m_compressor}.bytes_out", len(data))
        if self._encryptor is not None:
            with obs.stage("pipeline.encrypt", metric=f"{self._m_encryptor}.encrypt"):
                data = self._encryptor.encrypt(data)
        return data

    def decode_bytes(self, payload: bytes) -> bytes:
        """Invert :meth:`encode_bytes`."""
        obs = self._obs
        if not obs.enabled:
            if self._encryptor is not None:
                payload = self._encryptor.decrypt(payload)
            if self._compressor is not None:
                payload = self._compressor.decompress(payload)
            return payload
        if self._encryptor is not None:
            with obs.stage("pipeline.decrypt", metric=f"{self._m_encryptor}.decrypt"):
                payload = self._encryptor.decrypt(payload)
        if self._compressor is not None:
            with obs.stage("pipeline.decompress", metric=f"{self._m_compressor}.decompress"):
                payload = self._compressor.decompress(payload)
        return payload
