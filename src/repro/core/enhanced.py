"""The enhanced data store client -- tight cache integration.

The paper's first integration approach (Section III): the data store
client's own ``get``/``put``/``delete`` transparently consult and maintain a
cache, so applications get caching (plus encryption and compression via the
value pipeline) without making a single explicit DSCL call.  Concretely:

* **read path** -- a fresh cached entry is returned immediately; an
  *expired* entry is revalidated against the origin with a conditional get
  (If-Modified-Since style): on NOT_MODIFIED the entry is re-armed and
  returned without transferring the value, otherwise the fresh value
  replaces it; a miss fetches from the origin and populates the cache.
* **write path** -- configurable consistency action
  (:class:`WritePolicy`): update the cached entry (write-through),
  invalidate it, or leave the cache alone (for applications managing it
  explicitly through the exposed :attr:`EnhancedDataStoreClient.dscl`).

Per-client counters (:class:`ClientCounters`) record how each request was
satisfied, which the caching benchmarks (Figures 11-19) use to verify their
achieved hit rates.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from ..caching.entry import CacheEntry
from ..caching.expiration import Freshness
from ..caching.interface import Cache
from ..caching.stale import DEFAULT_DEGRADE_ON
from ..compression.interface import Compressor
from ..delta.encoder import DEFAULT_WINDOW_SIZE
from ..errors import ConfigurationError, KeyNotFoundError
from ..kv.interface import NOT_MODIFIED, KeyValueStore
from ..obs import Observability
from ..security.interface import Encryptor
from ..serialization import Serializer
from .dscl import DSCL

__all__ = ["WritePolicy", "CacheConsistency", "ClientCounters", "EnhancedDataStoreClient"]


class WritePolicy(enum.Enum):
    """What a write does to the cache (paper: "update (or invalidate)")."""

    #: Store the written value in the cache too (reads hit immediately).
    WRITE_THROUGH = "write-through"
    #: Drop any cached entry; the next read refetches from the origin.
    INVALIDATE = "invalidate"
    #: Touch the origin only; the application manages the cache itself.
    NONE = "none"


#: Backwards-friendly alias: the knob is really a cache-consistency choice.
CacheConsistency = WritePolicy


@dataclass
class ClientCounters:
    """How the client satisfied its requests (monotonic counters)."""

    cache_hits: int = 0
    cache_misses: int = 0
    store_reads: int = 0
    store_writes: int = 0
    revalidations: int = 0
    revalidated_not_modified: int = 0
    revalidated_modified: int = 0
    #: misses satisfied by another thread's in-flight fetch (single-flight)
    coalesced_misses: int = 0
    #: expired entries served anyway because the origin was unreachable
    stale_serves: int = 0

    @property
    def reads(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        reads = self.reads
        return self.cache_hits / reads if reads else 0.0


class _NegativeEntry:
    """Singleton marker cached for keys the origin reported absent."""

    _instance: "_NegativeEntry | None" = None

    def __new__(cls) -> "_NegativeEntry":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<NEGATIVE>"


_NEGATIVE = _NegativeEntry()

#: Registry metric name for each :class:`ClientCounters` field (precomputed
#: so the disabled-observability path never builds strings).
_COUNTER_METRICS = {
    field: f"client.{field}"
    for field in (
        "cache_hits",
        "cache_misses",
        "store_reads",
        "store_writes",
        "revalidations",
        "revalidated_not_modified",
        "revalidated_modified",
        "coalesced_misses",
    )
}
#: Stale serves share the documented cache-plane metric name rather than the
#: ``client.*`` prefix, so every serve-stale layer counts into one series.
_COUNTER_METRICS["stale_serves"] = "cache.stale_served"


class EnhancedDataStoreClient:
    """A data store client with integrated caching, encryption, compression.

    Wraps any :class:`~repro.kv.interface.KeyValueStore`; itself usable as a
    drop-in store for application code (it exposes the same core methods).
    """

    def __init__(
        self,
        store: KeyValueStore,
        *,
        cache: Cache | None = None,
        default_ttl: float | None = None,
        write_policy: WritePolicy = WritePolicy.WRITE_THROUGH,
        revalidate_expired: bool = True,
        negative_ttl: float | None = None,
        coalesce_misses: bool = False,
        serve_stale: bool = False,
        max_stale: float = 300.0,
        degrade_on: tuple[type[Exception], ...] = DEFAULT_DEGRADE_ON,
        stale_revalidator: "Callable[[Callable[[], None]], None] | None" = None,
        serializer: Serializer | None = None,
        compressor: Compressor | None = None,
        encryptor: Encryptor | None = None,
        delta_window: int = DEFAULT_WINDOW_SIZE,
        obs: Observability | None = None,
    ) -> None:
        """Enhance *store*.

        :param cache: the cache to integrate (default: a fresh in-process
            cache).  Pass a :class:`~repro.caching.remote.RemoteProcessCache`
            for the shared / remote configuration.
        :param default_ttl: expiration for cached entries (``None`` = no
            expiry; entries stay until evicted or invalidated).
        :param write_policy: cache action on writes.
        :param revalidate_expired: revalidate expired entries with a
            conditional get instead of refetching (paper Section III).
        :param negative_ttl: when set, "key not found" results are cached
            for this many seconds, so repeated lookups of absent keys don't
            each pay an origin round trip.  Writes clear the negative entry.
        :param coalesce_misses: single-flight protection -- when many
            threads miss the same key at once (a "cache stampede" after an
            expiry or a cold start), only one fetches from the origin; the
            rest wait and reuse its result.  Costs one lock acquisition per
            miss; leave off for single-threaded clients.
        :param serve_stale: graceful degradation -- when a fetch or
            revalidation fails with a *degradable* error (circuit open,
            deadline exhausted, connection lost) and an expired entry is
            still cached, return that entry's value instead of raising,
            provided it expired less than ``max_stale`` seconds ago.  Each
            stale serve counts as ``cache.stale_served`` and schedules a
            background revalidation of the key.
        :param max_stale: how long past expiry an entry may still be
            served under degradation (seconds).
        :param degrade_on: error types that trigger stale serving.
        :param stale_revalidator: how background revalidation thunks run
            (default: one daemon thread per key); tests inject a collector
            and drain it synchronously.
        :param serializer/compressor/encryptor: value pipeline; when a
            compressor or encryptor is set, everything persisted to the
            origin store is pipeline-encoded bytes.
        :param obs: observability bundle.  When set, every ``get``/``put``
            becomes a ``dscl.*`` root span with nested cache / store /
            pipeline stages, and the :class:`ClientCounters` are mirrored
            as ``client.*`` registry counters (see ``docs/observability.md``).
        """
        self.dscl = DSCL(
            cache=cache,
            default_ttl=default_ttl,
            serializer=serializer,
            compressor=compressor,
            encryptor=encryptor,
            delta_window=delta_window,
            obs=obs,
        )
        self._obs = self.dscl.obs
        self._origin = store
        self._store = self.dscl.wrap_store(store)
        self._write_policy = write_policy
        self._revalidate = revalidate_expired
        self._negative_ttl = negative_ttl
        self._coalesce = coalesce_misses
        self._serve_stale = serve_stale
        self._max_stale = max_stale
        self._degrade_on = degrade_on
        self._stale_revalidator = stale_revalidator
        self._stale_revalidating: set[str] = set()
        self._inflight: dict[str, threading.Lock] = {}
        self._inflight_lock = threading.Lock()
        self.counters = ClientCounters()
        self._counters_lock = threading.Lock()
        self.name = f"enhanced({store.name})"
        self._m_store = f"store.{store.name}"
        self._m_store_get = self._m_store + ".get"
        self._m_store_put = self._m_store + ".put"
        self._m_store_revalidate = self._m_store + ".revalidate"

    # ------------------------------------------------------------------
    @property
    def store(self) -> KeyValueStore:
        """The origin store as the client sees it (pipeline applied)."""
        return self._store

    @property
    def origin(self) -> KeyValueStore:
        """The unwrapped origin store."""
        return self._origin

    @property
    def cache(self) -> Cache:
        """The integrated cache (for stats or direct manipulation)."""
        return self.dscl.cache

    @property
    def serve_stale(self) -> bool:
        """Whether degradable fetch errors may be answered from expired
        cache entries.  Writable at runtime (next :meth:`get` onward),
        which is how :class:`repro.obs.anomaly.ServeStaleAction` switches a
        client into degradation while an anomaly is active and restores the
        prior policy when it clears.  The safety rules are unaffected:
        negatives are never served stale, and entries older than
        :attr:`max_stale` stay misses."""
        return self._serve_stale

    @serve_stale.setter
    def serve_stale(self, value: bool) -> None:
        self._serve_stale = bool(value)

    @property
    def max_stale(self) -> float:
        """How long past expiry an entry may still be served (seconds)."""
        return self._max_stale

    @max_stale.setter
    def max_stale(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError("max_stale must be non-negative")
        self._max_stale = value

    @property
    def obs(self) -> "Observability":
        """The observability bundle (``NULL_OBS`` when not enabled)."""
        return self._obs

    # ------------------------------------------------------------------
    # Counter recording (client counters + the shared metrics registry)
    # ------------------------------------------------------------------
    def _count(self, field: str, amount: int = 1) -> None:
        with self._counters_lock:
            setattr(self.counters, field, getattr(self.counters, field) + amount)
        self._obs.inc(_COUNTER_METRICS[field], amount)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        """Cached read-through get; raises ``KeyNotFoundError`` if absent."""
        with self._obs.stage("dscl.get", metric="client.get", key=key):
            return self._get(key)

    def _get(self, key: str) -> Any:
        lookup = self.dscl.cache_lookup(key)
        if lookup.freshness is Freshness.FRESH:
            assert lookup.entry is not None
            if lookup.entry.value is _NEGATIVE:
                # A fresh negative entry: the origin said "absent" recently.
                self._count("cache_hits")
                raise KeyNotFoundError(key, self.name)
            self._count("cache_hits")
            return lookup.entry.value

        # An expired entry doubles as the degradation parachute: if the
        # origin turns out to be unreachable, it may be served stale.
        stale_entry = lookup.entry if lookup.freshness is Freshness.EXPIRED else None

        if (
            lookup.freshness is Freshness.EXPIRED
            and self._revalidate
            and lookup.entry is not None
            and lookup.entry.version is not None
        ):
            try:
                return self._revalidate_entry(
                    key, lookup.entry.value, lookup.entry.version
                )
            except self._degrade_on as exc:
                return self._maybe_serve_stale(key, stale_entry, exc)

        self._count("cache_misses")
        try:
            if self._coalesce:
                return self._fetch_coalesced(key)
            return self._fetch_and_cache(key)
        except self._degrade_on as exc:
            return self._maybe_serve_stale(key, stale_entry, exc)

    # ------------------------------------------------------------------
    # Graceful degradation (serve-stale)
    # ------------------------------------------------------------------
    def _maybe_serve_stale(
        self, key: str, entry: "CacheEntry | None", error: Exception
    ) -> Any:
        """Serve the expired *entry* instead of raising, when allowed."""
        if (
            not self._serve_stale
            or entry is None
            or entry.value is _NEGATIVE
            or entry.expires_at is None
        ):
            raise error
        age = max(0.0, time.time() - entry.expires_at)
        if age > self._max_stale:
            raise error
        self._count("stale_serves")
        if self._obs.enabled:
            self._obs.event(
                "stale_served", key=key, age=round(age, 6), error=type(error).__name__
            )
            self._obs.emit(
                "stale_served",
                client=self.name,
                key=key,
                age=round(age, 6),
                error=type(error).__name__,
            )
        self._schedule_stale_revalidation(key)
        return entry.value

    def _schedule_stale_revalidation(self, key: str) -> None:
        """Refresh a stale-served key in the background (deduplicated)."""
        with self._counters_lock:
            if key in self._stale_revalidating:
                return
            self._stale_revalidating.add(key)

        def revalidate() -> None:
            try:
                self._fetch_and_cache(key)
            except Exception:  # noqa: BLE001 - origin still down; keep the entry
                pass
            finally:
                with self._counters_lock:
                    self._stale_revalidating.discard(key)

        if self._stale_revalidator is not None:
            self._stale_revalidator(revalidate)
        else:
            threading.Thread(
                target=revalidate, name=f"{self.name}-stale-revalidate", daemon=True
            ).start()

    def _fetch_coalesced(self, key: str) -> Any:
        """Single-flight fetch: one origin call per key per stampede."""
        with self._inflight_lock:
            lock = self._inflight.setdefault(key, threading.Lock())
        try:
            with lock:
                # Whoever got the lock first has already filled the cache.
                lookup = self.dscl.cache_lookup(key)
                if lookup.freshness is Freshness.FRESH and lookup.entry is not None:
                    if lookup.entry.value is _NEGATIVE:
                        raise KeyNotFoundError(key, self.name)
                    self._count("coalesced_misses")
                    return lookup.entry.value
                return self._fetch_and_cache(key)
        finally:
            with self._inflight_lock:
                if self._inflight.get(key) is lock and not lock.locked():
                    del self._inflight[key]

    def _revalidate_entry(self, key: str, cached_value: Any, version: str) -> Any:
        """Conditional fetch for an expired entry (If-Modified-Since)."""
        self._count("revalidations")
        self._count("store_reads")
        try:
            with self._obs.stage("store.revalidate", metric=self._m_store_revalidate):
                result = self._store.get_if_modified(key, version)
        except KeyNotFoundError:
            # The origin dropped the key; the cached copy is dead too.
            self.dscl.cache_delete(key)
            raise
        if result is NOT_MODIFIED:
            self._count("revalidated_not_modified")
            self.dscl.cache_refresh(key, version=version)
            return cached_value
        self._count("revalidated_modified")
        value, new_version = result
        self.dscl.cache_put(key, value, version=new_version)
        return value

    def _fetch_and_cache(self, key: str) -> Any:
        self._count("store_reads")
        try:
            with self._obs.stage("store.get", metric=self._m_store_get):
                value, version = self._store.get_with_version(key)
        except KeyNotFoundError:
            if self._negative_ttl is not None:
                self.dscl.cache_put(key, _NEGATIVE, ttl=self._negative_ttl)
            raise
        self.dscl.cache_put(key, value, version=version)
        return value

    def get_or_default(self, key: str, default: Any = None) -> Any:
        try:
            return self.get(key)
        except KeyNotFoundError:
            return default

    def get_many(self, keys: "Iterable[str]") -> dict[str, Any]:
        """Batched read-through: cached keys answer locally, the misses are
        fetched from the origin in ONE ``get_many`` call (one MGET round
        trip on remote stores) and cached.  Absent keys are omitted.
        """
        with self._obs.stage("dscl.get_many", metric="client.get_many"):
            result: dict[str, Any] = {}
            misses: list[str] = []
            for key in keys:
                lookup = self.dscl.cache_lookup(key)
                if lookup.freshness is Freshness.FRESH and lookup.entry is not None:
                    if lookup.entry.value is _NEGATIVE:
                        self._count("cache_hits")
                        continue  # known-absent
                    self._count("cache_hits")
                    result[key] = lookup.entry.value
                else:
                    misses.append(key)
            if misses:
                self._count("cache_misses", len(misses))
                self._count("store_reads")
                with self._obs.stage("store.get_many", metric=self._m_store_get):
                    fetched = self._store.get_many(misses)
                for key, value in fetched.items():
                    self.dscl.cache_put(key, value)
                    result[key] = value
                if self._negative_ttl is not None:
                    for key in misses:
                        if key not in fetched:
                            self.dscl.cache_put(key, _NEGATIVE, ttl=self._negative_ttl)
            return result

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, *, ttl: float | None | type(...) = ...) -> None:
        """Write to the origin, then apply the configured cache action.

        :param ttl: cache lifetime for this entry under write-through;
            omitted = the client's ``default_ttl``, ``None`` = never expire.
        """
        with self._obs.stage("dscl.put", metric="client.put", key=key):
            self._count("store_writes")
            with self._obs.stage("store.put", metric=self._m_store_put):
                version = self._store.put_with_version(key, value)
            if self._write_policy is WritePolicy.WRITE_THROUGH:
                self.dscl.cache_put(key, value, ttl=ttl, version=version)
            elif self._write_policy is WritePolicy.INVALIDATE:
                self.dscl.cache_delete(key)
            # WritePolicy.NONE: cache untouched by design.

    def delete(self, key: str) -> bool:
        """Delete from the origin and drop any cached copy."""
        with self._obs.stage("dscl.delete", metric="client.delete", key=key):
            self._count("store_writes")
            self.dscl.cache_delete(key)
            return self._store.delete(key)

    # ------------------------------------------------------------------
    # Pass-throughs
    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """Membership; a fresh cached entry answers without an origin call."""
        lookup = self.dscl.cache_lookup(key)
        if lookup.freshness is Freshness.FRESH:
            assert lookup.entry is not None
            return lookup.entry.value is not _NEGATIVE
        return self._store.contains(key)

    def keys(self) -> Iterator[str]:
        return self._store.keys()

    def invalidate(self, key: str) -> bool:
        """Drop the cached entry only (the origin is untouched)."""
        with self._obs.stage("dscl.invalidate", metric="client.invalidate", key=key):
            return self.dscl.cache_delete(key)

    def invalidate_all(self) -> int:
        return self.dscl.cache_clear()

    def close(self) -> None:
        self.dscl.cache.close()
        self._store.close()

    def __enter__(self) -> "EnhancedDataStoreClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<EnhancedDataStoreClient store={self._origin.name!r} "
            f"cache={self.dscl.cache.name!r} policy={self._write_policy.value}>"
        )
