"""Thread-safe cache statistics.

Every cache keeps a :class:`CacheStats`; the UDSM's monitoring layer and the
workload generator read them to report hit rates and eviction behaviour.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["CacheStats", "StatsSnapshot"]


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable copy of a cache's counters at one instant."""

    hits: int
    misses: int
    puts: int
    deletes: int
    evictions: int
    expired_hits: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 when there were no lookups."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class CacheStats:
    """Mutable, thread-safe counter set."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._deletes = 0
        self._evictions = 0
        self._expired_hits = 0

    def record_hit(self) -> None:
        with self._lock:
            self._hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self._misses += 1

    def record_put(self) -> None:
        with self._lock:
            self._puts += 1

    def record_delete(self) -> None:
        with self._lock:
            self._deletes += 1

    def record_eviction(self, count: int = 1) -> None:
        with self._lock:
            self._evictions += count

    def record_expired_hit(self) -> None:
        """A lookup found an entry whose expiration time had passed."""
        with self._lock:
            self._expired_hits += 1

    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            return StatsSnapshot(
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                deletes=self._deletes,
                evictions=self._evictions,
                expired_hits=self._expired_hits,
            )

    def reset(self) -> None:
        with self._lock:
            self._hits = self._misses = self._puts = 0
            self._deletes = self._evictions = self._expired_hits = 0

    @property
    def hit_rate(self) -> float:
        return self.snapshot().hit_rate

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"CacheStats(hits={snap.hits}, misses={snap.misses}, "
            f"puts={snap.puts}, evictions={snap.evictions}, "
            f"hit_rate={snap.hit_rate:.3f})"
        )
