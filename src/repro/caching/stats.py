"""Thread-safe cache statistics.

Every cache keeps a :class:`CacheStats`; the UDSM's monitoring layer and the
workload generator read them to report hit rates and eviction behaviour.

The counters are :class:`repro.obs.metrics.Counter` objects.  By default
they are private to the cache; :meth:`CacheStats.bind` swaps them for
counters owned by a shared :class:`~repro.obs.metrics.MetricsRegistry`
(named ``<prefix>.hits``, ``<prefix>.misses``, ...), carrying current
values over.  Binding makes the registry the *single* storage for these
numbers -- the cache and the registry can never drift apart or double-count,
because there is only one counter.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..obs.metrics import Counter, MetricsRegistry

__all__ = ["CacheStats", "StatsSnapshot"]

_FIELDS = ("hits", "misses", "puts", "deletes", "evictions", "expired_hits")


@dataclass(frozen=True)
class StatsSnapshot:
    """Immutable copy of a cache's counters at one instant."""

    hits: int
    misses: int
    puts: int
    deletes: int
    evictions: int
    expired_hits: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 when there were no lookups."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class CacheStats:
    """Mutable, thread-safe counter set (optionally registry-backed)."""

    def __init__(self) -> None:
        self._bind_lock = threading.Lock()
        self._hits = Counter("hits")
        self._misses = Counter("misses")
        self._puts = Counter("puts")
        self._deletes = Counter("deletes")
        self._evictions = Counter("evictions")
        self._expired_hits = Counter("expired_hits")

    # ------------------------------------------------------------------
    def bind(self, registry: MetricsRegistry, prefix: str) -> "CacheStats":
        """Re-home these counters into *registry* as ``<prefix>.<field>``.

        Values accumulated so far carry over.  Binding is idempotent for
        the same registry and prefix (the registry counters simply stay in
        place); bind before traffic starts -- a racing record during the
        swap itself may land in the retired private counter.
        """
        with self._bind_lock:
            for field in _FIELDS:
                attr = "_" + field
                current: Counter = getattr(self, attr)
                shared = registry.counter(f"{prefix}.{field}")
                if shared is not current:
                    shared.inc(current.value)
                    setattr(self, attr, shared)
        return self

    # ------------------------------------------------------------------
    def record_hit(self) -> None:
        self._hits.inc()

    def record_miss(self) -> None:
        self._misses.inc()

    def record_put(self) -> None:
        self._puts.inc()

    def record_delete(self) -> None:
        self._deletes.inc()

    def record_eviction(self, count: int = 1) -> None:
        self._evictions.inc(count)

    def record_expired_hit(self) -> None:
        """A lookup found an entry whose expiration time had passed."""
        self._expired_hits.inc()

    def snapshot(self) -> StatsSnapshot:
        return StatsSnapshot(
            hits=self._hits.value,
            misses=self._misses.value,
            puts=self._puts.value,
            deletes=self._deletes.value,
            evictions=self._evictions.value,
            expired_hits=self._expired_hits.value,
        )

    def reset(self) -> None:
        for field in _FIELDS:
            getattr(self, "_" + field).reset()

    @property
    def hit_rate(self) -> float:
        return self.snapshot().hit_rate

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"CacheStats(hits={snap.hits}, misses={snap.misses}, "
            f"puts={snap.puts}, evictions={snap.evictions}, "
            f"hit_rate={snap.hit_rate:.3f})"
        )
