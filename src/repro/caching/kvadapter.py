"""Any key-value store as a cache (the paper's third caching approach).

"The key point is that via the key-value interface, any data store can serve
as a cache or secondary repository for one of the other data stores
functioning as the main data store."  This adapter implements the DSCL
:class:`~repro.caching.interface.Cache` interface over any
:class:`~repro.kv.interface.KeyValueStore`, so e.g. a local file system (or
even a second cloud store) can cache a primary cloud store.

A store never evicts, so this cache is unbounded unless ``max_entries`` is
given, in which case a simple FIFO of inserted keys bounds it (stores don't
report access recency, so LRU is not implementable at this layer).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Iterator

from ..errors import ConfigurationError, KeyNotFoundError
from ..kv.interface import KeyValueStore
from .interface import MISS, Cache

__all__ = ["KeyValueStoreCache"]


class KeyValueStoreCache(Cache):
    """Adapter: a :class:`KeyValueStore` behind the :class:`Cache` interface."""

    def __init__(
        self,
        store: KeyValueStore,
        *,
        max_entries: int | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if max_entries is not None and max_entries <= 0:
            raise ConfigurationError("max_entries must be positive or None")
        self.name = name if name is not None else f"kvcache({store.name})"
        self._store = store
        self._max_entries = max_entries
        self._insertion_order: OrderedDict[str, None] = OrderedDict()

    @property
    def store(self) -> KeyValueStore:
        return self._store

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        try:
            value = self._store.get(key)
        except KeyNotFoundError:
            self.stats.record_miss()
            return MISS
        self.stats.record_hit()
        return value

    def get_quiet(self, key: str) -> Any:
        try:
            return self._store.get(key)
        except KeyNotFoundError:
            return MISS

    def put(self, key: str, value: Any) -> None:
        self._store.put(key, value)
        self.stats.record_put()
        if self._max_entries is None:
            return
        self._insertion_order.pop(key, None)
        self._insertion_order[key] = None
        while len(self._insertion_order) > self._max_entries:
            victim, _ = self._insertion_order.popitem(last=False)
            if self._store.delete(victim):
                self.stats.record_eviction()

    def delete(self, key: str) -> bool:
        self._insertion_order.pop(key, None)
        removed = self._store.delete(key)
        if removed:
            self.stats.record_delete()
        return removed

    def clear(self) -> int:
        self._insertion_order.clear()
        return self._store.clear()

    def size(self) -> int:
        return self._store.size()

    def keys(self) -> Iterator[str]:
        return self._store.keys()

    def close(self) -> None:
        # The store is registered (and closed) by its owner, typically the
        # UDSM; adapters never own their backing store.
        pass
