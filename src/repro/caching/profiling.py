"""Hit-rate curve estimation from access traces (Mattson stack distances).

The paper's related work highlights systems that reason about *hit-rate
curves* -- MIMIR estimates them for live LRU servers, Cliffhanger allocates
memory across caches using their gradients.  The underlying classic is
Mattson's stack algorithm: for an LRU cache, an access hits iff its *reuse
(stack) distance* -- the number of distinct keys touched since the previous
access to the same key -- is smaller than the cache capacity.  One pass
over a trace therefore yields the hit rate of *every* cache size at once.

:class:`StackDistanceProfiler` records accesses (feed it your key stream,
or attach it to a cache via :meth:`wrap`) and answers
``hit_rate(cache_size)`` and whole curves, which is exactly what you need
to size a cache before paying for the memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Sequence

from ..errors import ConfigurationError
from ..obs.metrics import Counter, MetricsRegistry

__all__ = ["StackDistanceProfiler"]


class StackDistanceProfiler:
    """One-pass LRU stack-distance histogram over an access trace.

    Pass a shared :class:`~repro.obs.metrics.MetricsRegistry` to publish the
    running access / cold-miss totals as ``profiler.<name>.accesses`` and
    ``profiler.<name>.cold_misses`` counters (the registry counters *are*
    the profiler's counters, so there is one set of numbers).
    """

    def __init__(
        self,
        *,
        registry: MetricsRegistry | None = None,
        name: str = "stack",
    ) -> None:
        # LRU stack: most recent last.  OrderedDict gives O(n) distance
        # computation per access (index scan), fine for profiling runs;
        # the histogram is what we keep.
        self._stack: OrderedDict[str, None] = OrderedDict()
        self._histogram: dict[int, int] = {}
        if registry is not None:
            self._cold_misses = registry.counter(f"profiler.{name}.cold_misses")
            self._accesses = registry.counter(f"profiler.{name}.accesses")
        else:
            self._cold_misses = Counter()
            self._accesses = Counter()

    # ------------------------------------------------------------------
    def record(self, key: str) -> None:
        """Record one access to *key*."""
        self._accesses.inc()
        if key in self._stack:
            # Distance = how many keys are more recent than `key`.
            distance = 0
            for stacked in reversed(self._stack):
                if stacked == key:
                    break
                distance += 1
            self._histogram[distance] = self._histogram.get(distance, 0) + 1
            self._stack.move_to_end(key)
        else:
            self._cold_misses.inc()
            self._stack[key] = None

    def record_trace(self, keys: Iterable[str]) -> None:
        """Record a whole key stream."""
        for key in keys:
            self.record(key)

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self._accesses.value

    @property
    def cold_misses(self) -> int:
        return self._cold_misses.value

    @property
    def distinct_keys(self) -> int:
        return len(self._stack)

    def hit_rate(self, cache_size: int) -> float:
        """Predicted LRU hit rate for a cache of *cache_size* entries.

        An access hits iff its stack distance is strictly below the
        capacity; cold (first-touch) misses can never hit.
        """
        if cache_size < 0:
            raise ConfigurationError("cache_size must be non-negative")
        total = self._accesses.value
        if not total:
            return 0.0
        hits = sum(
            count for distance, count in self._histogram.items() if distance < cache_size
        )
        return hits / total

    def curve(self, sizes: Sequence[int]) -> list[tuple[int, float]]:
        """``(size, predicted_hit_rate)`` for each requested cache size."""
        return [(size, self.hit_rate(size)) for size in sizes]

    def optimal_size(self, target_hit_rate: float) -> int | None:
        """Smallest LRU capacity achieving *target_hit_rate* on this trace,
        or ``None`` if no finite cache can (cold misses bound the maximum)."""
        if not 0.0 <= target_hit_rate <= 1.0:
            raise ConfigurationError("target_hit_rate must be within [0, 1]")
        if not self._histogram:
            return None
        max_distance = max(self._histogram)
        for size in range(0, max_distance + 2):
            if self.hit_rate(size) >= target_hit_rate:
                return size
        return None

    # ------------------------------------------------------------------
    def wrap(self, cache: "object") -> "object":
        """Return a proxy of *cache* that records every ``get`` into this
        profiler while delegating everything else unchanged."""
        profiler = self

        class _ProfiledCache:
            def get(self, key: str):
                profiler.record(key)
                return cache.get(key)

            def __getattr__(self, attribute: str):
                return getattr(cache, attribute)

        return _ProfiledCache()
