"""The DSCL ``Cache`` interface.

Mirrors the paper's modular cache architecture (Figure 4): applications and
the DSCL interact with every cache -- in-process, remote-process, tiered --
through this one interface, and implementations can be swapped freely.

Lookups return the sentinel :data:`MISS` on absence rather than raising,
because a miss is the *expected* path on a cold cache and exceptions are the
wrong cost model for it.  ``None`` cannot signal a miss since ``None`` is a
perfectly good cached value.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator

from .stats import CacheStats

__all__ = ["Cache", "Miss", "MISS"]


class Miss:
    """Singleton sentinel for "not in the cache"."""

    _instance: "Miss | None" = None

    def __new__(cls) -> "Miss":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<MISS>"

    def __bool__(self) -> bool:
        return False


#: The cache-miss sentinel.
MISS = Miss()


class Cache(ABC):
    """Abstract cache: a bounded key-value map with eviction and stats.

    Unlike a :class:`~repro.kv.interface.KeyValueStore`, a cache may drop
    entries at any time (eviction), never raises on missing keys, and keeps
    hit/miss statistics.
    """

    #: Human-readable cache name for reports.
    name: str = "cache"

    def __init__(self) -> None:
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @abstractmethod
    def get(self, key: str) -> Any:
        """Return the cached value, or :data:`MISS`."""

    @abstractmethod
    def put(self, key: str, value: Any) -> None:
        """Insert or replace *key*; may trigger evictions."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove *key*; returns ``True`` if present."""

    @abstractmethod
    def clear(self) -> int:
        """Drop everything; returns the number of entries removed."""

    @abstractmethod
    def size(self) -> int:
        """Current number of entries."""

    @abstractmethod
    def keys(self) -> Iterator[str]:
        """Iterate current keys (no order promised; may race with eviction)."""

    def close(self) -> None:
        """Release resources (network caches).  Default: nothing to do."""

    # ------------------------------------------------------------------
    def contains(self, key: str) -> bool:
        """Membership test that does not count as a hit or miss."""
        return self.get_quiet(key) is not MISS

    def get_quiet(self, key: str) -> Any:
        """Like :meth:`get` but without touching statistics or recency.

        Default implementation falls back to :meth:`get`; caches that track
        recency should override so probes don't perturb eviction order.
        """
        return self.get(key)

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def __len__(self) -> int:
        return self.size()

    def __enter__(self) -> "Cache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} size={self.size()}>"
