"""Cache warm-up: persist cache contents across restarts (paper Section III).

"It is also often desirable to store some data from a cache persistently
before shutting down a cache process.  That way, when the cache is
restarted, it can quickly be brought to a warm state by reading in the data
previously stored persistently."

Our remote cache server already snapshots its own keyspace (``SAVE``); these
helpers do the same for *any* DSCL cache, persisting entries into any
key-value store.  Entries are stored as one snapshot object, and
:class:`~repro.caching.entry.CacheEntry` metadata (TTL remaining, version
tokens) survives the round trip: an entry that had 60 seconds to live when
saved has 60 seconds to live when restored, and revalidation tokens keep
working.
"""

from __future__ import annotations

import time
from typing import Any

from ..errors import CacheError
from ..kv.interface import KeyValueStore
from .entry import CacheEntry
from .interface import MISS, Cache

__all__ = ["save_cache", "load_cache"]

_FORMAT_VERSION = 1


def save_cache(
    cache: Cache,
    store: KeyValueStore,
    key: str = "cache-snapshot",
    *,
    now: float | None = None,
) -> int:
    """Persist every cache entry into *store* under *key*.

    TTLs are converted to *remaining* seconds so wall-clock restarts don't
    spuriously expire (or resurrect) entries.  Returns the number of
    entries saved.
    """
    current = time.time() if now is None else now
    entries: dict[str, dict[str, Any]] = {}
    for cache_key in list(cache.keys()):
        value = cache.get_quiet(cache_key)
        if value is MISS:
            continue  # evicted while we iterated
        if isinstance(value, CacheEntry):
            entries[cache_key] = {
                "value": value.value,
                "remaining_ttl": value.remaining_ttl(current),
                "version": value.version,
                "entry": True,
            }
        else:
            entries[cache_key] = {
                "value": value,
                "remaining_ttl": None,
                "version": None,
                "entry": False,
            }
    store.put(key, {"format": _FORMAT_VERSION, "saved_at": current, "entries": entries})
    return len(entries)


def load_cache(
    cache: Cache,
    store: KeyValueStore,
    key: str = "cache-snapshot",
    *,
    now: float | None = None,
    skip_expired: bool = True,
) -> int:
    """Warm *cache* from a snapshot previously written by :func:`save_cache`.

    Entries whose TTL ran out while the cache was down are skipped by
    default (they could be restored for revalidation by passing
    ``skip_expired=False``).  Returns the number of entries loaded.
    """
    snapshot = store.get(key)
    if not isinstance(snapshot, dict) or snapshot.get("format") != _FORMAT_VERSION:
        raise CacheError(f"no valid cache snapshot under {key!r}")
    current = time.time() if now is None else now
    loaded = 0
    for cache_key, data in snapshot["entries"].items():
        remaining = data["remaining_ttl"]
        if remaining is None:
            expires_at = None
        else:
            if remaining <= 0 and skip_expired:
                continue
            expires_at = current + remaining
        if data.get("entry", True):
            restored: Any = CacheEntry(
                value=data["value"],
                expires_at=expires_at,
                version=data["version"],
                cached_at=current,
            )
        else:
            restored = data["value"]  # bare values restore as bare values
        cache.put(cache_key, restored)
        loaded += 1
    return loaded
