"""Bloom-filter front for remote caches.

A remote-process cache charges a full network round trip to discover a
*miss* -- the worst deal in caching: pay latency, receive nothing.  A local
Bloom filter over the cache's keys answers "definitely not cached" in
nanoseconds, so miss-heavy workloads skip most of those wasted trips.

Properties of the classic Bloom filter apply:

* **no false negatives** -- if the filter says "absent", the key was never
  inserted, so short-circuiting the lookup is always safe;
* **tunable false positives** -- a "maybe present" still goes to the
  remote cache and may miss there; the configured ``fp_rate`` bounds how
  often (for up to ``expected_items`` inserted keys);
* **no deletion** -- deleted keys stay in the filter as false positives
  until :meth:`BloomFrontedCache.rebuild` resynchronises it from the
  cache's actual keys.
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Any, Iterator

from ..errors import ConfigurationError
from .interface import MISS, Cache

__all__ = ["BloomFilter", "BloomFrontedCache"]

_BLOOM_HEADER = struct.Struct("<III")  # size_bits, hash_count, items


class BloomFilter:
    """Plain Bloom filter over strings or bytes (bit array packed into an int)."""

    def __init__(self, expected_items: int = 10_000, fp_rate: float = 0.01) -> None:
        """Size the filter for *expected_items* at *fp_rate* false positives.

        Standard sizing: ``m = -n ln(p) / (ln 2)^2`` bits and
        ``k = (m/n) ln 2`` hash functions.
        """
        if expected_items < 1:
            raise ConfigurationError("expected_items must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ConfigurationError("fp_rate must be in (0, 1)")
        self.size_bits = max(8, int(-expected_items * math.log(fp_rate) / math.log(2) ** 2))
        self.hash_count = max(1, round(self.size_bits / expected_items * math.log(2)))
        self._bits = 0
        self._items = 0

    def _positions(self, key: "str | bytes") -> Iterator[int]:
        # Double hashing: two independent 64-bit values combine into k
        # positions (Kirsch-Mitzenmacher).
        data = key if isinstance(key, bytes) else key.encode("utf-8")
        digest = hashlib.sha256(data).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        for i in range(self.hash_count):
            yield (h1 + i * h2) % self.size_bits

    def add(self, key: "str | bytes") -> None:
        for position in self._positions(key):
            self._bits |= 1 << position
        self._items += 1

    def might_contain(self, key: "str | bytes") -> bool:
        """False = definitely absent; True = possibly present."""
        return all(self._bits >> position & 1 for position in self._positions(key))

    # ------------------------------------------------------------------
    # Persistence (used by the LSM engine to embed a filter per SSTable)
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize sizing + bit array; inverse of :meth:`from_bytes`."""
        width = (self.size_bits + 7) // 8
        return _BLOOM_HEADER.pack(self.size_bits, self.hash_count, self._items) + (
            self._bits.to_bytes(width, "little")
        )

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BloomFilter":
        """Rebuild a filter exactly as :meth:`to_bytes` captured it."""
        if len(payload) < _BLOOM_HEADER.size:
            raise ConfigurationError("truncated bloom filter payload")
        size_bits, hash_count, items = _BLOOM_HEADER.unpack_from(payload, 0)
        width = (size_bits + 7) // 8
        if len(payload) != _BLOOM_HEADER.size + width:
            raise ConfigurationError("bloom filter payload length mismatch")
        instance = cls.__new__(cls)
        instance.size_bits = size_bits
        instance.hash_count = hash_count
        instance._items = items
        instance._bits = int.from_bytes(payload[_BLOOM_HEADER.size :], "little")
        return instance

    def clear(self) -> None:
        self._bits = 0
        self._items = 0

    @property
    def approximate_items(self) -> int:
        """Keys added since the last clear (including duplicates)."""
        return self._items

    @property
    def saturation(self) -> float:
        """Fraction of bits set; above ~0.5 the FP rate degrades."""
        return self._bits.bit_count() / self.size_bits


class BloomFrontedCache(Cache):
    """A cache (typically remote) fronted by a local Bloom filter.

    ``get`` consults the filter first and returns :data:`MISS` locally when
    the key was never cached here; ``put`` inserts into both.  Deletions
    leave stale filter bits (safe -- only costs an occasional wasted trip);
    call :meth:`rebuild` periodically or after bulk deletions.

    Note the filter tracks keys cached *through this instance* (plus
    rebuilds).  Keys inserted by other clients of a shared server are
    invisible until a rebuild -- acceptable for the private-working-set
    pattern, wrong for a shared read-mostly cache; rebuild accordingly.
    """

    def __init__(
        self,
        inner: Cache,
        *,
        expected_items: int = 10_000,
        fp_rate: float = 0.01,
        name: str | None = None,
    ) -> None:
        super().__init__()
        self.name = name if name is not None else f"bloom({inner.name})"
        self._inner = inner
        self._filter = BloomFilter(expected_items, fp_rate)
        self._expected_items = expected_items
        self._fp_rate = fp_rate
        #: lookups answered locally (network trip avoided)
        self.short_circuits = 0

    @property
    def inner(self) -> Cache:
        return self._inner

    @property
    def bloom(self) -> BloomFilter:
        return self._filter

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        if not self._filter.might_contain(key):
            self.short_circuits += 1
            self.stats.record_miss()
            return MISS
        value = self._inner.get(key)
        if value is MISS:
            self.stats.record_miss()
        else:
            self.stats.record_hit()
        return value

    def get_quiet(self, key: str) -> Any:
        if not self._filter.might_contain(key):
            return MISS
        return self._inner.get_quiet(key)

    def put(self, key: str, value: Any) -> None:
        self._inner.put(key, value)
        self._filter.add(key)
        self.stats.record_put()

    def delete(self, key: str) -> bool:
        # The filter can't forget; the stale bit only costs a future trip.
        removed = self._inner.delete(key)
        if removed:
            self.stats.record_delete()
        return removed

    def clear(self) -> int:
        self._filter.clear()
        return self._inner.clear()

    def size(self) -> int:
        return self._inner.size()

    def keys(self) -> Iterator[str]:
        return self._inner.keys()

    def close(self) -> None:
        self._inner.close()

    # ------------------------------------------------------------------
    def rebuild(self) -> int:
        """Resynchronise the filter from the inner cache's actual keys.

        Returns the number of keys indexed.  Run after bulk deletions, on
        a timer, or when :attr:`BloomFilter.saturation` climbs.
        """
        fresh = BloomFilter(self._expected_items, self._fp_rate)
        count = 0
        for key in self._inner.keys():
            fresh.add(key)
            count += 1
        self._filter = fresh
        return count
