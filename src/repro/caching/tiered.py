"""Two-level cache: in-process L1 over remote-process L2.

The paper presents in-process and remote-process caches as complementary --
the former is far faster, the latter is shareable and scalable -- and its
third caching approach lets *any* store act as a secondary repository for
another.  :class:`TieredCache` composes the two: lookups try L1 first, fall
back to L2 (promoting hits into L1), and writes go to both.  The composite
implements the plain :class:`~repro.caching.interface.Cache` interface so it
can slot into the DSCL anywhere a single cache can, including under
:class:`~repro.caching.expiration.ExpiringCache`.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..obs import Observability, resolve_obs
from .interface import MISS, Cache

__all__ = ["TieredCache"]


class TieredCache(Cache):
    """L1/L2 composite cache with promote-on-hit."""

    def __init__(
        self,
        l1: Cache,
        l2: Cache,
        *,
        promote: bool = True,
        write_through: bool = True,
        name: str = "tiered",
        obs: Observability | None = None,
    ) -> None:
        """Compose two caches.

        :param promote: copy L2 hits into L1 (on by default).
        :param write_through: ``put`` writes both levels; when off, writes
            go to L1 only and reach L2 lazily via promotion's inverse
            (never), so leave it on unless L2 is being fed elsewhere.
        :param obs: observability bundle; composite hit/miss counters go to
            ``cache.<name>.*`` and lookups get a ``cache.get`` span whose
            ``level`` attribute says which tier served the hit.  Pass the
            same bundle to the member caches to see per-tier detail too.
        """
        super().__init__()
        self.name = name
        self._obs = resolve_obs(obs)
        if self._obs.enabled:
            self.stats.bind(self._obs.registry, f"cache.{name}")
        self._m_get = f"cache.{name}.get"
        self._m_put = f"cache.{name}.put"
        self.l1 = l1
        self.l2 = l2
        self._promote = promote
        self._write_through = write_through

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        with self._obs.stage("cache.get", metric=self._m_get) as span:
            value = self.l1.get(key)
            if value is not MISS:
                if span is not None:
                    span.set_attribute("level", "l1")
                self.stats.record_hit()
                return value
            value = self.l2.get(key)
            if value is not MISS:
                if span is not None:
                    span.set_attribute("level", "l2")
                if self._promote:
                    self.l1.put(key, value)
                self.stats.record_hit()
                return value
            self.stats.record_miss()
            return MISS

    def get_quiet(self, key: str) -> Any:
        value = self.l1.get_quiet(key)
        if value is not MISS:
            return value
        return self.l2.get_quiet(key)

    def put(self, key: str, value: Any) -> None:
        with self._obs.stage("cache.put", metric=self._m_put):
            self.l1.put(key, value)
            if self._write_through:
                self.l2.put(key, value)
            self.stats.record_put()

    def delete(self, key: str) -> bool:
        removed_l1 = self.l1.delete(key)
        removed_l2 = self.l2.delete(key)
        removed = removed_l1 or removed_l2
        if removed:
            self.stats.record_delete()
        return removed

    def clear(self) -> int:
        distinct = self.size()
        self.l1.clear()
        self.l2.clear()
        return distinct

    def size(self) -> int:
        """Number of distinct keys across both levels."""
        keys = set(self.l1.keys())
        keys.update(self.l2.keys())
        return len(keys)

    def keys(self) -> Iterator[str]:
        seen: set[str] = set()
        for level in (self.l1, self.l2):
            for key in level.keys():
                if key not in seen:
                    seen.add(key)
                    yield key

    def close(self) -> None:
        self.l1.close()
        self.l2.close()
