"""Client-side caching (paper Section III).

The DSCL supports multiple cache implementations behind one small
:class:`~repro.caching.interface.Cache` interface:

* :class:`~repro.caching.inprocess.InProcessCache` -- data lives inside the
  application process (the paper's Guava-cache analogue).  No IPC, no
  serialization; optionally stores references directly (fast, aliasing
  caveat) or defensive copies.
* :class:`~repro.caching.remote.RemoteProcessCache` -- data lives in a
  separate cache server process (the Redis/memcached analogue), shared
  across clients, paying real serialization + IPC costs.
* :class:`~repro.caching.tiered.TieredCache` -- an L1 in-process cache over
  an L2 remote cache.

Expiration times are managed *above* the cache by
:class:`~repro.caching.expiration.ExpiringCache`, exactly as the paper
prescribes: not every cache supports TTLs, and expired entries must be
*retained* so they can be revalidated against the origin store instead of
re-fetched in full.
"""

from .interface import MISS, Cache, Miss
from .entry import CacheEntry
from .stats import CacheStats
from .policies import (
    ClockPolicy,
    EvictionPolicy,
    FIFOPolicy,
    GreedyDualSizePolicy,
    LFUPolicy,
    LRUPolicy,
    make_policy,
)
from .inprocess import InProcessCache
from .remote import RemoteProcessCache
from .expiration import ExpiringCache, Freshness, LookupResult
from .tiered import TieredCache
from .kvadapter import KeyValueStoreCache
from .warmup import load_cache, save_cache
from .sharded import HashRing, ShardedCache
from .profiling import StackDistanceProfiler
from .bloom import BloomFilter, BloomFrontedCache
from .stale import ServeStaleStore

__all__ = [
    "Cache",
    "Miss",
    "MISS",
    "CacheEntry",
    "CacheStats",
    "EvictionPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "LFUPolicy",
    "ClockPolicy",
    "GreedyDualSizePolicy",
    "make_policy",
    "InProcessCache",
    "RemoteProcessCache",
    "ExpiringCache",
    "Freshness",
    "LookupResult",
    "TieredCache",
    "KeyValueStoreCache",
    "save_cache",
    "load_cache",
    "HashRing",
    "ShardedCache",
    "StackDistanceProfiler",
    "BloomFilter",
    "BloomFrontedCache",
    "ServeStaleStore",
]
