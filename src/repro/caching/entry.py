"""Cache entry metadata.

:class:`CacheEntry` is what :class:`~repro.caching.expiration.ExpiringCache`
stores inside the underlying cache: the value plus the expiration and
versioning metadata that the DSCL manages above the cache (paper Section III).
Entries are plain picklable objects so they can live in a remote-process
cache as easily as an in-process one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["CacheEntry"]


@dataclass
class CacheEntry:
    """A cached value plus DSCL-managed metadata.

    :param value: the cached object.
    :param expires_at: absolute expiry (``time.time()`` scale) or ``None``
        for no expiration.  An entry past its expiry is *not* discarded; it
        becomes a revalidation candidate.
    :param version: the origin store's version token at caching time, used
        for If-Modified-Since-style revalidation.
    :param cached_at: when the entry was created.
    """

    value: Any
    expires_at: float | None = None
    version: str | None = None
    cached_at: float = field(default_factory=time.time)

    def is_expired(self, now: float | None = None) -> bool:
        """True if the expiration time has elapsed (never for ``None``)."""
        if self.expires_at is None:
            return False
        return (time.time() if now is None else now) >= self.expires_at

    def remaining_ttl(self, now: float | None = None) -> float | None:
        """Seconds until expiry (may be negative); ``None`` if no expiry."""
        if self.expires_at is None:
            return None
        return self.expires_at - (time.time() if now is None else now)

    def refreshed(self, *, ttl: float | None, version: str | None, now: float | None = None) -> "CacheEntry":
        """Return a copy revalidated at *now* with a new TTL and version.

        Used when the origin confirms an expired entry is still current:
        the value is kept, the clock restarts.
        """
        current = time.time() if now is None else now
        return CacheEntry(
            value=self.value,
            expires_at=None if ttl is None else current + ttl,
            version=version if version is not None else self.version,
            cached_at=current,
        )
