"""Consistent-hash sharding across multiple caches.

The paper notes that remote-process caches "can often be scaled across
multiple processes and nodes to handle high request rates and increase
availability", and its related work covers load-balancing across multiple
memcached servers.  :class:`ShardedCache` implements the standard client-side
technique: a consistent-hash ring with virtual nodes maps every key to one
child cache, so capacity scales linearly with shard count and adding or
removing a shard remaps only ~1/N of the keyspace (unlike modulo hashing,
which remaps nearly everything).

Children are any :class:`~repro.caching.interface.Cache` -- typically one
:class:`~repro.caching.remote.RemoteProcessCache` per server -- and the
composite is itself a ``Cache``, so it slots into the DSCL unchanged.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Iterator

from ..errors import CacheError, ConfigurationError
from .interface import MISS, Cache

__all__ = ["HashRing", "ShardedCache"]


class HashRing:
    """Consistent-hash ring with virtual nodes."""

    def __init__(self, *, replicas: int = 64) -> None:
        """Create an empty ring with *replicas* virtual nodes per member."""
        if replicas < 1:
            raise ConfigurationError("replicas must be at least 1")
        self._replicas = replicas
        self._ring: list[tuple[int, str]] = []
        self._members: set[str] = set()

    @staticmethod
    def _hash(data: str) -> int:
        return int.from_bytes(hashlib.sha1(data.encode("utf-8")).digest()[:8], "big")

    # ------------------------------------------------------------------
    def add(self, member: str) -> None:
        """Add *member*; ~1/N of existing keys remap to it."""
        if member in self._members:
            return
        self._members.add(member)
        for replica in range(self._replicas):
            position = self._hash(f"{member}#{replica}")
            bisect.insort(self._ring, (position, member))

    def remove(self, member: str) -> None:
        """Remove *member*; only its keys remap (to their ring successors)."""
        if member not in self._members:
            return
        self._members.discard(member)
        self._ring = [(pos, m) for pos, m in self._ring if m != member]

    def locate(self, key: str) -> str:
        """The member owning *key*: first ring position at or after its hash."""
        if not self._ring:
            raise CacheError("hash ring has no members")
        position = self._hash(key)
        index = bisect.bisect_left(self._ring, (position, ""))
        if index == len(self._ring):
            index = 0  # wrap around
        return self._ring[index][1]

    @property
    def members(self) -> set[str]:
        return set(self._members)

    def __len__(self) -> int:
        return len(self._members)


class ShardedCache(Cache):
    """One logical cache over N shard caches via consistent hashing."""

    def __init__(
        self,
        shards: dict[str, Cache],
        *,
        replicas: int = 64,
        name: str = "sharded",
    ) -> None:
        """Compose *shards* (shard name -> cache).

        Shard names must be stable across processes for all clients to
        agree on key placement.
        """
        super().__init__()
        if not shards:
            raise ConfigurationError("a sharded cache needs at least one shard")
        self.name = name
        self._shards = dict(shards)
        self._ring = HashRing(replicas=replicas)
        for shard_name in self._shards:
            self._ring.add(shard_name)

    # ------------------------------------------------------------------
    def shard_for(self, key: str) -> Cache:
        """The child cache responsible for *key*."""
        return self._shards[self._ring.locate(key)]

    def add_shard(self, name: str, cache: Cache) -> None:
        """Scale out: add a shard.  ~1/N of keys now map to it (they will
        re-miss and refill; the old copies age out of their former shards)."""
        if name in self._shards:
            raise ConfigurationError(f"shard {name!r} already exists")
        self._shards[name] = cache
        self._ring.add(name)

    def remove_shard(self, name: str) -> Cache:
        """Scale in: detach and return a shard (its entries are dropped
        from the composite's view)."""
        if name not in self._shards:
            raise ConfigurationError(f"no shard named {name!r}")
        self._ring.remove(name)
        return self._shards.pop(name)

    @property
    def shard_names(self) -> list[str]:
        return sorted(self._shards)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        value = self.shard_for(key).get(key)
        if value is MISS:
            self.stats.record_miss()
        else:
            self.stats.record_hit()
        return value

    def get_quiet(self, key: str) -> Any:
        return self.shard_for(key).get_quiet(key)

    def put(self, key: str, value: Any) -> None:
        self.shard_for(key).put(key, value)
        self.stats.record_put()

    def delete(self, key: str) -> bool:
        removed = self.shard_for(key).delete(key)
        if removed:
            self.stats.record_delete()
        return removed

    def clear(self) -> int:
        return sum(shard.clear() for shard in self._shards.values())

    def size(self) -> int:
        return sum(shard.size() for shard in self._shards.values())

    def keys(self) -> Iterator[str]:
        for shard in self._shards.values():
            yield from shard.keys()

    def close(self) -> None:
        for shard in self._shards.values():
            shard.close()

    # ------------------------------------------------------------------
    def distribution(self) -> dict[str, int]:
        """Entries per shard (load-balance diagnostics)."""
        return {name: shard.size() for name, shard in sorted(self._shards.items())}
