"""Graceful degradation: serve the last known value when the origin is down.

The paper's enhanced clients exist because remote stores misbehave -- its
own evaluation shows a cloud store with high latency variance and outright
failures.  When that happens, most applications prefer a slightly old
answer over an error page.  :class:`ServeStaleStore` implements that
stale-while-revalidate contract at the key-value interface, so it works in
front of any backend (and composes with the circuit breaker and retry
wrappers; see ``docs/resilience.md`` for the recommended order):

* every successful read or write refreshes a bounded local snapshot of
  last-known-good values;
* when a read fails with a *degradable* error (circuit open, deadline
  exhausted, connection lost -- not semantic errors), the snapshot answers
  instead, provided it is younger than ``max_stale`` seconds;
* each stale serve schedules a background revalidation of that key, so
  the snapshot catches back up the moment the backend recovers.

A stale serve is never silent: it increments ``cache.stale_served``,
bumps the wrapper's :attr:`ServeStaleStore.stale_serves` counter, marks the
current span, and journals a ``stale_served`` event with the value's age.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Iterator

from ..errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    StoreConnectionError,
)
from ..kv.interface import KeyValueStore
from ..kv.wrappers import _DelegatingStore
from ..obs import Observability, resolve_obs

__all__ = ["ServeStaleStore", "DEFAULT_DEGRADE_ON"]

#: Error types worth degrading for: the backend is unreachable or out of
#: time.  Semantic errors (key not found...) always propagate.
DEFAULT_DEGRADE_ON: tuple[type[Exception], ...] = (
    CircuitOpenError,
    DeadlineExceededError,
    StoreConnectionError,
)

#: Snapshot entries retained by default (FIFO beyond this).
DEFAULT_MAX_ENTRIES = 4096


class ServeStaleStore(_DelegatingStore):
    """Answers reads from a last-known-good snapshot when the origin fails.

    The snapshot is *not* a cache in the read-path sense -- healthy reads
    always go to the inner store -- it is a parachute consulted only when
    the inner store raises a degradable error.
    """

    def __init__(
        self,
        inner: KeyValueStore,
        *,
        max_stale: float = 300.0,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        degrade_on: tuple[type[Exception], ...] = DEFAULT_DEGRADE_ON,
        revalidator: Callable[[Callable[[], None]], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        name: str | None = None,
        obs: Observability | None = None,
    ) -> None:
        """Wrap *inner*.

        :param max_stale: oldest snapshot age (seconds) still servable; a
            staler snapshot lets the original error propagate.
        :param max_entries: snapshot capacity (oldest-written evicted).
        :param degrade_on: error types that trigger stale serving.
        :param revalidator: how background revalidation thunks run; the
            default spawns a daemon thread per key.  Tests inject a
            collector and drain it synchronously.
        :param clock: injectable monotonic clock for age bookkeeping.
        """
        super().__init__(inner, name=name if name is not None else f"stale({inner.name})")
        if max_stale < 0:
            raise ConfigurationError("max_stale must be non-negative")
        if max_entries < 1:
            raise ConfigurationError("max_entries must be at least 1")
        self._max_stale = max_stale
        self._max_entries = max_entries
        self._degrade_on = degrade_on
        self._revalidator = revalidator
        self._clock = clock
        self._obs = resolve_obs(obs)
        self._lock = threading.Lock()
        self._snapshots: "OrderedDict[str, tuple[Any, float]]" = OrderedDict()
        self._revalidating: set[str] = set()
        #: reads answered from the snapshot because the origin failed
        self.stale_serves = 0
        #: background revalidations scheduled
        self.revalidations = 0

    # ------------------------------------------------------------------
    # Snapshot bookkeeping
    # ------------------------------------------------------------------
    def _remember(self, key: str, value: Any) -> None:
        with self._lock:
            self._snapshots.pop(key, None)
            self._snapshots[key] = (value, self._clock())
            while len(self._snapshots) > self._max_entries:
                self._snapshots.popitem(last=False)

    def _forget(self, key: str) -> None:
        with self._lock:
            self._snapshots.pop(key, None)

    def staleness(self, key: str) -> float | None:
        """Age in seconds of the snapshot for *key* (``None`` if absent)."""
        with self._lock:
            record = self._snapshots.get(key)
        if record is None:
            return None
        return self._clock() - record[1]

    # ------------------------------------------------------------------
    # Degraded read path
    # ------------------------------------------------------------------
    def _serve_stale(self, key: str, error: Exception) -> Any:
        with self._lock:
            record = self._snapshots.get(key)
        if record is None:
            raise error
        value, written_at = record
        age = self._clock() - written_at
        if age > self._max_stale:
            raise error
        self.stale_serves += 1
        if self._obs.enabled:
            self._obs.inc("cache.stale_served")
            self._obs.event(
                "stale_served", key=key, age=round(age, 6), error=type(error).__name__
            )
            self._obs.emit(
                "stale_served",
                store=self.name,
                key=key,
                age=round(age, 6),
                error=type(error).__name__,
            )
        self._schedule_revalidation(key)
        return value

    def _schedule_revalidation(self, key: str) -> None:
        with self._lock:
            if key in self._revalidating:
                return
            self._revalidating.add(key)
        self.revalidations += 1

        def revalidate() -> None:
            try:
                value = self._inner.get(key)
            except Exception:  # noqa: BLE001 - still down; keep the snapshot
                pass
            else:
                self._remember(key, value)
            finally:
                with self._lock:
                    self._revalidating.discard(key)

        if self._revalidator is not None:
            self._revalidator(revalidate)
        else:
            threading.Thread(
                target=revalidate, name=f"{self.name}-revalidate", daemon=True
            ).start()

    # ------------------------------------------------------------------
    # KeyValueStore surface
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        try:
            value = self._inner.get(key)
        except self._degrade_on as exc:
            return self._serve_stale(key, exc)
        self._remember(key, value)
        return value

    def get_with_version(self, key: str) -> tuple[Any, str]:
        # Version tokens cannot be trusted stale (the origin may have moved
        # on), so only the successful path feeds the snapshot here.
        value, version = self._inner.get_with_version(key)
        self._remember(key, value)
        return value, version

    def put(self, key: str, value: Any) -> None:
        self._inner.put(key, value)
        self._remember(key, value)

    def put_with_version(self, key: str, value: Any) -> str | None:
        version = self._inner.put_with_version(key, value)
        self._remember(key, value)
        return version

    def delete(self, key: str) -> bool:
        removed = self._inner.delete(key)
        self._forget(key)
        return removed

    def keys(self) -> Iterator[str]:
        return self._inner.keys()
