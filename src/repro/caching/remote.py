"""Remote-process cache (the paper's Redis/memcached role).

Adapts a :class:`~repro.net.client.CacheClient` to the DSCL
:class:`~repro.caching.interface.Cache` interface.  Values cross a
serializer on every operation and a TCP round trip carries them to a cache
server running in another process (possibly another machine) -- the two
costs the paper identifies as the price of sharing a cache across clients
(Section III, Figures 12/14/16/18).

TTLs passed by :class:`~repro.caching.expiration.ExpiringCache` are *not*
forwarded to the server: the paper is explicit that expiration must be
managed above the cache so that expired-but-maybe-still-valid entries stay
revalidatable instead of being purged.  Server-side TTLs remain available to
direct users of the protocol client.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import StoreConnectionError
from ..net.client import CacheClient
from ..obs import Observability, resolve_obs
from ..serialization import Serializer, default_serializer
from .interface import MISS, Cache

__all__ = ["RemoteProcessCache"]


class RemoteProcessCache(Cache):
    """DSCL cache backed by the remote cache server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        serializer: Serializer | None = None,
        namespace: str = "",
        client: CacheClient | None = None,
        name: str = "remote",
        obs: Observability | None = None,
    ) -> None:
        """Connect to a cache server.

        :param namespace: optional key prefix so several logical caches can
            share one server (the paper's "shared by multiple clients").
        :param client: reuse an existing connection instead of opening one;
            the cache then does not own (and will not close) it.
        :param obs: observability bundle; routes hit/miss counters into the
            shared registry, wraps operations in ``cache.*`` spans, and --
            when this cache opens its own connection -- times every TCP
            round trip as a nested ``net.roundtrip`` span.
        """
        super().__init__()
        self.name = name
        self._obs = resolve_obs(obs)
        if self._obs.enabled:
            self.stats.bind(self._obs.registry, f"cache.{name}")
        self._m_get = f"cache.{name}.get"
        self._m_put = f"cache.{name}.put"
        self._serializer = serializer if serializer is not None else default_serializer()
        self._prefix = (namespace + ":").encode("utf-8") if namespace else b""
        self._owns_client = client is None
        self._client = client if client is not None else CacheClient(host, port, obs=obs)

    # ------------------------------------------------------------------
    def _wire_key(self, key: str) -> bytes:
        return self._prefix + key.encode("utf-8")

    def get(self, key: str) -> Any:
        payload = self._client.get(self._wire_key(key))
        if payload is None:
            self.stats.record_miss()
            return MISS
        self.stats.record_hit()
        return self._serializer.loads(payload)

    def get_quiet(self, key: str) -> Any:
        payload = self._client.get(self._wire_key(key))
        if payload is None:
            return MISS
        return self._serializer.loads(payload)

    def put(self, key: str, value: Any) -> None:
        self._client.set(self._wire_key(key), self._serializer.dumps(value))
        self.stats.record_put()

    def delete(self, key: str) -> bool:
        removed = self._client.delete(self._wire_key(key)) > 0
        if removed:
            self.stats.record_delete()
        return removed

    def clear(self) -> int:
        """Drop this cache's namespace (or the whole server if unprefixed)."""
        if not self._prefix:
            count = self._client.dbsize()
            self._client.flushall()
            return count
        mine = [k for k in self._client.keys() if k.startswith(self._prefix)]
        if not mine:
            return 0
        return self._client.delete(*mine)

    def size(self) -> int:
        if not self._prefix:
            return self._client.dbsize()
        return sum(1 for k in self._client.keys() if k.startswith(self._prefix))

    def keys(self) -> Iterator[str]:
        for raw in self._client.keys():
            if raw.startswith(self._prefix):
                yield raw[len(self._prefix):].decode("utf-8")

    def close(self) -> None:
        if self._owns_client:
            self._client.close()

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Ask the server to snapshot its keyspace (warm-restart support)."""
        self._client.save()

    def ping(self) -> bool:
        """Health check; ``False`` if the server is unreachable."""
        try:
            return self._client.ping()
        except StoreConnectionError:
            return False
