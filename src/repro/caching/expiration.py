"""Expiration-time management above the cache (paper Section III).

The DSCL -- not the underlying cache -- owns expiration, for the two reasons
the paper gives:

1. not every cache supports expiration times, and one that does not can
   still implement the ``Cache`` interface;
2. caches that *do* support TTLs typically purge expired entries, but an
   expired entry is not necessarily obsolete -- the client may be able to
   cheaply *revalidate* it against the origin (like an HTTP GET with
   ``If-Modified-Since``) and keep using it, saving a full transfer.

:class:`ExpiringCache` therefore wraps any :class:`~repro.caching.interface.Cache`
and stores :class:`~repro.caching.entry.CacheEntry` records.  A lookup
reports one of three freshness states:

* ``FRESH``   -- entry present and unexpired: use it.
* ``EXPIRED`` -- entry present but past its expiration time: do not return
  it to the application until revalidated; the entry (and its version
  token) is handed back so the caller can revalidate.
* ``MISS``    -- nothing cached.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import ConfigurationError
from .entry import CacheEntry
from .interface import MISS, Cache

__all__ = ["Freshness", "LookupResult", "ExpiringCache"]


class Freshness(enum.Enum):
    """Freshness classification of a cache lookup."""

    FRESH = "fresh"
    EXPIRED = "expired"
    MISS = "miss"


@dataclass(frozen=True)
class LookupResult:
    """Outcome of :meth:`ExpiringCache.lookup`."""

    freshness: Freshness
    entry: CacheEntry | None = None

    @property
    def hit(self) -> bool:
        """True only for a *fresh* hit."""
        return self.freshness is Freshness.FRESH

    @property
    def value(self) -> Any:
        """The fresh value; raises if this was not a fresh hit."""
        if self.freshness is not Freshness.FRESH or self.entry is None:
            raise LookupError(f"no fresh value (state={self.freshness.value})")
        return self.entry.value


_MISS_RESULT = LookupResult(Freshness.MISS, None)


class ExpiringCache:
    """Expiration manager over any DSCL cache.

    This is deliberately *not* a :class:`Cache` subclass: its lookups return
    rich :class:`LookupResult` objects rather than bare values, because the
    expired-but-revalidatable state has no representation in the plain
    interface.  The simple ``get``/``put`` facade is still provided for
    callers that treat expired entries as misses.
    """

    def __init__(self, cache: Cache, *, default_ttl: float | None = None) -> None:
        """Wrap *cache*.

        :param default_ttl: TTL in seconds applied when ``put`` is called
            without one (``None`` = entries never expire by default).
        """
        if default_ttl is not None and default_ttl <= 0:
            raise ConfigurationError("default_ttl must be positive or None")
        self._cache = cache
        self._default_ttl = default_ttl

    @property
    def cache(self) -> Cache:
        """The wrapped cache (statistics live here)."""
        return self._cache

    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        value: Any,
        *,
        ttl: float | None | type(...) = ...,
        version: str | None = None,
        now: float | None = None,
    ) -> CacheEntry:
        """Cache *value* with expiration metadata; returns the entry stored.

        :param ttl: seconds until expiry; ``None`` = never; omitted = use
            the configured default.
        :param version: origin version token enabling revalidation later.
        """
        effective_ttl = self._default_ttl if ttl is ... else ttl
        if effective_ttl is not None and effective_ttl <= 0:
            raise ConfigurationError("ttl must be positive or None")
        current = time.time() if now is None else now
        entry = CacheEntry(
            value=value,
            expires_at=None if effective_ttl is None else current + effective_ttl,
            version=version,
            cached_at=current,
        )
        self._cache.put(key, entry)
        return entry

    def lookup(self, key: str, *, now: float | None = None) -> LookupResult:
        """Classify the cached state of *key* without discarding anything."""
        entry = self._cache.get(key)
        if entry is MISS:
            return _MISS_RESULT
        if not isinstance(entry, CacheEntry):
            # Someone bypassed the manager and cached a bare value; treat it
            # as a fresh, never-expiring entry rather than erroring.
            entry = CacheEntry(value=entry)
        if entry.is_expired(now):
            self._cache.stats.record_expired_hit()
            return LookupResult(Freshness.EXPIRED, entry)
        return LookupResult(Freshness.FRESH, entry)

    def refresh(
        self,
        key: str,
        *,
        ttl: float | None | type(...) = ...,
        version: str | None = None,
        now: float | None = None,
    ) -> CacheEntry | None:
        """Re-arm an (expired) entry after successful revalidation.

        Keeps the cached value, restarts its TTL, and records the version
        the origin confirmed.  Returns the refreshed entry, or ``None`` if
        the entry vanished (e.g. evicted) in the meantime.
        """
        entry = self._cache.get_quiet(key)
        if entry is MISS or not isinstance(entry, CacheEntry):
            return None
        effective_ttl = self._default_ttl if ttl is ... else ttl
        refreshed = entry.refreshed(ttl=effective_ttl, version=version, now=now)
        self._cache.put(key, refreshed)
        return refreshed

    # ------------------------------------------------------------------
    # Plain facade: expired == miss
    # ------------------------------------------------------------------
    def get(self, key: str, *, now: float | None = None) -> Any:
        """Return the fresh value or :data:`MISS` (expired counts as miss)."""
        result = self.lookup(key, now=now)
        return result.entry.value if result.hit and result.entry else MISS

    def delete(self, key: str) -> bool:
        return self._cache.delete(key)

    def clear(self) -> int:
        return self._cache.clear()

    def size(self) -> int:
        return self._cache.size()

    def keys(self) -> Iterator[str]:
        return self._cache.keys()

    def purge_expired(self, *, now: float | None = None) -> int:
        """Explicitly drop expired entries (e.g. under memory pressure).

        The paper keeps expired entries around by default; this is the
        opt-in reclamation knob.  Returns the number purged.
        """
        current = time.time() if now is None else now
        purged = 0
        for key in list(self._cache.keys()):
            entry = self._cache.get_quiet(key)
            if isinstance(entry, CacheEntry) and entry.is_expired(current):
                if self._cache.delete(key):
                    purged += 1
        return purged
