"""In-process cache (the paper's Guava-cache analogue).

Data is held inside the application process, so a hit costs a dict probe --
no IPC, no serialization.  Section III discusses the central design choice
this creates: storing the object (or a reference to it) *directly* is
fastest but means the application mutating the object mutates the cached
copy too; storing a *defensive copy* isolates the cache at the price of a
copy per operation.  Both modes are supported (``copy_on_put`` /
``copy_on_get``), and the ablation benchmark quantifies the difference.

Capacity can be bounded by entry count, by charged bytes, or both; the
eviction policy (default LRU) picks victims when either bound is exceeded.
"""

from __future__ import annotations

import copy
import pickle
import sys
import threading
from typing import Any, Callable, Iterator

from ..errors import CapacityError, ConfigurationError
from ..obs import Observability, resolve_obs
from .interface import MISS, Cache
from .policies import EvictionPolicy, make_policy

__all__ = ["InProcessCache", "default_sizer"]


def default_sizer(value: Any) -> int:
    """Charge bytes-like objects their length; everything else its pickled size.

    Only used when a byte capacity is configured, so the pickling cost is
    opt-in.
    """
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, memoryview):
        return value.nbytes
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return sys.getsizeof(value)


class InProcessCache(Cache):
    """Thread-safe bounded in-process cache with pluggable eviction."""

    def __init__(
        self,
        max_entries: int | None = 10_000,
        *,
        max_bytes: int | None = None,
        policy: EvictionPolicy | str = "lru",
        copy_on_put: bool = False,
        copy_on_get: bool = False,
        sizer: Callable[[Any], int] | None = None,
        name: str = "inprocess",
        obs: Observability | None = None,
    ) -> None:
        """Create a cache.

        :param max_entries: entry-count bound (``None`` = unbounded).
        :param max_bytes: charged-size bound (``None`` = unbounded).  Sizes
            come from *sizer* (default: :func:`default_sizer`).
        :param policy: an :class:`EvictionPolicy` instance or registry name.
        :param copy_on_put: store ``copy.deepcopy(value)`` instead of the
            caller's reference (isolates the cache from later mutation).
        :param copy_on_get: return a deep copy on hits (isolates callers
            from each other).
        :param obs: observability bundle; routes hit/miss/eviction counters
            into the shared registry (``cache.<name>.*``) and wraps
            ``get``/``put`` in ``cache.get`` / ``cache.put`` spans.
        """
        super().__init__()
        self._obs = resolve_obs(obs)
        if self._obs.enabled:
            self.stats.bind(self._obs.registry, f"cache.{name}")
        self._m_get = f"cache.{name}.get"
        self._m_put = f"cache.{name}.put"
        if max_entries is not None and max_entries <= 0:
            raise ConfigurationError("max_entries must be positive or None")
        if max_bytes is not None and max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive or None")
        self.name = name
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._policy = policy if isinstance(policy, EvictionPolicy) else make_policy(policy)
        self._copy_on_put = copy_on_put
        self._copy_on_get = copy_on_get
        self._sizer = sizer if sizer is not None else default_sizer
        self._data: dict[str, Any] = {}
        self._sizes: dict[str, int] = {}
        self._total_bytes = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @property
    def policy(self) -> EvictionPolicy:
        """The eviction policy in use (e.g. to feed GDS refetch costs)."""
        return self._policy

    @property
    def total_bytes(self) -> int:
        """Sum of charged sizes currently held (0 if no byte bound is set
        and nothing has been charged)."""
        with self._lock:
            return self._total_bytes

    # ------------------------------------------------------------------
    def get(self, key: str) -> Any:
        with self._obs.stage("cache.get", metric=self._m_get):
            with self._lock:
                if key not in self._data:
                    self.stats.record_miss()
                    return MISS
                self._policy.on_access(key)
                self.stats.record_hit()
                value = self._data[key]
            return copy.deepcopy(value) if self._copy_on_get else value

    def get_quiet(self, key: str) -> Any:
        with self._lock:
            if key not in self._data:
                return MISS
            value = self._data[key]
        return copy.deepcopy(value) if self._copy_on_get else value

    def put(self, key: str, value: Any) -> None:
        with self._obs.stage("cache.put", metric=self._m_put):
            self._put(key, value)

    def _put(self, key: str, value: Any) -> None:
        stored = copy.deepcopy(value) if self._copy_on_put else value
        size = self._sizer(stored) if self._max_bytes is not None else 1
        if self._max_bytes is not None and size > self._max_bytes:
            raise CapacityError(
                f"value of {size} bytes can never fit in cache bound of {self._max_bytes}"
            )
        with self._lock:
            if key in self._data:
                self._total_bytes -= self._sizes[key]
                self._data[key] = stored
                self._sizes[key] = size
                self._total_bytes += size
                self._policy.on_update(key, size)
            else:
                self._data[key] = stored
                self._sizes[key] = size
                self._total_bytes += size
                self._policy.on_insert(key, size)
            self.stats.record_put()
            self._evict_to_capacity()

    def _evict_to_capacity(self) -> None:
        """Evict until both bounds hold.  Caller holds the lock.

        The policy may select the just-inserted key (e.g. Greedy-Dual-Size
        deciding a large, cheap object is not worth caching); that is
        legitimate cache behaviour, and the recency-based policies never do
        it while older candidates remain.
        """
        while self._data and self._over_capacity():
            victim = self._policy.choose_victim()
            self._remove_entry(victim)
            self.stats.record_eviction()

    def _over_capacity(self) -> bool:
        if self._max_entries is not None and len(self._data) > self._max_entries:
            return True
        if self._max_bytes is not None and self._total_bytes > self._max_bytes:
            return True
        return False

    def _remove_entry(self, key: str) -> None:
        self._data.pop(key, None)
        self._total_bytes -= self._sizes.pop(key, 0)
        self._policy.on_remove(key)

    def delete(self, key: str) -> bool:
        with self._lock:
            if key not in self._data:
                return False
            self._remove_entry(key)
            self.stats.record_delete()
            return True

    def clear(self) -> int:
        with self._lock:
            count = len(self._data)
            for key in list(self._data):
                self._remove_entry(key)
            return count

    def size(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> Iterator[str]:
        with self._lock:
            snapshot = list(self._data.keys())
        return iter(snapshot)
