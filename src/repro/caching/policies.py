"""Cache replacement policies.

Section III of the paper names least-recently-used and greedy-dual-size as
replacement algorithms a cache can apply when full.  The in-process cache
takes its policy as a pluggable strategy object; this module implements the
two named policies plus the classics the related-work section discusses
(FIFO, LFU, and the CLOCK one-bit approximation of LRU used by optimized
memcached variants).

A policy tracks key metadata only -- the cache owns the values -- through
four notifications (``on_insert``, ``on_access``, ``on_update``,
``on_remove``) and answers ``choose_victim()`` when the cache must shed an
entry.  All policies here are O(1) or amortised O(log n) per operation.

Policies are not thread-safe on their own; the owning cache serialises calls
under its lock.
"""

from __future__ import annotations

import heapq
import itertools
from abc import ABC, abstractmethod
from collections import OrderedDict

from ..errors import CacheError, ConfigurationError

__all__ = [
    "EvictionPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "LFUPolicy",
    "ClockPolicy",
    "GreedyDualSizePolicy",
    "make_policy",
]


class EvictionPolicy(ABC):
    """Strategy interface for choosing eviction victims."""

    #: Registry identifier (see :func:`make_policy`).
    name: str = "abstract"

    @abstractmethod
    def on_insert(self, key: str, size: int) -> None:
        """A new key entered the cache with the given charged size."""

    @abstractmethod
    def on_access(self, key: str) -> None:
        """An existing key was read."""

    def on_update(self, key: str, size: int) -> None:
        """An existing key was overwritten (size may have changed)."""
        self.on_access(key)

    @abstractmethod
    def on_remove(self, key: str) -> None:
        """A key left the cache (deletion or eviction)."""

    @abstractmethod
    def choose_victim(self) -> str:
        """Pick the key to evict next.  Raises ``CacheError`` when empty."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of tracked keys."""


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used key (ordered dict, O(1))."""

    name = "lru"

    def __init__(self) -> None:
        self._order: OrderedDict[str, None] = OrderedDict()

    def on_insert(self, key: str, size: int) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_access(self, key: str) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def on_remove(self, key: str) -> None:
        self._order.pop(key, None)

    def choose_victim(self) -> str:
        if not self._order:
            raise CacheError("LRU policy has no keys to evict")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class FIFOPolicy(EvictionPolicy):
    """Evict in insertion order; accesses do not refresh position."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: OrderedDict[str, None] = OrderedDict()

    def on_insert(self, key: str, size: int) -> None:
        # Re-inserting an evicted-then-refetched key restarts its clock.
        self._order.pop(key, None)
        self._order[key] = None

    def on_access(self, key: str) -> None:
        pass  # FIFO ignores recency

    def on_update(self, key: str, size: int) -> None:
        pass  # overwrite keeps the original queue position

    def on_remove(self, key: str) -> None:
        self._order.pop(key, None)

    def choose_victim(self) -> str:
        if not self._order:
            raise CacheError("FIFO policy has no keys to evict")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class LFUPolicy(EvictionPolicy):
    """Evict the least frequently used key; LRU tie-break within a frequency.

    Constant-time implementation with frequency buckets (the classic O(1)
    LFU structure): a map key->frequency plus an ordered bucket per
    frequency, and a floating minimum-frequency pointer.
    """

    name = "lfu"

    def __init__(self) -> None:
        self._freq: dict[str, int] = {}
        self._buckets: dict[int, OrderedDict[str, None]] = {}
        self._min_freq = 0

    def _bump(self, key: str) -> None:
        freq = self._freq[key]
        bucket = self._buckets[freq]
        del bucket[key]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[key] = freq + 1
        self._buckets.setdefault(freq + 1, OrderedDict())[key] = None

    def on_insert(self, key: str, size: int) -> None:
        if key in self._freq:
            self._bump(key)
            return
        self._freq[key] = 1
        self._buckets.setdefault(1, OrderedDict())[key] = None
        self._min_freq = 1

    def on_access(self, key: str) -> None:
        if key in self._freq:
            self._bump(key)

    def on_remove(self, key: str) -> None:
        freq = self._freq.pop(key, None)
        if freq is None:
            return
        bucket = self._buckets.get(freq)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._buckets[freq]
        if self._freq and self._min_freq not in self._buckets:
            self._min_freq = min(self._buckets)

    def choose_victim(self) -> str:
        if not self._freq:
            raise CacheError("LFU policy has no keys to evict")
        if self._min_freq not in self._buckets:
            self._min_freq = min(self._buckets)
        return next(iter(self._buckets[self._min_freq]))

    def __len__(self) -> int:
        return len(self._freq)


class _ClockNode:
    __slots__ = ("key", "referenced", "prev", "next")

    def __init__(self, key: str) -> None:
        self.key = key
        self.referenced = False
        self.prev: "_ClockNode | None" = None
        self.next: "_ClockNode | None" = None


class ClockPolicy(EvictionPolicy):
    """One-bit CLOCK approximation of LRU (one extra bit per entry).

    Keys sit on a circular list; a hand sweeps, clearing reference bits and
    evicting the first key whose bit is already clear.  This is the
    low-overhead scheme the paper's related work credits to optimized
    memcached implementations.
    """

    name = "clock"

    def __init__(self) -> None:
        self._nodes: dict[str, _ClockNode] = {}
        self._hand: _ClockNode | None = None

    def _link_before_hand(self, node: _ClockNode) -> None:
        if self._hand is None:
            node.prev = node.next = node
            self._hand = node
            return
        tail = self._hand.prev
        assert tail is not None
        tail.next = node
        node.prev = tail
        node.next = self._hand
        self._hand.prev = node

    def on_insert(self, key: str, size: int) -> None:
        if key in self._nodes:
            self._nodes[key].referenced = True
            return
        node = _ClockNode(key)
        self._nodes[key] = node
        self._link_before_hand(node)

    def on_access(self, key: str) -> None:
        node = self._nodes.get(key)
        if node is not None:
            node.referenced = True

    def on_remove(self, key: str) -> None:
        node = self._nodes.pop(key, None)
        if node is None:
            return
        if node.next is node:
            self._hand = None
            return
        assert node.prev is not None and node.next is not None
        node.prev.next = node.next
        node.next.prev = node.prev
        if self._hand is node:
            self._hand = node.next

    def choose_victim(self) -> str:
        if self._hand is None:
            raise CacheError("CLOCK policy has no keys to evict")
        # Sweep: clear set bits; evict the first clear one.  Bounded by two
        # full revolutions (all bits set, then all clear).
        for _ in range(2 * len(self._nodes) + 1):
            node = self._hand
            assert node is not None and node.next is not None
            if node.referenced:
                node.referenced = False
                self._hand = node.next
            else:
                self._hand = node.next
                return node.key
        raise CacheError("CLOCK sweep failed to find a victim")  # pragma: no cover

    def __len__(self) -> int:
        return len(self._nodes)


class GreedyDualSizePolicy(EvictionPolicy):
    """Greedy-Dual-Size (Cao & Irani): evict the entry with the lowest
    ``H = L + cost / size``.

    Large, cheap-to-refetch objects go first; small or expensive ones are
    retained.  ``L`` is the inflation value: it rises to each victim's ``H``
    so long-idle entries age out.  Implemented as a lazy heap -- stale heap
    records are skipped at pop time.

    Costs default to 1.0 (which degenerates to size-aware LRU-like
    behaviour); callers that know per-key refetch cost (e.g. origin-store
    latency) can supply it via :meth:`set_cost`.
    """

    name = "gds"

    def __init__(self, default_cost: float = 1.0) -> None:
        if default_cost <= 0:
            raise ConfigurationError("default_cost must be positive")
        self._default_cost = default_cost
        self._heap: list[tuple[float, int, str]] = []
        self._h_values: dict[str, float] = {}
        self._sizes: dict[str, int] = {}
        self._costs: dict[str, float] = {}
        self._inflation = 0.0
        self._counter = itertools.count()

    def set_cost(self, key: str, cost: float) -> None:
        """Record the refetch cost of *key* before (or after) inserting it."""
        if cost <= 0:
            raise ConfigurationError("cost must be positive")
        self._costs[key] = cost
        if key in self._h_values:
            self._push(key)

    def _push(self, key: str) -> None:
        size = max(1, self._sizes.get(key, 1))
        cost = self._costs.get(key, self._default_cost)
        h_value = self._inflation + cost / size
        self._h_values[key] = h_value
        heapq.heappush(self._heap, (h_value, next(self._counter), key))

    def on_insert(self, key: str, size: int) -> None:
        self._sizes[key] = size
        self._push(key)

    def on_access(self, key: str) -> None:
        if key in self._h_values:
            self._push(key)  # restore full H at the current inflation

    def on_update(self, key: str, size: int) -> None:
        if key in self._h_values:
            self._sizes[key] = size
            self._push(key)

    def on_remove(self, key: str) -> None:
        self._h_values.pop(key, None)
        self._sizes.pop(key, None)
        self._costs.pop(key, None)

    def choose_victim(self) -> str:
        while self._heap:
            h_value, _tie, key = self._heap[0]
            current = self._h_values.get(key)
            if current is None or current != h_value:
                heapq.heappop(self._heap)  # stale record
                continue
            self._inflation = h_value
            return key
        raise CacheError("GDS policy has no keys to evict")

    def __len__(self) -> int:
        return len(self._h_values)


_POLICIES: dict[str, type[EvictionPolicy]] = {
    cls.name: cls
    for cls in (LRUPolicy, FIFOPolicy, LFUPolicy, ClockPolicy, GreedyDualSizePolicy)
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate a policy by registry name (``lru``, ``fifo``, ``lfu``,
    ``clock``, ``gds``)."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown eviction policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
