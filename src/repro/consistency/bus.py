"""The invalidation bus: key-change notifications over pub/sub.

Messages are ``<origin-id>:<key>`` so receivers can ignore their own
publications (a client that just wrote a key has already updated or
invalidated its own cache; dropping the fresh entry again would only cost
an extra miss).
"""

from __future__ import annotations

import threading
import uuid
from typing import Callable

from ..errors import StoreConnectionError
from ..net.client import CacheClient, SubscriberClient

__all__ = ["InvalidationBus"]


class InvalidationBus:
    """Publish and receive cache-invalidation events for a shared server.

    One bus instance per client process; ``origin_id`` identifies this
    process's publications so they can be filtered on receipt.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        channel: str = "cache-invalidation",
        origin_id: str | None = None,
        publisher: CacheClient | None = None,
    ) -> None:
        """Connect the bus.

        :param channel: pub/sub channel name; clients sharing data must
            share the channel.
        :param publisher: reuse an existing request/reply client for
            PUBLISH commands (a dedicated subscriber connection is always
            opened; pushes cannot share a request/reply socket).
        """
        self.origin_id = origin_id if origin_id is not None else uuid.uuid4().hex[:12]
        self._channel = channel.encode("utf-8")
        self._owns_publisher = publisher is None
        self._publisher = publisher if publisher is not None else CacheClient(host, port)
        self._subscriber = SubscriberClient(host, port)
        self._listeners: list[Callable[[str, str], None]] = []
        self._lock = threading.Lock()
        self._started = False
        #: events received from peers (own publications excluded)
        self.received = 0
        #: events published by this bus
        self.published = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin receiving events.  Idempotent."""
        with self._lock:
            if self._started:
                return
            self._started = True
        self._subscriber.subscribe(self._channel, self._on_message)

    def add_listener(self, listener: Callable[[str, str], None]) -> None:
        """Register ``listener(key, origin_id)`` for *peer* invalidations."""
        with self._lock:
            self._listeners.append(listener)

    def publish(self, key: str) -> int:
        """Announce that *key* changed; returns subscribers reached."""
        message = f"{self.origin_id}:{key}".encode("utf-8")
        count = self._publisher.publish(self._channel, message)
        self.published += 1
        return count

    def _on_message(self, _channel: bytes, payload: bytes) -> None:
        origin, _sep, key = payload.decode("utf-8", errors="replace").partition(":")
        if origin == self.origin_id:
            return  # our own write; local cache is already correct
        self.received += 1
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(key, origin)
            except Exception:  # noqa: BLE001 - one listener must not break others
                pass

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._subscriber.close()
        except StoreConnectionError:
            pass
        if self._owns_publisher:
            self._publisher.close()

    def __enter__(self) -> "InvalidationBus":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
