"""Coherent enhanced client: invalidate-on-write across processes.

A :class:`CoherentClient` is an
:class:`~repro.core.enhanced.EnhancedDataStoreClient` wired to an
:class:`~repro.consistency.bus.InvalidationBus`:

* every ``put``/``delete`` it performs is announced on the bus *after* the
  origin store write succeeds;
* every announcement from a *peer* drops the local cached entry for that
  key, so the next read refetches (or revalidates) from the origin.

The guarantee is bounded staleness equal to the bus propagation delay (one
server push), instead of the unbounded staleness of independent caches or
the fixed TTL bound of expiration alone.  TTLs still apply underneath and
cover clients that crash between writing and publishing.

Shared-cache caveat: when clients ALSO share a cache level (e.g. a tiered
cache whose L2 is one remote server), a receiver's invalidation drops the
key from the shared level too -- possibly removing the very copy the
writer just pushed there.  That is safe (the next read repopulates from
the origin) but costs one extra miss; it is the price of using key-grain
invalidation without version vectors.
"""

from __future__ import annotations

from typing import Any

from ..core.enhanced import EnhancedDataStoreClient
from ..kv.interface import KeyValueStore
from .bus import InvalidationBus

__all__ = ["CoherentClient"]


class CoherentClient(EnhancedDataStoreClient):
    """Enhanced client whose cache is kept coherent with its peers."""

    def __init__(
        self,
        store: KeyValueStore,
        bus: InvalidationBus,
        **client_options: Any,
    ) -> None:
        """Wrap *store* with caching plus bus-driven coherence.

        :param bus: the invalidation bus shared by all clients of *store*.
            The client starts it and registers itself; the caller still
            owns (and closes) the bus.
        :param client_options: forwarded to
            :class:`~repro.core.enhanced.EnhancedDataStoreClient`.
        """
        super().__init__(store, **client_options)
        self.bus = bus
        #: peer invalidations applied to the local cache
        self.peer_invalidations = 0
        bus.add_listener(self._on_peer_invalidation)
        bus.start()

    # ------------------------------------------------------------------
    def _on_peer_invalidation(self, key: str, _origin: str) -> None:
        if self.dscl.cache_delete(key):
            self.peer_invalidations += 1

    # ------------------------------------------------------------------
    def put(self, key: str, value: Any, *, ttl: float | None | type(...) = ...) -> None:
        super().put(key, value, ttl=ttl)
        self.bus.publish(key)

    def delete(self, key: str) -> bool:
        removed = super().delete(key)
        self.bus.publish(key)
        return removed
