"""Stronger cache consistency across clients (paper Section VII).

The paper's future work: "new techniques for providing data consistency
between different data stores.  The most compelling use case is providing
stronger cache consistency."  With write-through or invalidate policies a
*single* client's cache never serves stale data -- but a second client with
its own in-process cache has no way to learn about the first one's writes.

This package closes that gap with an **invalidation bus**: writers publish
the keys they change on a pub/sub channel of the shared cache server;
every :class:`CoherentClient` subscribes and drops its local cached entry
the moment a peer changes the key.  This is the classic
invalidate-on-write coherence protocol, built entirely client-side over
the cache server's SUBSCRIBE/PUBLISH commands -- no data store changes,
in keeping with the paper's philosophy.
"""

from .bus import InvalidationBus
from .coherent import CoherentClient

__all__ = ["InvalidationBus", "CoherentClient"]
