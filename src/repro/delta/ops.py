"""Delta operations and their compact wire format.

A delta is a sequence of two operation kinds (paper Figure 8):

* :class:`CopyOp` -- "the next *length* bytes equal base[*offset* :
  *offset*+*length*]"; costs a few bytes regardless of length.
* :class:`LiteralOp` -- raw bytes with no match in the base.

Wire format (all integers are LEB128 varints)::

    magic "RD1"  | varint base_len | varint target_len | ops...
    copy op:     0x01 | varint offset | varint length
    literal op:  0x02 | varint length | <length raw bytes>

``base_len`` and ``target_len`` let :func:`~repro.delta.encoder.apply_delta`
validate that a delta is being applied to the right base and produced the
expected output size, catching chain corruption early.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..errors import DeltaEncodingError

__all__ = ["CopyOp", "LiteralOp", "DeltaOp", "serialize_delta", "parse_delta"]

MAGIC = b"RD1"
_COPY = 0x01
_LITERAL = 0x02


@dataclass(frozen=True)
class CopyOp:
    """Copy ``length`` bytes from ``base[offset:]``."""

    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise DeltaEncodingError(
                f"invalid copy op (offset={self.offset}, length={self.length})"
            )

    @property
    def encoded_size(self) -> int:
        """Bytes this op occupies on the wire."""
        return 1 + _varint_size(self.offset) + _varint_size(self.length)


@dataclass(frozen=True)
class LiteralOp:
    """Emit raw bytes verbatim."""

    data: bytes

    def __post_init__(self) -> None:
        if not self.data:
            raise DeltaEncodingError("literal op must carry at least one byte")

    @property
    def encoded_size(self) -> int:
        return 1 + _varint_size(len(self.data)) + len(self.data)


DeltaOp = Union[CopyOp, LiteralOp]


# ----------------------------------------------------------------------
# LEB128 varints
# ----------------------------------------------------------------------
def _write_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise DeltaEncodingError(f"cannot encode negative varint {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise DeltaEncodingError("truncated varint in delta")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise DeltaEncodingError("varint too long in delta")


def _varint_size(value: int) -> int:
    size = 1
    while value >= 0x80:
        value >>= 7
        size += 1
    return size


# ----------------------------------------------------------------------
# Delta (de)serialization
# ----------------------------------------------------------------------
def serialize_delta(ops: Iterable[DeltaOp], *, base_len: int, target_len: int) -> bytes:
    """Encode *ops* into the compact wire format."""
    out = bytearray(MAGIC)
    _write_varint(base_len, out)
    _write_varint(target_len, out)
    for op in ops:
        if isinstance(op, CopyOp):
            out.append(_COPY)
            _write_varint(op.offset, out)
            _write_varint(op.length, out)
        elif isinstance(op, LiteralOp):
            out.append(_LITERAL)
            _write_varint(len(op.data), out)
            out.extend(op.data)
        else:
            raise DeltaEncodingError(f"unknown delta op {type(op).__name__}")
    return bytes(out)


def parse_delta(payload: bytes) -> tuple[list[DeltaOp], int, int]:
    """Decode the wire format; returns ``(ops, base_len, target_len)``."""
    if not payload.startswith(MAGIC):
        raise DeltaEncodingError("payload is not a delta (bad magic)")
    pos = len(MAGIC)
    base_len, pos = _read_varint(payload, pos)
    target_len, pos = _read_varint(payload, pos)
    ops: list[DeltaOp] = []
    while pos < len(payload):
        kind = payload[pos]
        pos += 1
        if kind == _COPY:
            offset, pos = _read_varint(payload, pos)
            length, pos = _read_varint(payload, pos)
            ops.append(CopyOp(offset, length))
        elif kind == _LITERAL:
            length, pos = _read_varint(payload, pos)
            if pos + length > len(payload):
                raise DeltaEncodingError("truncated literal in delta")
            ops.append(LiteralOp(payload[pos : pos + length]))
            pos += length
        else:
            raise DeltaEncodingError(f"unknown delta op byte 0x{kind:02x}")
    return ops, base_len, target_len
