"""Delta encoding (paper Section IV).

When a client updates an object, it can often send just the *difference*
from the version the server already has instead of the whole object.  The
paper's algorithm serializes objects to byte arrays, indexes every
``WINDOW_SIZE``-byte substring of the base version with a Rabin-Karp rolling
hash, and encodes the new version as a sequence of COPY (offset, length into
the base) and LITERAL (raw bytes) operations, expanding each match to its
maximal length.

Because most servers know nothing about deltas, Section IV also describes a
purely client-side protocol: updates are stored *as deltas under derived
keys*; after a configurable number of deltas the client writes a full object
and deletes the chain; reads fetch the base plus every delta and reconstruct.
:class:`~repro.delta.manager.DeltaStoreManager` implements that protocol
over any :class:`~repro.kv.interface.KeyValueStore`.
"""

from .rolling_hash import RollingHash
from .ops import CopyOp, LiteralOp, parse_delta, serialize_delta
from .encoder import DeltaCodec, apply_delta, encode_delta
from .manager import DeltaStoreManager

__all__ = [
    "RollingHash",
    "CopyOp",
    "LiteralOp",
    "serialize_delta",
    "parse_delta",
    "encode_delta",
    "apply_delta",
    "DeltaCodec",
    "DeltaStoreManager",
]
