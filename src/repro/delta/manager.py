"""Client-side delta management without server support (paper Section IV).

Most servers do not understand deltas.  The paper's fallback protocol runs
entirely in the client against a plain key-value server:

* **update**: store the delta under a derived key (``<key>##delta.<n>``);
  after ``consolidate_after`` deltas, write the full object back to the main
  key and delete the chain.
* **read**: fetch the base object plus every outstanding delta and
  reconstruct.

The chain state (how many deltas are outstanding) lives in a small metadata
record under ``<key>##meta``, so any client sharing the store can read the
chain.  The paper cautions that this mode "will often not be of much
benefit" because of the extra reads and writes -- the
``bench_ablation_delta`` benchmark quantifies exactly that trade-off, and
:attr:`DeltaStoreManager.bytes_written` / :attr:`bytes_read` expose the
transfer accounting it needs.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import DeltaChainBrokenError, KeyNotFoundError
from ..kv.interface import KeyValueStore
from ..serialization import Serializer, default_serializer
from .encoder import DEFAULT_WINDOW_SIZE, DeltaCodec

__all__ = ["DeltaStoreManager"]

_META_SUFFIX = "##meta"
_DELTA_SUFFIX = "##delta."


class DeltaStoreManager:
    """Delta-encoded updates over any plain key-value store."""

    def __init__(
        self,
        store: KeyValueStore,
        *,
        consolidate_after: int = 4,
        window_size: int = DEFAULT_WINDOW_SIZE,
        serializer: Serializer | None = None,
        max_delta_ratio: float = 0.9,
    ) -> None:
        """Manage delta chains in *store*.

        :param consolidate_after: outstanding-delta limit; the next update
            past it writes a full object and clears the chain.
        :param window_size: minimum match length for the encoder.
        :param max_delta_ratio: a delta is used only if it is smaller than
            this fraction of the full payload -- marginal savings are not
            worth the chain's read amplification.
        """
        if consolidate_after < 1:
            raise ValueError("consolidate_after must be at least 1")
        self._max_delta_ratio = max_delta_ratio
        self._store = store
        self._consolidate_after = consolidate_after
        self._codec = DeltaCodec(window_size)
        self._serializer = serializer if serializer is not None else default_serializer()
        #: payload bytes pushed to / pulled from the store (delta accounting)
        self.bytes_written = 0
        self.bytes_read = 0
        #: update counters for reports
        self.delta_writes = 0
        self.full_writes = 0

    # ------------------------------------------------------------------
    # Chain metadata
    # ------------------------------------------------------------------
    def _meta_key(self, key: str) -> str:
        return key + _META_SUFFIX

    def _delta_key(self, key: str, index: int) -> str:
        return f"{key}{_DELTA_SUFFIX}{index}"

    def _load_meta(self, key: str) -> dict[str, Any]:
        raw = self._store.get_or_default(self._meta_key(key))
        if raw is None:
            return {"deltas": 0}
        try:
            return json.loads(raw)
        except (TypeError, ValueError) as exc:
            raise DeltaChainBrokenError(f"corrupt chain metadata for {key!r}") from exc

    def _save_meta(self, key: str, meta: dict[str, Any]) -> None:
        self._store.put(self._meta_key(key), json.dumps(meta))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def _read_chain_bytes(self, key: str) -> bytes:
        """Fetch base + outstanding deltas and reconstruct current bytes."""
        try:
            base = self._store.get(key)
        except KeyNotFoundError:
            raise
        if not isinstance(base, (bytes, bytearray)):
            raise DeltaChainBrokenError(
                f"base object for {key!r} is not bytes (managed keys hold serialized payloads)"
            )
        current = bytes(base)
        self.bytes_read += len(current)
        meta = self._load_meta(key)
        for index in range(meta.get("deltas", 0)):
            try:
                delta = self._store.get(self._delta_key(key, index))
            except KeyNotFoundError:
                raise DeltaChainBrokenError(
                    f"delta {index} of {key!r} is missing from the store"
                ) from None
            self.bytes_read += len(delta)
            current = self._codec.apply(current, delta)
        return current

    def get(self, key: str) -> Any:
        """Read the current value of *key*, reconstructing through the chain."""
        return self._serializer.loads(self._read_chain_bytes(key))

    def contains(self, key: str) -> bool:
        return self._store.contains(key)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> bool:
        """Update *key*; returns ``True`` if the update went out as a delta.

        A delta is used when a previous version exists, the chain has room,
        and the delta is actually smaller than the full payload; otherwise a
        full object is written and the chain is reset.
        """
        payload = self._serializer.dumps(value)
        meta = self._load_meta(key)
        outstanding = meta.get("deltas", 0)
        if self._store.contains(key) and outstanding < self._consolidate_after:
            previous = self._read_chain_bytes(key)
            delta = self._codec.encode_if_profitable(
                previous, payload, max_ratio=self._max_delta_ratio
            )
            if delta is not None:
                self._store.put(self._delta_key(key, outstanding), delta)
                self.bytes_written += len(delta)
                self._save_meta(key, {"deltas": outstanding + 1})
                self.delta_writes += 1
                return True
        self._write_full(key, payload, outstanding)
        return False

    def _write_full(self, key: str, payload: bytes, outstanding: int) -> None:
        """Store a complete object and delete any superseded delta chain."""
        self._store.put(key, payload)
        self.bytes_written += len(payload)
        for index in range(outstanding):
            self._store.delete(self._delta_key(key, index))
        self._save_meta(key, {"deltas": 0})
        self.full_writes += 1

    def consolidate(self, key: str) -> None:
        """Force-collapse the chain for *key* into a single full object."""
        payload = self._read_chain_bytes(key)
        meta = self._load_meta(key)
        self._write_full(key, payload, meta.get("deltas", 0))

    def delete(self, key: str) -> bool:
        """Remove *key*, its chain, and its metadata."""
        meta = self._load_meta(key)
        for index in range(meta.get("deltas", 0)):
            self._store.delete(self._delta_key(key, index))
        self._store.delete(self._meta_key(key))
        return self._store.delete(key)

    def outstanding_deltas(self, key: str) -> int:
        """How many deltas are currently stacked on *key*."""
        return self._load_meta(key).get("deltas", 0)
