"""Rabin-Karp rolling hash.

The delta encoder needs the hash of every ``window_size``-byte substring of
a byte array.  Computing each from scratch would be O(n * w); a polynomial
rolling hash updates the previous window's value in O(1) as the window
slides one byte to the right -- exactly the technique the paper cites from
the Rabin-Karp string matching algorithm.

The hash of window ``b[i..i+w)`` is::

    H(i) = sum(b[i+j] * base^(w-1-j) for j in range(w))  mod  modulus

and sliding gives ``H(i+1) = (H(i) - b[i]*base^(w-1)) * base + b[i+w]``.

The defaults (base 257, Mersenne prime modulus 2^61-1) give a negligible
collision rate; collisions are harmless anyway because the encoder verifies
every candidate match byte-for-byte.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import ConfigurationError

__all__ = ["RollingHash"]

_DEFAULT_BASE = 257
_DEFAULT_MODULUS = (1 << 61) - 1  # Mersenne prime


class RollingHash:
    """Sliding-window polynomial hash over bytes."""

    def __init__(
        self,
        window_size: int,
        *,
        base: int = _DEFAULT_BASE,
        modulus: int = _DEFAULT_MODULUS,
    ) -> None:
        if window_size < 1:
            raise ConfigurationError("window_size must be at least 1")
        if base < 2 or modulus < 2:
            raise ConfigurationError("base and modulus must be at least 2")
        self.window_size = window_size
        self._base = base
        self._modulus = modulus
        # base^(window_size-1) mod modulus: the weight of the byte leaving
        # the window on each roll.
        self._out_weight = pow(base, window_size - 1, modulus)
        self._value = 0
        self._primed = False

    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """Hash of the current window (only meaningful once primed)."""
        return self._value

    def prime(self, window: bytes) -> int:
        """Initialise with a full window; returns its hash."""
        if len(window) != self.window_size:
            raise ConfigurationError(
                f"prime() needs exactly {self.window_size} bytes, got {len(window)}"
            )
        value = 0
        for byte in window:
            value = (value * self._base + byte) % self._modulus
        self._value = value
        self._primed = True
        return value

    def roll(self, out_byte: int, in_byte: int) -> int:
        """Slide one byte: *out_byte* leaves the left edge, *in_byte* enters
        the right.  Returns the new hash."""
        if not self._primed:
            raise ConfigurationError("roll() before prime()")
        value = (self._value - out_byte * self._out_weight) % self._modulus
        self._value = (value * self._base + in_byte) % self._modulus
        return self._value

    # ------------------------------------------------------------------
    @classmethod
    def hash_window(
        cls,
        data: bytes,
        *,
        base: int = _DEFAULT_BASE,
        modulus: int = _DEFAULT_MODULUS,
    ) -> int:
        """Direct (non-rolling) hash of *data* as one window.

        Used by tests to validate that rolling and direct computation agree.
        """
        value = 0
        for byte in data:
            value = (value * base + byte) % modulus
        return value

    @classmethod
    def all_windows(
        cls,
        data: bytes,
        window_size: int,
        *,
        base: int = _DEFAULT_BASE,
        modulus: int = _DEFAULT_MODULUS,
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(position, hash)`` for every window of *data* in O(n)."""
        if len(data) < window_size:
            return
        roller = cls(window_size, base=base, modulus=modulus)
        yield 0, roller.prime(data[:window_size])
        for pos in range(1, len(data) - window_size + 1):
            yield pos, roller.roll(data[pos - 1], data[pos + window_size - 1])
