"""Delta encoder/decoder (the paper's Rabin-Karp scheme, Section IV).

Encoding indexes every ``window_size``-byte substring of the *base* by its
rolling hash, then slides a window over the *target*: when the window's hash
hits the index and the bytes verify, the match is expanded to its maximal
extent (forwards, and backwards into the pending literal) and emitted as a
COPY; unmatched bytes accumulate into LITERALs.  Matches shorter than
``window_size`` are never produced -- the paper notes that encoding very
short matches costs more than sending the bytes raw.

The encoder is O(len(base) + len(target)) expected time.  Hash-bucket depth
is capped so adversarial inputs (e.g. megabytes of one repeated byte) stay
linear; capping only costs opportunity, never correctness.
"""

from __future__ import annotations

from ..errors import ConfigurationError, DeltaEncodingError
from .ops import CopyOp, DeltaOp, LiteralOp, parse_delta, serialize_delta
from .rolling_hash import RollingHash

__all__ = ["encode_delta", "apply_delta", "encode_delta_ops", "DeltaCodec"]

#: Paper's example minimum-match window ("e.g. 5"); 16 is a better default
#: for the pickled payloads this library moves, and benchmarks sweep it.
DEFAULT_WINDOW_SIZE = 16

_MAX_BUCKET_DEPTH = 8


def _index_base(base: bytes, window_size: int) -> dict[int, list[int]]:
    """Hash every window of *base*; bucket positions by hash (depth-capped)."""
    index: dict[int, list[int]] = {}
    for pos, digest in RollingHash.all_windows(base, window_size):
        bucket = index.setdefault(digest, [])
        if len(bucket) < _MAX_BUCKET_DEPTH:
            bucket.append(pos)
    return index


def encode_delta_ops(base: bytes, target: bytes, *, window_size: int = DEFAULT_WINDOW_SIZE) -> list[DeltaOp]:
    """Compute the operation list transforming *base* into *target*."""
    if window_size < 1:
        raise ConfigurationError("window_size must be at least 1")
    ops: list[DeltaOp] = []
    if not target:
        return ops
    if len(base) < window_size or len(target) < window_size:
        return [LiteralOp(target)]

    index = _index_base(base, window_size)
    roller = RollingHash(window_size)
    pos = 0
    literal_start = 0
    digest = roller.prime(target[:window_size])
    limit = len(target) - window_size

    while pos <= limit:
        match_base = -1
        match_len = 0
        for candidate in index.get(digest, ()):
            if base[candidate : candidate + window_size] != target[pos : pos + window_size]:
                continue  # hash collision
            # Expand forwards to the maximal match.
            length = window_size
            while (
                candidate + length < len(base)
                and pos + length < len(target)
                and base[candidate + length] == target[pos + length]
            ):
                length += 1
            if length > match_len:
                match_base, match_len = candidate, length
        if match_len:
            # Expand backwards into the pending literal.
            while (
                pos > literal_start
                and match_base > 0
                and base[match_base - 1] == target[pos - 1]
            ):
                pos -= 1
                match_base -= 1
                match_len += 1
            if pos > literal_start:
                ops.append(LiteralOp(target[literal_start:pos]))
            ops.append(CopyOp(match_base, match_len))
            pos += match_len
            literal_start = pos
            if pos <= limit:
                digest = roller.prime(target[pos : pos + window_size])
            continue
        if pos < limit:
            digest = roller.roll(target[pos], target[pos + window_size])
        pos += 1

    if literal_start < len(target):
        ops.append(LiteralOp(target[literal_start:]))
    return ops


def encode_delta(base: bytes, target: bytes, *, window_size: int = DEFAULT_WINDOW_SIZE) -> bytes:
    """Encode *target* as a delta against *base* (wire format)."""
    ops = encode_delta_ops(base, target, window_size=window_size)
    return serialize_delta(ops, base_len=len(base), target_len=len(target))


def apply_delta(base: bytes, delta: bytes) -> bytes:
    """Reconstruct the target from *base* and a wire-format *delta*.

    Validates that the delta was produced against a base of this length and
    that the reconstruction has the promised size, so chain corruption is
    caught here rather than surfacing as silent data damage.
    """
    ops, base_len, target_len = parse_delta(delta)
    if base_len != len(base):
        raise DeltaEncodingError(
            f"delta expects a base of {base_len} bytes, got {len(base)}"
        )
    out = bytearray()
    for op in ops:
        if isinstance(op, CopyOp):
            end = op.offset + op.length
            if end > len(base):
                raise DeltaEncodingError(
                    f"copy op [{op.offset}:{end}) exceeds base length {len(base)}"
                )
            out.extend(base[op.offset : end])
        else:
            out.extend(op.data)
    if len(out) != target_len:
        raise DeltaEncodingError(
            f"reconstruction produced {len(out)} bytes, delta promised {target_len}"
        )
    return bytes(out)


class DeltaCodec:
    """Bundles a window size and exposes encode/apply plus a profit test."""

    def __init__(self, window_size: int = DEFAULT_WINDOW_SIZE) -> None:
        if window_size < 1:
            raise ConfigurationError("window_size must be at least 1")
        self.window_size = window_size

    def encode(self, base: bytes, target: bytes) -> bytes:
        return encode_delta(base, target, window_size=self.window_size)

    def apply(self, base: bytes, delta: bytes) -> bytes:
        return apply_delta(base, delta)

    def encode_if_profitable(
        self, base: bytes, target: bytes, *, max_ratio: float = 1.0
    ) -> bytes | None:
        """Return the delta only when it is worth using.

        "Worth using" means ``len(delta) < max_ratio * len(target)``.  The
        default (1.0) accepts any saving at all; callers that pay extra for
        delta chains (like the server-less
        :class:`~repro.delta.manager.DeltaStoreManager`) should demand a
        real saving, e.g. ``max_ratio=0.9``.  Unrelated versions and
        incompressible changes fall back to a full write, as the paper
        intends.
        """
        if not 0.0 < max_ratio <= 1.0:
            raise ConfigurationError("max_ratio must be in (0, 1]")
        delta = self.encode(base, target)
        return delta if len(delta) < max_ratio * len(target) else None
