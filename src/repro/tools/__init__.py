"""Operational tooling built on the common key-value interface.

Because every store implements the same contract, operational jobs --
migrating data between stores, verifying two stores agree -- are written
once and work across any pair of backends (the substitutability argument
of paper Section II.A, applied to operations).
"""

from .migration import MigrationReport, copy_store, verify_stores

__all__ = ["copy_store", "verify_stores", "MigrationReport"]
