"""Store-to-store migration and verification.

The UDSM's pitch is that "different data stores can be substituted ... as
needed" -- which, in practice, requires moving the data.  :func:`copy_store`
streams every key from a source store to a destination in batches (using
``put_many`` so SQL-backed destinations commit per batch, not per key) with
optional filtering and value transformation; :func:`verify_stores` checks
that two stores agree afterwards.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..errors import DataStoreError, KeyNotFoundError
from ..kv.interface import KeyValueStore

__all__ = ["MigrationReport", "copy_store", "verify_stores"]


@dataclass
class MigrationReport:
    """Outcome of a :func:`copy_store` run."""

    copied: int = 0
    skipped: int = 0
    missing: int = 0          # keys that vanished mid-migration
    elapsed_seconds: float = 0.0
    errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def keys_per_second(self) -> float:
        return self.copied / self.elapsed_seconds if self.elapsed_seconds else 0.0

    def __str__(self) -> str:
        return (
            f"copied {self.copied} keys in {self.elapsed_seconds:.2f}s "
            f"({self.keys_per_second:.0f} keys/s), skipped {self.skipped}, "
            f"missing {self.missing}, errors {len(self.errors)}"
        )


def copy_store(
    source: KeyValueStore,
    destination: KeyValueStore,
    *,
    batch_size: int = 100,
    key_filter: Callable[[str], bool] | None = None,
    transform: Callable[[str, Any], Any] | None = None,
    overwrite: bool = True,
    on_progress: Callable[[MigrationReport], None] | None = None,
    max_errors: int = 0,
) -> MigrationReport:
    """Copy every key from *source* to *destination*.

    :param batch_size: keys per ``put_many`` batch (one transaction on SQL
        destinations).
    :param key_filter: copy only keys for which this returns true.
    :param transform: ``(key, value) -> new_value`` applied in flight
        (e.g. re-encrypting under a new key, stripping fields).
    :param overwrite: when false, keys already present at the destination
        are skipped rather than replaced.
    :param on_progress: called after each batch with the running report.
    :param max_errors: per-key failures tolerated before aborting
        (0 = fail fast).  Failures are recorded in ``report.errors``.
    """
    if batch_size < 1:
        raise DataStoreError("batch_size must be at least 1")
    report = MigrationReport()
    start = time.perf_counter()
    batch: dict[str, Any] = {}

    def flush() -> None:
        if not batch:
            return
        destination.put_many(dict(batch))
        report.copied += len(batch)
        batch.clear()
        report.elapsed_seconds = time.perf_counter() - start
        if on_progress is not None:
            on_progress(report)

    for key in list(source.keys()):
        if key_filter is not None and not key_filter(key):
            report.skipped += 1
            continue
        if not overwrite and destination.contains(key):
            report.skipped += 1
            continue
        try:
            value = source.get(key)
            if transform is not None:
                value = transform(key, value)
        except KeyNotFoundError:
            report.missing += 1
            continue
        except Exception as exc:  # noqa: BLE001 - per-key fault isolation
            report.errors.append((key, str(exc)))
            if len(report.errors) > max_errors:
                flush()
                raise DataStoreError(
                    f"migration aborted after {len(report.errors)} errors "
                    f"(last: {key!r}: {exc})"
                ) from exc
            continue
        batch[key] = value
        if len(batch) >= batch_size:
            flush()
    flush()
    report.elapsed_seconds = time.perf_counter() - start
    return report


def verify_stores(
    first: KeyValueStore,
    second: KeyValueStore,
    *,
    sample: Iterable[str] | None = None,
) -> list[str]:
    """Return the keys on which the two stores disagree.

    Checks keys present in either store (or just *sample* when given):
    a key is reported when it is missing from one side or its values
    differ.  An empty result means the stores agree.
    """
    if sample is not None:
        keys = set(sample)
    else:
        keys = set(first.keys()) | set(second.keys())
    sentinel = object()
    differing = []
    for key in sorted(keys):
        left = first.get_or_default(key, sentinel)
        right = second.get_or_default(key, sentinel)
        if left is sentinel or right is sentinel:
            if left is not right:
                differing.append(key)
        elif left != right:
            differing.append(key)
    return differing
