"""Small filesystem durability helpers shared by the durable backends.

The one subtlety worth a module: ``os.replace`` makes a rename *atomic*
but not *durable*.  POSIX only promises the new directory entry survives
a power failure after the directory itself has been fsynced -- fsyncing
the file's data is not enough.  Every temp-write-then-rename path that
claims durability (``FileSystemStore`` with ``fsync=True``, SSTable and
MANIFEST writes in the LSM engine) must therefore follow the rename with
:func:`fsync_dir` on the parent.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["fsync_dir"]


def fsync_dir(path: str | os.PathLike[str]) -> None:
    """Fsync the *directory* at *path* so renames inside it are durable.

    A no-op on platforms that cannot open directories read-only (Windows
    raises ``PermissionError``/``OSError``); on POSIX this is the step
    that makes an ``os.replace`` survive power loss.
    """
    try:
        fd = os.open(Path(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX platform
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
