#!/usr/bin/env python
"""Cluster serving contract check (``make check-cluster``).

Guards the headline promises of ``docs/cluster.md`` over real sockets:

* an **L1** client can write the whole keyspace through any single node
  (the servers forward misrouted keys to their owners);
* an **L3** client hash-routes every operation straight to the owning
  shard -- zero redirects while the topology is stable;
* adding a shard **mid-traffic** loses nothing: every key written before
  and during the membership change stays readable, key movement stays
  bounded near K/N, and the L3 client converges on the new epoch without
  a single reconnect;
* removing a shard drains its keys to the survivors and the L3 client
  routes around the dead member, again without reconnecting.

Everything runs in-process against ``InMemoryStore`` shards -- no
timing-based waits, zero real sleeps.  Exit status 0 when the contract
holds; 1 otherwise.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import ClusterCoordinator, moved_pairs  # noqa: E402
from repro.kv import InMemoryStore  # noqa: E402
from repro.obs import EventLog, Observability  # noqa: E402

KEYSPACE = 200


def _expect(errors: list[str], condition: bool, message: str) -> None:
    if not condition:
        errors.append(message)


def _boot(obs: Observability | None = None) -> ClusterCoordinator:
    coordinator = ClusterCoordinator(obs=obs)
    for index in range(3):
        coordinator.add_shard(f"shard-{index}", InMemoryStore())
    return coordinator


def check_l1_writes_land_on_owners() -> list[str]:
    """Write through one node at L1; every key must land on its owner."""
    errors: list[str] = []
    coordinator = _boot()
    try:
        with coordinator.client(level=1) as client:
            client.put_many({f"key-{i}": {"n": i} for i in range(KEYSPACE)})
        topology = coordinator.topology
        misplaced = 0
        total = 0
        for name in topology.members:
            for key in coordinator.store(name).keys():
                total += 1
                if topology.owner(key) != name:
                    misplaced += 1
        _expect(errors, total == KEYSPACE,
                f"{total} keys stored for {KEYSPACE} written")
        _expect(errors, misplaced == 0,
                f"{misplaced} keys on non-owner shards after L1 writes")
        spread = [coordinator.store(name).size() for name in topology.members]
        _expect(errors, all(count > 0 for count in spread),
                f"keys did not spread across every shard: {spread}")
    finally:
        coordinator.stop()
    return errors


def check_l3_routes_without_redirects() -> list[str]:
    """A topology-fresh L3 client never sees MOVED and reads everything."""
    errors: list[str] = []
    coordinator = _boot()
    try:
        expected = {f"key-{i}": {"n": i} for i in range(KEYSPACE)}
        with coordinator.client(level=1) as seeder:
            seeder.put_many(expected)
        with coordinator.client(level=3) as client:
            readback = {key: client.get(key) for key in expected}
            _expect(errors, readback == expected, "L3 read-back mismatch")
            _expect(errors, client.redirects == 0,
                    f"{client.redirects} redirects on a stable topology")
            _expect(errors, client.connection_reconnects() == 0,
                    "L3 client reconnected during steady-state reads")
    finally:
        coordinator.stop()
    return errors


def check_live_shard_add() -> list[str]:
    """Add a shard mid-traffic: zero lost keys, bounded movement, epoch
    convergence without reconnecting."""
    errors: list[str] = []
    obs = Observability(events=EventLog())
    coordinator = _boot(obs)
    try:
        expected = {f"key-{i}": {"n": i} for i in range(KEYSPACE)}
        with coordinator.client(level=3) as client:
            client.put_many(expected)
            epoch_before = client.epoch

            stop = threading.Event()
            live: dict[str, int] = {}
            failures: list[str] = []

            def writer() -> None:
                index = 0
                try:
                    with coordinator.client(level=3) as own:
                        while not stop.is_set():
                            own.put(f"live-{index}", index)
                            live[f"live-{index}"] = index
                            index += 1
                except Exception as exc:  # noqa: BLE001 - surfaced as a failure
                    failures.append(f"writer died mid-rebalance: {exc!r}")

            thread = threading.Thread(target=writer)
            thread.start()
            try:
                while len(live) < 10:  # guarantee overlap, no sleeps
                    pass
                report = coordinator.add_shard("shard-3", InMemoryStore())
            finally:
                stop.set()
                thread.join()
            errors.extend(failures)

            expected.update(live)
            readback = client.get_many(list(expected))
            lost = [key for key, value in expected.items()
                    if readback.get(key) != value]
            _expect(errors, not lost,
                    f"{len(lost)} of {len(expected)} keys lost after the "
                    f"live add (e.g. {lost[:3]})")

            # Movement economics: only survivor->added pairs, bounded near K/4.
            allowed = {f"{src}->{dst}" for src, dst in
                       moved_pairs(*_epochs(coordinator, report))}
            _expect(errors, set(report.pairs) <= allowed,
                    f"keys moved along unexpected pairs: {report.pairs}")
            ceiling = int(len(expected) * 0.45) + 1
            _expect(errors, 0 < report.moved <= ceiling,
                    f"moved {report.moved} keys; expected within (0, {ceiling}]")

            _expect(errors, client.epoch == epoch_before + 1,
                    f"client stuck at epoch {client.epoch}")
            _expect(errors, client.connection_reconnects() == 0,
                    f"L3 convergence cost {client.connection_reconnects()} "
                    f"reconnects; must be zero")
        kinds = [record["kind"] for record in obs.events.tail()]
        _expect(errors, "topology_changed" in kinds,
                "no topology_changed event emitted")
        _expect(errors, "rebalance" in kinds, "no rebalance event emitted")
    finally:
        coordinator.stop()
    return errors


def _epochs(coordinator, report):
    """Reconstruct the old/new topologies a report describes (for pair
    validation: the new topology is current; the old one is it minus the
    member the report added)."""
    new = coordinator.topology
    added = {name for name in new.members
             if any(pair.endswith(f"->{name}") for pair in report.pairs)}
    old = new
    for name in added:
        old = old.without_shard(name)
    return old, new


def check_live_shard_remove() -> list[str]:
    """Remove a shard: its keys drain to survivors and the L3 client
    routes around the dead member without reconnecting survivors."""
    errors: list[str] = []
    coordinator = _boot()
    try:
        expected = {f"key-{i}": {"n": i} for i in range(KEYSPACE)}
        with coordinator.client(level=3) as client:
            client.put_many(expected)
            held_before = coordinator.store("shard-1").size()
            report = coordinator.remove_shard("shard-1")
            _expect(errors, report.moved >= held_before,
                    f"only {report.moved} keys drained from a shard "
                    f"holding {held_before}")
            _expect(
                errors,
                all(pair.startswith("shard-1->") for pair in report.pairs),
                f"keys moved between survivors: {report.pairs}",
            )
            readback = client.get_many(list(expected))
            lost = [key for key, value in expected.items()
                    if readback.get(key) != value]
            _expect(errors, not lost,
                    f"{len(lost)} keys lost after removing a shard")
            _expect(errors, client.epoch == coordinator.epoch,
                    f"client epoch {client.epoch} != cluster {coordinator.epoch}")
        survivors = [coordinator.store(name).size()
                     for name in coordinator.shards]
        _expect(errors, sum(survivors) == KEYSPACE,
                f"survivors hold {sum(survivors)} keys, wrote {KEYSPACE}")
    finally:
        coordinator.stop()
    return errors


CHECKS = [
    ("L1 writes land on their owners", check_l1_writes_land_on_owners),
    ("L3 routes with zero redirects", check_l3_routes_without_redirects),
    ("live shard add loses nothing", check_live_shard_add),
    ("live shard remove drains cleanly", check_live_shard_remove),
]


def main() -> int:
    failed = False
    for label, check in CHECKS:
        problems = check()
        if problems:
            failed = True
            print(f"FAIL  {label}")
            for problem in problems:
                print(f"      - {problem}")
        else:
            print(f"ok    {label}")
    if failed:
        print("\ncluster contract violated -- see docs/cluster.md")
        return 1
    print("\ncluster contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
