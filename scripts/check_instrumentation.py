#!/usr/bin/env python
"""Instrumentation-coverage check (``make check-obs``).

Guards the observability contract of ``docs/observability.md``: every public
:class:`repro.kv.interface.KeyValueStore` operation, when performed through
an instrumented wrapper, must record at least one metric.  Two failure
modes are caught:

1. **A silent gap** -- an operation driven through
   :class:`~repro.udsm.monitoring.MonitoredStore` (with a
   :class:`~repro.udsm.monitoring.PerformanceMonitor` bound to a
   :class:`~repro.obs.metrics.MetricsRegistry`) leaves the registry
   untouched.
2. **An unreviewed addition** -- a new public method appears on the
   interface without either a driver in the contract table below or an
   explicit exemption.  Adding an operation then forces a decision about
   its instrumentation instead of silently skipping it.

The check actually *runs* every operation against a real store, so it
cannot drift from the implementation the way a static list would.

Exit status 0 when every operation is covered; 1 otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.caching import InProcessCache  # noqa: E402
from repro.core import EnhancedDataStoreClient  # noqa: E402
from repro.kv import InMemoryStore  # noqa: E402
from repro.kv.interface import KeyValueStore  # noqa: E402
from repro.obs import Observability  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.udsm.monitoring import MonitoredStore, PerformanceMonitor  # noqa: E402

#: Public interface operations with no data-plane latency to record:
#: resource lifecycle and raw-handle escape hatches.
EXEMPT = {
    "close": "resource lifecycle, not a data operation",
    "native": "raw backend handle escape hatch; nothing to time",
}

#: op name -> callable(store) driving that op on a pre-seeded store
#: (keys ``seed-1``/``seed-2`` exist; ``seed-1`` holds ``b"value-1"``).
DRIVERS = {
    "get": lambda s: s.get("seed-1"),
    "put": lambda s: s.put("new-key", b"new-value"),
    "delete": lambda s: s.delete("seed-1"),
    "keys": lambda s: list(s.keys()),
    "keys_with_prefix": lambda s: list(s.keys_with_prefix("seed-")),
    "contains": lambda s: s.contains("seed-1"),
    "size": lambda s: s.size(),
    "clear": lambda s: s.clear(),
    "get_with_version": lambda s: s.get_with_version("seed-1"),
    "get_if_modified": lambda s: s.get_if_modified(
        "seed-1", s.get_with_version("seed-1")[1]
    ),
    "put_with_version": lambda s: s.put_with_version("seed-1", b"value-2"),
    "check_version": lambda s: s.check_version(
        "seed-1", s.get_with_version("seed-1")[1]
    ),
    "get_or_default": lambda s: s.get_or_default("absent", None),
    "get_many": lambda s: s.get_many(["seed-1", "seed-2"]),
    "put_many": lambda s: s.put_many({"many-1": b"a", "many-2": b"b"}),
    "delete_many": lambda s: s.delete_many(["seed-1", "seed-2"]),
}

#: EnhancedDataStoreClient public ops with a ``client.<op>.seconds`` stage.
CLIENT_DRIVERS = {
    "get": lambda c: c.get("seed-1"),
    "get_many": lambda c: c.get_many(["seed-1", "seed-2"]),
    "put": lambda c: c.put("new-key", {"v": 1}),
    "delete": lambda c: c.delete("seed-1"),
    "invalidate": lambda c: c.invalidate("seed-1"),
}


def public_interface_ops() -> set[str]:
    return {
        name
        for name in dir(KeyValueStore)
        if not name.startswith("_") and callable(getattr(KeyValueStore, name))
    }


def registry_observations(registry: MetricsRegistry) -> int:
    """Total recorded activity: histogram samples + counter increments."""
    snapshot = registry.snapshot()
    return sum(data["count"] for data in snapshot["histograms"].values()) + sum(
        int(value) for value in snapshot["counters"].values()
    )


def check_monitored_store() -> list[str]:
    """Drive every public op through MonitoredStore; return failures."""
    failures: list[str] = []
    ops = public_interface_ops()
    uncovered = ops - set(DRIVERS) - set(EXEMPT)
    if uncovered:
        failures.append(
            "public KeyValueStore operations with no driver and no exemption: "
            + ", ".join(sorted(uncovered))
            + " (add a DRIVERS entry or an EXEMPT reason in "
            "scripts/check_instrumentation.py)"
        )
    stale = (set(DRIVERS) | set(EXEMPT)) - ops
    if stale:
        failures.append(
            "contract entries for operations no longer on the interface: "
            + ", ".join(sorted(stale))
        )
    for op in sorted(set(DRIVERS) & ops):
        registry = MetricsRegistry()
        monitor = PerformanceMonitor(registry=registry)
        store = MonitoredStore(InMemoryStore(), monitor, name="checked")
        store.inner.put("seed-1", b"value-1")
        store.inner.put("seed-2", b"value-2")
        before = registry_observations(registry)
        try:
            DRIVERS[op](store)
        except Exception as exc:  # noqa: BLE001 - report, don't crash the check
            failures.append(f"MonitoredStore.{op} raised {type(exc).__name__}: {exc}")
            continue
        if registry_observations(registry) <= before:
            failures.append(
                f"MonitoredStore.{op} recorded no metric (registry unchanged)"
            )
    return failures


def check_enhanced_client() -> list[str]:
    """Drive the enhanced client's instrumented ops; return failures."""
    failures: list[str] = []
    for op in sorted(CLIENT_DRIVERS):
        obs = Observability()
        client = EnhancedDataStoreClient(
            InMemoryStore(), cache=InProcessCache(), obs=obs
        )
        client.put("seed-1", {"v": 1})
        client.put("seed-2", {"v": 2})
        metric = f"client.{op}.seconds"
        before = obs.registry.snapshot()["histograms"].get(metric, {}).get("count", 0)
        try:
            CLIENT_DRIVERS[op](client)
        except Exception as exc:  # noqa: BLE001
            failures.append(
                f"EnhancedDataStoreClient.{op} raised {type(exc).__name__}: {exc}"
            )
            continue
        after = obs.registry.snapshot()["histograms"].get(metric, {}).get("count", 0)
        if after <= before:
            failures.append(
                f"EnhancedDataStoreClient.{op} did not record {metric}"
            )
        client.close()
    return failures


def main() -> int:
    failures = check_monitored_store() + check_enhanced_client()
    covered = sorted(set(DRIVERS) & public_interface_ops())
    print(
        f"instrumentation check: {len(covered)} interface ops driven through "
        f"MonitoredStore, {len(EXEMPT)} exempt "
        f"({', '.join(sorted(EXEMPT))}), "
        f"{len(CLIENT_DRIVERS)} enhanced-client ops"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("instrumentation check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
