#!/usr/bin/env python
"""Anomaly-detection contract check (``make check-anomaly``).

Guards the contract of ``docs/anomaly.md`` with the uview-style validation
pattern: inject *known* anomalies through the chaos plane
(:mod:`repro.kv.chaos`) and assert the detection plane catches exactly
them --

* a clean baseline run stays quiet (**zero false positives**);
* a latency step, an error burst, and a slow leak are **all detected**
  and **all cleared** once the fault is lifted;
* a preemptive circuit-trip action **round-trips**: the breaker opens the
  moment the latency anomaly is detected and closes again when it clears.

Everything runs on an injected virtual clock (the chaos stores' ``sleep``
is the clock's ``advance``), so the whole gate completes with zero real
sleeps.  Exit status 0 when every scenario holds; 1 otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import StoreConnectionError  # noqa: E402
from repro.kv import FlakyStore, InMemoryStore  # noqa: E402
from repro.kv.circuit import CircuitBreaker, CircuitState  # noqa: E402
from repro.obs import EventLog, Observability  # noqa: E402
from repro.obs.anomaly import (  # noqa: E402
    AnomalyEngine,
    ErrorRatioRule,
    RateOfChangeRule,
    TripCircuitAction,
    ZScoreRule,
)


class _Clock:
    """Injectable monotonic clock so no scenario really sleeps."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class _Stack:
    """A chaos-wrapped store workload feeding a fresh anomaly engine.

    One poll = one virtual second of workload: *ops* reads through the
    :class:`FlakyStore` (injected latency runs on the virtual clock, so
    per-op latency lands in the ``store.get.seconds`` histogram exactly as
    injected), then one engine poll.
    """

    def __init__(self) -> None:
        self.clock = _Clock()
        self.obs = Observability(events=EventLog(clock=self.clock))
        self.backend = InMemoryStore()
        self.backend.put("k", "v")
        self.flaky = FlakyStore(
            self.backend, failure_rate=0.0, latency=0.001, sleep=self.clock.advance
        )
        self.latency = self.obs.registry.histogram("store.get.seconds")
        self.requests = self.obs.registry.counter("requests")
        self.errors = self.obs.registry.counter("errors")
        self.leak = self.obs.registry.gauge("leak.bytes")
        self.engine = AnomalyEngine(self.obs, clock=self.clock)

    def step(self, *, ops: int = 25, leak_step: float = 0.0) -> list:
        start = self.clock.now
        for _ in range(ops):
            begin = self.clock.now
            try:
                self.flaky.get("k")
            except StoreConnectionError:
                self.errors.inc()
            self.requests.inc()
            self.latency.observe(self.clock.now - begin)
        if leak_step:
            self.leak.inc(leak_step)
        # Pad the poll interval to one full virtual second.
        if self.clock.now - start < 1.0:
            self.clock.advance(1.0 - (self.clock.now - start))
        return self.engine.poll(self.clock.now)

    def run(self, polls: int, **step_options) -> list:
        transitions = []
        for _ in range(polls):
            transitions.extend(self.step(**step_options))
        return transitions

    def anomaly_events(self, kind: str = "anomaly_detected") -> list[dict]:
        return self.obs.events.tail(kind=kind)


def _expect(errors: list[str], condition: bool, message: str) -> None:
    if not condition:
        errors.append(message)


def _latency_rule() -> ZScoreRule:
    return ZScoreRule(
        "latency_step",
        "store.get.seconds.p99",
        zmax=4.0,
        min_observations=5,
        trigger_after=2,
        clear_after=3,
        # p99 is bucket-quantized; floor the std at one bucket width so a
        # one-bucket wobble never reads as an anomaly (or blocks a clear).
        min_std=2e-3,
    )


def check_clean_baseline() -> list[str]:
    """A steady workload with every rule armed must raise nothing."""
    errors: list[str] = []
    stack = _Stack()
    stack.engine.add_rule(_latency_rule())
    stack.engine.add_rule(
        ErrorRatioRule("error_burst", "errors.delta", "requests.delta", ratio=0.3)
    )
    stack.engine.add_rule(
        RateOfChangeRule("slow_leak", "leak.bytes", per_second=100.0)
    )
    transitions = stack.run(40)
    _expect(errors, transitions == [], f"clean run produced transitions: {transitions}")
    detected = stack.anomaly_events()
    _expect(errors, detected == [], f"clean run journalled {len(detected)} false positives")
    polls = stack.obs.registry.counter("obs.anomaly.polls").value
    _expect(errors, polls == 40, f"obs.anomaly.polls == {polls}, want 40")
    return errors


def check_latency_step_and_circuit() -> list[str]:
    """A chaos latency step must be detected, preemptively trip the
    breaker, and the whole loop must revert once latency recovers."""
    errors: list[str] = []
    stack = _Stack()
    breaker = CircuitBreaker(name="guard", clock=stack.clock, obs=stack.obs)
    stack.engine.add_rule(_latency_rule(), actions=[TripCircuitAction(breaker)])

    stack.run(12)  # baseline at 1 ms
    _expect(errors, breaker.state is CircuitState.CLOSED, "breaker open before any fault")

    stack.flaky.set_latency(0.05)  # the injected step: 1 ms -> 50 ms
    detections = [t for t in stack.run(6) if t.kind.value == "detected"]
    _expect(errors, len(detections) == 1, f"latency step detections == {len(detections)}, want 1")
    _expect(
        errors,
        breaker.state is CircuitState.OPEN,
        "detection did not preemptively trip the breaker",
    )
    records = stack.anomaly_events()
    _expect(errors, len(records) == 1, "anomaly_detected not journalled exactly once")
    if records:
        _expect(
            errors,
            records[0].get("exemplar"),
            "anomaly_detected record carries no series exemplar",
        )
        _expect(
            errors,
            "trip_circuit" in records[0].get("actions", []),
            "anomaly_detected record does not name the engaged action",
        )

    stack.flaky.set_latency(0.001)  # recovery
    clearances = [t for t in stack.run(10) if t.kind.value == "cleared"]
    _expect(errors, len(clearances) == 1, f"clearances == {len(clearances)}, want 1")
    _expect(
        errors,
        breaker.state is CircuitState.CLOSED,
        "anomaly_cleared did not revert the circuit trip",
    )
    cleared = stack.anomaly_events("anomaly_cleared")
    _expect(errors, len(cleared) == 1, "anomaly_cleared not journalled exactly once")
    action_events = stack.anomaly_events("anomaly_action")
    directions = [record.get("direction") for record in action_events]
    _expect(
        errors,
        directions == ["engage", "revert"],
        f"action journal directions == {directions}, want ['engage', 'revert']",
    )
    return errors


def check_error_burst() -> list[str]:
    """A chaos error burst must be caught by the error-ratio rule and
    clear once the burst is over."""
    errors: list[str] = []
    stack = _Stack()
    stack.engine.add_rule(
        ErrorRatioRule(
            "error_burst",
            "errors.delta",
            "requests.delta",
            ratio=0.3,
            min_total=10.0,
            trigger_after=1,
            clear_after=2,
        )
    )
    stack.run(8)  # clean baseline
    stack.flaky.fail_next(40)  # burst: the next 40 ops all fail
    detections = [t for t in stack.run(3) if t.kind.value == "detected"]
    _expect(errors, len(detections) == 1, f"error burst detections == {len(detections)}, want 1")
    clearances = [t for t in stack.run(6) if t.kind.value == "cleared"]
    _expect(errors, len(clearances) == 1, f"error burst clearances == {len(clearances)}, want 1")
    injected = stack.flaky.injected_failures
    _expect(errors, injected == 40, f"chaos injected {injected} failures, want 40")
    return errors


def check_slow_leak() -> list[str]:
    """A steadily-rising gauge must be caught by the rate-of-change rule
    after its debounce, and a bounded gauge must not."""
    errors: list[str] = []
    stack = _Stack()
    stack.engine.add_rule(
        RateOfChangeRule(
            "slow_leak", "leak.bytes", per_second=100.0, trigger_after=3, clear_after=3
        )
    )
    stack.run(6)
    # One-poll blip under the debounce: must NOT detect.
    stack.step(leak_step=500.0)
    blip = stack.run(4)
    _expect(errors, blip == [], f"single-poll blip raised: {blip}")
    # Sustained leak: +500 bytes per virtual second for 6 polls.
    detections = [t for t in stack.run(6, leak_step=500.0) if t.kind.value == "detected"]
    _expect(errors, len(detections) == 1, f"slow leak detections == {len(detections)}, want 1")
    clearances = [t for t in stack.run(6) if t.kind.value == "cleared"]
    _expect(errors, len(clearances) == 1, f"slow leak clearances == {len(clearances)}, want 1")
    return errors


CHECKS = [
    ("clean baseline (no false positives)", check_clean_baseline),
    ("latency step + preemptive circuit trip", check_latency_step_and_circuit),
    ("error burst", check_error_burst),
    ("slow leak", check_slow_leak),
]


def main() -> int:
    failed = False
    for label, check in CHECKS:
        problems = check()
        if problems:
            failed = True
            print(f"FAIL  {label}")
            for problem in problems:
                print(f"      - {problem}")
        else:
            print(f"ok    {label}")
    if failed:
        print("\nanomaly-detection contract violated -- see docs/anomaly.md")
        return 1
    print("\nanomaly-detection contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
