#!/usr/bin/env python
"""Serving-plane smoke gate (``make check-serving``).

Guards the promises of ``docs/serving.md`` with real sockets:

* the **async engine boots and serves**: an in-process
  :class:`repro.net.aio.AsyncCacheServer` answers an unmodified sync
  :class:`repro.net.client.CacheClient`;
* a **pipelined load burst** (open-loop generator schedule, multiple
  client connections) completes without errors and **moves the STATS
  counters** (commands served, pipelined requests observed);
* the async engine **sustains at least 2x the threaded engine's
  concurrent-connection bound**: with the threaded engine capped at its
  default ``THREADED_MAX_CLIENTS``, the async engine holds
  ``2 x THREADED_MAX_CLIENTS`` simultaneously live connections, each
  verified with a PING round-trip;
* teardown is leak-free: stop is idempotent and the port is released.

Exit status 0 when every check holds; 1 otherwise.
"""

from __future__ import annotations

import socket
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.kv import RemoteKeyValueStore  # noqa: E402
from repro.net import (  # noqa: E402
    THREADED_MAX_CLIENTS,
    AsyncCacheServer,
    CacheClient,
)
from repro.net import protocol  # noqa: E402
from repro.udsm.loadgen import (  # noqa: E402
    OpenLoopLoadGenerator,
    OpenLoopSpec,
    RVConfig,
)

CONNECTION_TARGET = 2 * THREADED_MAX_CLIENTS


def _expect(errors: list[str], condition: bool, message: str) -> None:
    if not condition:
        errors.append(message)
        print(f"  FAIL {message}")
    else:
        print(f"  ok   {message}")


def check_boot_and_stats(errors: list[str]) -> None:
    print("[1/3] async engine boots; pipelined burst moves STATS")
    server = AsyncCacheServer()
    host, port = server.start()
    try:
        client = CacheClient(host, port)
        _expect(errors, client.ping(), "sync CacheClient PINGs the async engine")

        # Raw pipelining: many requests in one write, ordered replies.
        pipe = client.pipeline()
        for i in range(64):
            pipe.set(f"gate{i}".encode(), str(i).encode())
        for i in range(64):
            pipe.get(f"gate{i}".encode())
        replies = pipe.execute()
        _expect(
            errors,
            replies[64:] == [str(i).encode() for i in range(64)],
            "128-deep pipeline answers in order",
        )

        # Open-loop burst over several connections.
        spec = OpenLoopSpec(
            active_users=RVConfig(mean=400.0, distribution="constant"),
            key_space=64,
            value_size=128,
            key_prefix="gateload",
        )
        generator = OpenLoopLoadGenerator(spec, seed=5)
        targets = [RemoteKeyValueStore(host, port, name=f"w{i}") for i in range(4)]
        try:
            result = generator.run(targets=targets, duration=0.5)
        finally:
            for target in targets:
                target.close()
        _expect(errors, result.offered > 50, f"burst offered {result.offered} requests")
        _expect(
            errors,
            result.completed == result.offered and result.errors == 0,
            f"burst completed {result.completed}/{result.offered}, "
            f"{result.errors} errors",
        )

        stats = client.stats()
        _expect(errors, stats["server.engine"] == "async", "STATS reports engine=async")
        served = int(stats["cmd.set.calls"]) + int(stats["cmd.get.calls"])
        _expect(errors, served >= result.offered, f"STATS counted {served} gets+sets")
        snapshot = server.obs.registry.snapshot()
        _expect(
            errors,
            snapshot["counters"].get("net.aio.pipelined", 0) >= 64,
            "net.aio.pipelined counter moved",
        )
        client.close()
    finally:
        server.stop()


def check_connection_scaling(errors: list[str]) -> None:
    print(f"[2/3] async sustains {CONNECTION_TARGET} live connections "
          f"(2x threaded bound of {THREADED_MAX_CLIENTS})")
    server = AsyncCacheServer()
    host, port = server.start()
    connections: list[socket.socket] = []
    try:
        ping = protocol.encode_command(["PING"])
        for _ in range(CONNECTION_TARGET):
            sock = socket.create_connection((host, port), timeout=10)
            connections.append(sock)
        live = 0
        for sock in connections:
            sock.sendall(ping)
            if sock.recv(64) == b"+PONG\r\n":
                live += 1
        _expect(
            errors,
            live == CONNECTION_TARGET,
            f"{live}/{CONNECTION_TARGET} simultaneous connections answered PING",
        )
        stats_client = CacheClient(host, port)
        reported = int(stats_client.stats()["server.connections"])
        _expect(
            errors,
            reported >= CONNECTION_TARGET,
            f"STATS server.connections reports {reported}",
        )
        stats_client.close()
    finally:
        for sock in connections:
            sock.close()
        server.stop()


def check_teardown(errors: list[str]) -> None:
    print("[3/3] stop is idempotent and releases the port")
    server = AsyncCacheServer()
    host, port = server.start()
    server.stop()
    server.stop()  # must be a no-op, not an error
    try:
        socket.create_connection((host, port), timeout=0.5).close()
        refused = False
    except OSError:
        refused = True
    _expect(errors, refused, "port refuses connections after stop")
    rebound = socket.socket()
    try:
        rebound.bind((host, port))
        _expect(errors, True, "port is immediately rebindable")
    except OSError:
        _expect(errors, False, "port is immediately rebindable")
    finally:
        rebound.close()


def main() -> int:
    errors: list[str] = []
    check_boot_and_stats(errors)
    check_connection_scaling(errors)
    check_teardown(errors)
    if errors:
        print(f"\ncheck_serving: {len(errors)} check(s) FAILED")
        return 1
    print("\ncheck_serving: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
