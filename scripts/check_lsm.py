#!/usr/bin/env python
"""LSM durability contract check (``make check-lsm``).

Guards the promise of ``docs/lsm.md``: **no acknowledged write is ever
lost**.  Each scenario drives a real :class:`repro.lsm.LSMStore`, then
simulates a crash the honest way -- copying the live data directory
without closing the store (the moment of power loss) -- and verifies that
a fresh store over the copy serves every acknowledged write:

* WAL-only state (nothing flushed) survives a crash;
* a torn WAL tail (partial frame, bit-flipped record) is truncated back
  to the last intact record without losing anything acknowledged before it;
* mixed SSTable + WAL state recovers to the exact acknowledged key set;
* compaction preserves the exact key/value set while reclaiming
  overwrites and tombstones;
* recovery re-persists replayed state immediately (a second crash right
  after open also loses nothing);
* a torn MANIFEST tail is repaired on open without losing committed tables;
* a crash between the flush commit and the compaction commit leaves the
  old tables in charge (the uncommitted output is swept, nothing is
  resurrected or lost), and the mirror crash -- swap committed, inputs
  not yet unlinked -- sweeps the inputs and keeps the output;
* orphaned ``*.sst.tmp`` files from a crashed table write are swept;
* a PR-4-era directory (no MANIFEST) opens cleanly and writes one;
* power loss in the middle of a group-commit sync (concurrent
  ``fsync=True`` writers) loses no write acknowledged before the crash
  point, including when the snapshot's WAL tail is additionally torn;
* a failed sync poisons the WAL segment (fsyncgate: never retried), the
  store rejects further mutations, the failed write is NOT resurrected
  by recovery, and a reopened store accepts writes again.

Exit status 0 when every scenario holds; 1 otherwise.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import threading
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import KeyNotFoundError, WalPoisonedError  # noqa: E402
from repro.lsm import (  # noqa: E402
    MANIFEST_NAME,
    LSMStore,
    Manifest,
    SSTable,
    merge_tables,
    write_sstable,
)
from repro.lsm import wal as wal_module  # noqa: E402


def _expect(errors: list[str], condition: bool, message: str) -> None:
    if not condition:
        errors.append(message)


def _crash_copy(store: LSMStore, workdir: Path, name: str) -> Path:
    """Simulate power loss: snapshot the live directory, store still open."""
    target = workdir / name
    shutil.copytree(store.native(), target)
    return target


def _verify_exact_contents(
    errors: list[str], store: LSMStore, expected: dict[str, object], label: str
) -> None:
    got = {key: store.get(key) for key in store.keys()}
    missing = sorted(set(expected) - set(got))
    extra = sorted(set(got) - set(expected))
    _expect(errors, not missing, f"{label}: acknowledged keys lost: {missing[:5]}")
    _expect(errors, not extra, f"{label}: phantom keys appeared: {extra[:5]}")
    for key in set(expected) & set(got):
        if got[key] != expected[key]:
            errors.append(f"{label}: {key!r} == {got[key]!r}, want {expected[key]!r}")
            break


def check_wal_only_crash() -> list[str]:
    """Writes that never left the WAL must survive a crash."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        store = LSMStore(workdir / "db")
        expected: dict[str, object] = {}
        for i in range(100):
            store.put(f"key-{i:03d}", {"value": i})
            expected[f"key-{i:03d}"] = {"value": i}
        store.delete("key-050")
        del expected["key-050"]
        crashed = _crash_copy(store, workdir, "crashed")
        store.close()
        with LSMStore(crashed) as recovered:
            _verify_exact_contents(errors, recovered, expected, "wal-only crash")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_torn_tail() -> list[str]:
    """A partial frame at the WAL tail must be discarded -- and only it."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        store = LSMStore(workdir / "db")
        for i in range(20):
            store.put(f"key-{i:02d}", f"value-{i}")
        crashed = _crash_copy(store, workdir, "crashed")
        store.close()
        (wal_path,) = crashed.glob("wal-*.log")
        with open(wal_path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef\x00")  # power loss mid-append
        with LSMStore(crashed) as recovered:
            expected = {f"key-{i:02d}": f"value-{i}" for i in range(20)}
            _verify_exact_contents(errors, recovered, expected, "torn tail")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_corrupt_record() -> list[str]:
    """A bit-flipped WAL record must cut replay there, keeping the prefix."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        store = LSMStore(workdir / "db")
        store.put("before", "intact")
        prefix_end = store.stats()["wal_bytes"]
        store.put("after", "doomed")
        crashed = _crash_copy(store, workdir, "crashed")
        store.close()
        (wal_path,) = crashed.glob("wal-*.log")
        blob = bytearray(wal_path.read_bytes())
        blob[prefix_end + 10] ^= 0xFF
        wal_path.write_bytes(bytes(blob))
        with LSMStore(crashed) as recovered:
            _expect(errors, recovered.get("before") == "intact",
                    "corrupt record: intact prefix lost")
            try:
                recovered.get("after")
                errors.append("corrupt record: corrupted write served anyway")
            except KeyNotFoundError:
                pass
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_mixed_state_crash() -> list[str]:
    """SSTables + sealed memtables + active WAL must all recover together."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        # Tiny memtable: the workload spans flushed tables AND a live WAL.
        store = LSMStore(workdir / "db", memtable_bytes=2_048)
        expected: dict[str, object] = {}
        for i in range(300):
            store.put(f"key-{i:04d}", "x" * (i % 50))
            expected[f"key-{i:04d}"] = "x" * (i % 50)
        for i in range(0, 300, 3):
            store.delete(f"key-{i:04d}")
            del expected[f"key-{i:04d}"]
        crashed = _crash_copy(store, workdir, "crashed")
        store.close()
        with LSMStore(crashed) as recovered:
            _verify_exact_contents(errors, recovered, expected, "mixed-state crash")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_compaction_preserves_contents() -> list[str]:
    """A full merge must keep the exact live key set and shrink the files."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        with LSMStore(workdir / "db", auto_compact=False) as store:
            expected: dict[str, object] = {}
            for round_number in range(4):
                for i in range(50):
                    store.put(f"key-{i:02d}", {"round": round_number, "i": i})
                    expected[f"key-{i:02d}"] = {"round": round_number, "i": i}
                store.flush()
            for i in range(25):
                store.delete(f"key-{i:02d}")
                del expected[f"key-{i:02d}"]
            before = store.stats()
            store.compact()
            after = store.stats()
            _expect(errors, after["sstables"] == 1,
                    f"compaction left {after['sstables']} tables, want 1")
            _expect(errors, after["sstable_records"] == len(expected),
                    f"compacted run holds {after['sstable_records']} records, "
                    f"want {len(expected)}")
            _expect(errors, after["sstable_bytes"] < before["sstable_bytes"],
                    "compaction did not reclaim any bytes")
            _verify_exact_contents(errors, store, expected, "compaction")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_recovery_is_durable() -> list[str]:
    """Recovery must flush replayed state: a second crash loses nothing."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        store = LSMStore(workdir / "db")
        store.put("survivor", [1, 2, 3])
        crashed_once = _crash_copy(store, workdir, "crashed-once")
        store.close()
        reopened = LSMStore(crashed_once)
        crashed_twice = _crash_copy(reopened, workdir, "crashed-twice")
        reopened.close()
        with LSMStore(crashed_twice) as recovered:
            _verify_exact_contents(
                errors, recovered, {"survivor": [1, 2, 3]}, "double crash"
            )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_torn_manifest_tail() -> list[str]:
    """A torn MANIFEST tail must repair on open, keeping committed tables."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        expected: dict[str, object] = {}
        with LSMStore(workdir / "db", auto_compact=False) as store:
            for i in range(40):
                store.put(f"key-{i:02d}", i)
                expected[f"key-{i:02d}"] = i
            store.flush()
        with open(workdir / "db" / MANIFEST_NAME, "ab") as tail:
            tail.write(b"\xba\xad\xf0\x0d")  # power loss mid-append
        with LSMStore(workdir / "db") as recovered:
            _verify_exact_contents(errors, recovered, expected, "torn manifest")
        replay = Manifest.replay(workdir / "db" / MANIFEST_NAME)
        _expect(errors, not replay.torn, "torn manifest: not rewritten clean")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_crash_between_swap_commits() -> list[str]:
    """Crash after a compaction wrote its output but before the manifest
    committed the swap: the old tables must win (no resurrected values,
    no lost keys), and the uncommitted output must be swept."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        expected: dict[str, object] = {}
        store = LSMStore(workdir / "db", auto_compact=False)
        for batch in range(2):
            for i in range(30):
                store.put(f"key-{i:02d}", {"batch": batch})
                expected[f"key-{i:02d}"] = {"batch": batch}
            store.flush()
        crashed = _crash_copy(store, workdir, "crashed")
        store.close()
        # The dead compaction's uncommitted output: stale data under the
        # name a real merge would have used.  Loading it would resurrect
        # batch-0 values; the manifest must refuse it.
        stray = crashed / "000002-001.sst"
        write_sstable(stray, [(b"key-00", b"stale")])
        with LSMStore(crashed) as recovered:
            _verify_exact_contents(errors, recovered, expected, "pre-commit crash")
        _expect(errors, not stray.exists(), "pre-commit crash: stray .sst kept")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_crash_after_swap_commit() -> list[str]:
    """Crash after the manifest committed a compaction swap but before the
    input tables were unlinked: the output must win, the inputs be swept."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        expected: dict[str, object] = {}
        root = workdir / "db"
        with LSMStore(root, auto_compact=False) as store:
            for batch in range(2):
                for i in range(30):
                    store.put(f"key-{i:02d}", {"batch": batch})
                    expected[f"key-{i:02d}"] = {"batch": batch}
                store.flush()
        inputs = sorted(p.name for p in root.glob("*.sst"))
        tables = [SSTable(root / name) for name in inputs]
        entries = list(merge_tables(tables, drop_tombstones=True))
        for table in tables:
            table.close()
        write_sstable(root / "000002-001.sst", entries)
        manifest = Manifest(root / MANIFEST_NAME)
        manifest.append(add=["000002-001.sst"], remove=inputs)
        manifest.close()  # ... and the crash hits before the unlinks
        with LSMStore(root) as recovered:
            _verify_exact_contents(errors, recovered, expected, "post-commit crash")
            _expect(errors, recovered.stats()["sstables"] == 1,
                    "post-commit crash: inputs resurrected alongside output")
        for name in inputs:
            _expect(errors, not (root / name).exists(),
                    f"post-commit crash: input {name} not swept")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_orphan_tmp_sweep() -> list[str]:
    """Orphaned *.sst.tmp files from a crashed table write must be swept."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        root = workdir / "db"
        with LSMStore(root) as store:
            store.put("live", "data")
        (root / "tmpdeadbeef.sst.tmp").write_bytes(b"half-written table")
        with LSMStore(root) as recovered:
            _verify_exact_contents(errors, recovered, {"live": "data"}, "orphan tmp")
        _expect(errors, not list(root.glob("*.sst.tmp")),
                "orphan tmp: *.sst.tmp survived recovery")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_manifest_migration() -> list[str]:
    """A PR-4-era directory (no MANIFEST) must open cleanly and write one."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        expected: dict[str, object] = {}
        root = workdir / "db"
        with LSMStore(root, auto_compact=False) as store:
            for i in range(50):
                store.put(f"key-{i:02d}", i)
                expected[f"key-{i:02d}"] = i
            store.flush()
            store.put("wal-only", "tail")
            expected["wal-only"] = "tail"
        (root / MANIFEST_NAME).unlink()  # what PR 4 left behind
        with LSMStore(root) as migrated:
            _verify_exact_contents(errors, migrated, expected, "manifest migration")
        _expect(errors, (root / MANIFEST_NAME).is_file(),
                "manifest migration: no MANIFEST written")
        with LSMStore(root) as again:  # second open trusts the manifest
            _verify_exact_contents(errors, again, expected, "post-migration open")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_group_commit_mid_batch_crash() -> list[str]:
    """Power loss mid-sync under concurrent durable writers: every write
    acknowledged before the crash point must survive recovery.

    Six ``fsync=True`` threads hammer overlapping keys while a wrapped
    ``fsync`` snapshots the live directory at the start of sync #5 --
    the acknowledged set at that instant is exactly what a previous,
    completed sync has made durable.  Each key is written by one thread
    with increasing sequence numbers, so recovery must serve either the
    acknowledged value or a later one (the in-flight batch was written,
    just not yet acknowledged), and never an earlier or phantom value.
    A second recovery additionally tears the snapshot's WAL tail
    mid-frame, which may only cost unacknowledged in-flight frames.
    """
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        store = LSMStore(workdir / "db", fsync=True)
        lock = threading.Lock()
        acked: dict[str, int] = {}
        state: dict[str, object] = {"calls": 0, "snapshot": None, "acked": None}

        def snapping_fsync(fd: int) -> None:
            with lock:
                state["calls"] += 1
                if state["calls"] == 5 and state["snapshot"] is None:
                    state["acked"] = dict(acked)
                    target = workdir / "crashed"
                    shutil.copytree(store.native(), target)
                    state["snapshot"] = target
            os.fsync(fd)

        wal_module._fsync = snapping_fsync
        failures: list[BaseException] = []
        try:
            barrier = threading.Barrier(6)

            def worker(t: int) -> None:
                barrier.wait(timeout=10.0)
                try:
                    for i in range(25):
                        key = f"t{t}-k{i % 5}"
                        store.put(key, i)
                        with lock:
                            acked[key] = i
                except BaseException as exc:  # noqa: BLE001
                    failures.append(exc)

            threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
        finally:
            wal_module._fsync = os.fsync
        store.close()
        _expect(errors, not failures, f"mid-batch crash: writer failed: {failures[:1]}")
        snapshot = state["snapshot"]
        _expect(errors, snapshot is not None, "mid-batch crash: sync #5 never ran")
        if snapshot is None:
            return errors
        acked_at_crash: dict[str, int] = state["acked"]  # type: ignore[assignment]

        def verify(root: Path, label: str) -> None:
            with LSMStore(root) as recovered:
                got = {key: recovered.get(key) for key in recovered.keys()}
            for key, seq in acked_at_crash.items():
                if key not in got:
                    errors.append(f"{label}: acknowledged {key!r} lost")
                    return
                if got[key] < seq:
                    errors.append(
                        f"{label}: {key!r} rolled back to {got[key]} "
                        f"(acknowledged {seq})"
                    )
                    return
            phantom = [key for key in got if key not in acked]
            _expect(errors, not phantom, f"{label}: phantom keys {phantom[:5]}")

        verify(snapshot, "mid-batch crash")
        # Same power loss, plus a torn final frame on the copied WAL.
        torn = workdir / "crashed-torn"
        shutil.copytree(snapshot, torn)
        (wal_path,) = torn.glob("wal-*.log")
        size = wal_path.stat().st_size
        if size > 3:
            with open(wal_path, "rb+") as handle:
                handle.truncate(size - 3)
        verify(torn, "mid-batch crash, torn tail")
    finally:
        wal_module._fsync = os.fsync
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


def check_poisoned_sync() -> list[str]:
    """A failed sync must poison the WAL: the store stops accepting
    mutations (never retries -- fsyncgate), the failed write is not
    resurrected by recovery, and a reopen restores a writable store."""
    errors: list[str] = []
    workdir = Path(tempfile.mkdtemp(prefix="check-lsm-"))
    try:
        store = LSMStore(workdir / "db", fsync=True)
        expected: dict[str, object] = {}
        for i in range(20):
            store.put(f"key-{i:02d}", i)
            expected[f"key-{i:02d}"] = i

        armed = {"live": True}

        def failing_fsync(fd: int) -> None:
            if armed["live"]:
                armed["live"] = False
                raise OSError(5, "Input/output error")
            os.fsync(fd)

        wal_module._fsync = failing_fsync
        try:
            try:
                store.put("doomed", "never acknowledged")
                errors.append("poisoned sync: failed write acknowledged anyway")
            except WalPoisonedError:
                pass
            # Retrying would falsely succeed (the kernel cleared the
            # error); the store must refuse instead.
            for attempt in (lambda: store.put("retry", 1),
                            lambda: store.delete("key-00")):
                try:
                    attempt()
                    errors.append("poisoned sync: mutation accepted after poison")
                except WalPoisonedError:
                    pass
            _expect(errors, store.get("key-07") == 7,
                    "poisoned sync: acknowledged read broken on live store")
            _expect(errors, store.stats()["wal_poisoned"] is True,
                    "poisoned sync: stats() hides the poisoning")
            crashed = _crash_copy(store, workdir, "crashed")
            store.close()
        finally:
            wal_module._fsync = os.fsync
        with LSMStore(crashed, fsync=True) as recovered:
            _verify_exact_contents(errors, recovered, expected, "poisoned sync")
            try:
                recovered.get("doomed")
                errors.append("poisoned sync: failed write resurrected by recovery")
            except KeyNotFoundError:
                pass
            recovered.put("fresh", "writable again")
            _expect(errors, recovered.get("fresh") == "writable again",
                    "poisoned sync: reopened store not writable")
    finally:
        wal_module._fsync = os.fsync
        shutil.rmtree(workdir, ignore_errors=True)
    return errors


CHECKS = [
    ("wal-only crash", check_wal_only_crash),
    ("torn WAL tail", check_torn_tail),
    ("corrupt WAL record", check_corrupt_record),
    ("mixed-state crash", check_mixed_state_crash),
    ("compaction contents", check_compaction_preserves_contents),
    ("recovery durability", check_recovery_is_durable),
    ("torn MANIFEST tail", check_torn_manifest_tail),
    ("crash before swap commit", check_crash_between_swap_commits),
    ("crash after swap commit", check_crash_after_swap_commit),
    ("orphan tmp sweep", check_orphan_tmp_sweep),
    ("manifest migration", check_manifest_migration),
    ("group-commit mid-batch crash", check_group_commit_mid_batch_crash),
    ("poisoned sync", check_poisoned_sync),
]


def main() -> int:
    failed = False
    for label, check in CHECKS:
        problems = check()
        if problems:
            failed = True
            print(f"FAIL  {label}")
            for problem in problems:
                print(f"      - {problem}")
        else:
            print(f"ok    {label}")
    if failed:
        print("\nLSM durability contract violated -- see docs/lsm.md")
        return 1
    print("\nLSM durability contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
