#!/usr/bin/env python
"""Smoke-execute the fenced python blocks in the documentation.

Documentation code rots silently: APIs move on, imports change, and the
first person to notice is a user pasting a dead example.  This script makes
the docs part of the test surface:

* every ````` ```python ````` block in ``docs/*.md`` (and any files given on
  the command line) is extracted and executed;
* blocks in one file run **cumulatively in a shared namespace**, top to
  bottom, so later blocks may use names defined by earlier ones -- exactly
  how a reader works through a guide;
* a block fenced as ````` ```python no-run ````` is syntax-checked but not
  executed (use this for snippets that need a live server or are
  intentionally illustrative);
* each file executes in its own temporary working directory, so examples
  may create files without polluting the repository.

Run it directly or via ``make check-docs``.  Exit status is non-zero if any
block fails, with the offending file, block number, and source line printed.
"""

from __future__ import annotations

import io
import re
import sys
import tempfile
import traceback
from contextlib import chdir, redirect_stdout
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

def _display(path: Path) -> str:
    """Repo-relative when possible; files given from elsewhere keep their path."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


_FENCE = re.compile(
    r"^```python[ \t]*(?P<tag>no-run)?[ \t]*\n(?P<body>.*?)^```[ \t]*$",
    re.MULTILINE | re.DOTALL,
)


def extract_blocks(text: str) -> list[tuple[int, bool, str]]:
    """``(start_line, runnable, source)`` for every python fence in *text*."""
    blocks = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start()) + 2  # code starts after fence
        blocks.append((line, match.group("tag") is None, match.group("body")))
    return blocks


def check_file(path: Path) -> list[str]:
    """Execute *path*'s blocks; returns a list of failure descriptions."""
    failures: list[str] = []
    blocks = extract_blocks(path.read_text(encoding="utf-8"))
    if not blocks:
        return failures
    namespace: dict[str, object] = {"__name__": "__docs__"}
    with tempfile.TemporaryDirectory(prefix="check-docs-") as workdir:
        with chdir(workdir):
            for index, (line, runnable, source) in enumerate(blocks, start=1):
                label = f"{_display(path)} block {index} (line {line})"
                try:
                    code = compile(source, f"<{label}>", "exec")
                except SyntaxError:
                    failures.append(f"{label}: syntax error\n{traceback.format_exc()}")
                    continue
                if not runnable:
                    continue
                output = io.StringIO()
                try:
                    with redirect_stdout(output):
                        exec(code, namespace)
                except Exception:
                    printed = output.getvalue()
                    shown = f"--- output ---\n{printed}" if printed else ""
                    failures.append(
                        f"{label}: raised\n{shown}{traceback.format_exc()}"
                    )
    return failures


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    sys.path.insert(0, str(REPO_ROOT / "src"))
    paths = [Path(arg).resolve() for arg in args] or sorted(DOCS_DIR.glob("*.md"))
    all_failures: list[str] = []
    for path in paths:
        failures = check_file(path)
        status = "FAIL" if failures else "ok"
        count = len(extract_blocks(path.read_text(encoding="utf-8")))
        print(f"{status:4}  {_display(path)}  ({count} python blocks)")
        all_failures.extend(failures)
    if all_failures:
        print(f"\n{len(all_failures)} failing block(s):", file=sys.stderr)
        for failure in all_failures:
            print(f"\n{failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
