#!/usr/bin/env python
"""Fault-tolerance contract check (``make check-resilience``).

Guards the resilience contract of ``docs/resilience.md``: the
fault-tolerance plane must (a) emit its documented metric vocabulary --
``kv.circuit.*``, ``kv.hedge.*``, ``kv.deadline.expired``,
``cache.stale_served`` -- and (b) surface every failure mode as a typed
:class:`repro.errors.DataStoreError` subclass, never a bare exception.

Like ``check_instrumentation.py``, the check *drives* the real wrappers
end to end (breaker lifecycle, deadline expiry, hedged read, stale serve,
UDSM health routing) with injected clocks, so it cannot drift from the
implementation and completes without any real sleeping.

Exit status 0 when every scenario holds; 1 otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.caching import ServeStaleStore  # noqa: E402
from repro.errors import (  # noqa: E402
    CircuitOpenError,
    DataStoreError,
    DeadlineExceededError,
    StoreConnectionError,
)
from repro.kv import (  # noqa: E402
    CircuitBreakerStore,
    CircuitState,
    FlakyStore,
    InMemoryStore,
    ReplicatedStore,
    RetryingStore,
    deadline_scope,
)
from repro.obs import Observability  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.udsm.manager import UniversalDataStoreManager  # noqa: E402


class _Clock:
    """Injectable monotonic clock so no scenario really sleeps."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _obs() -> tuple[Observability, MetricsRegistry]:
    registry = MetricsRegistry()
    return Observability(registry=registry), registry


def _expect(errors: list[str], condition: bool, message: str) -> None:
    if not condition:
        errors.append(message)


def check_breaker_lifecycle() -> list[str]:
    """A failure burst must open, recover half-open, probe, and close --
    emitting the counters, the state gauge, and typed errors throughout."""
    errors: list[str] = []
    obs, registry = _obs()
    clock = _Clock()
    flaky = FlakyStore(InMemoryStore(), failure_rate=0.0)
    store = CircuitBreakerStore(
        flaky,
        name="contract",
        failure_threshold=2,
        recovery_timeout=30.0,
        clock=clock,
        obs=obs,
    )
    store.put("k", "v")

    flaky.fail_next(2)
    for _ in range(2):
        try:
            store.get("k")
        except StoreConnectionError:
            pass
        except Exception as exc:  # pragma: no cover - contract violation
            errors.append(f"breaker passed through untyped error {type(exc).__name__}")
    _expect(errors, store.breaker.state is CircuitState.OPEN, "burst did not open circuit")

    try:
        store.get("k")
        errors.append("open circuit did not shed the call")
    except CircuitOpenError as exc:
        _expect(errors, isinstance(exc, DataStoreError), "CircuitOpenError not a DataStoreError")
        _expect(errors, exc.retry_after is not None, "CircuitOpenError missing retry_after")

    clock.advance(30.0)
    _expect(errors, store.get("k") == "v", "recovery probe did not pass through")
    _expect(errors, store.breaker.state is CircuitState.CLOSED, "probe success did not close circuit")

    for metric, want in [
        ("kv.circuit.opened", 1),
        ("kv.circuit.half_open", 1),
        ("kv.circuit.closed", 1),
        ("kv.circuit.rejected", 1),
    ]:
        got = registry.counter(metric).value
        _expect(errors, got == want, f"{metric} == {got}, want {want}")
    gauge = registry.gauge("kv.circuit.contract.state").value
    _expect(errors, gauge == 0, f"kv.circuit.contract.state gauge == {gauge}, want 0 (closed)")
    return errors


def check_deadline_budget() -> list[str]:
    """An expired budget must stop a retry ladder with a typed, counted,
    never-retried error."""
    errors: list[str] = []
    obs, registry = _obs()
    clock = _Clock()
    flaky = FlakyStore(InMemoryStore(), failure_rate=1.0)
    store = RetryingStore(flaky, max_attempts=50, sleep=clock.advance, obs=obs)

    with deadline_scope(0.5, clock=clock):
        try:
            store.get("k")
            errors.append("deadline-bounded retry against a dead store returned")
        except DeadlineExceededError as exc:
            _expect(errors, isinstance(exc, DataStoreError), "DeadlineExceededError not a DataStoreError")
        except Exception as exc:
            errors.append(f"expected DeadlineExceededError, got {type(exc).__name__}")
    _expect(errors, store.retries < 49, "deadline did not cut the retry ladder short")
    expired = registry.counter("kv.deadline.expired").value
    _expect(errors, expired >= 1, f"kv.deadline.expired == {expired}, want >= 1")
    return errors


def check_hedged_read() -> list[str]:
    """A failing primary must hedge to the replica and count the win."""
    errors: list[str] = []
    obs, registry = _obs()
    primary = FlakyStore(InMemoryStore(), failure_rate=1.0)
    replica = InMemoryStore()
    replica.put("k", "from-replica")
    group = ReplicatedStore(primary, [replica], hedge_delay=0.05, obs=obs)

    value = group.get("k")
    _expect(errors, value == "from-replica", f"hedged read returned {value!r}")
    for metric in ("kv.hedge.launched", "kv.hedge.wins"):
        got = registry.counter(metric).value
        _expect(errors, got == 1, f"{metric} == {got}, want 1")
    return errors


def check_serve_stale() -> list[str]:
    """An unreachable origin must be answered from the snapshot, flagged
    and counted, with revalidation catching the snapshot up afterwards."""
    errors: list[str] = []
    obs, registry = _obs()
    clock = _Clock()
    pending: list = []
    backend = InMemoryStore()
    flaky = FlakyStore(backend, failure_rate=0.0)
    store = ServeStaleStore(
        flaky, max_stale=300.0, clock=clock, revalidator=pending.append, obs=obs
    )

    store.put("k", "v1")
    backend.put("k", "v2")  # origin moves on behind the snapshot
    clock.advance(10.0)

    flaky.fail_next(1)
    _expect(errors, store.get("k") == "v1", "degraded read did not serve the stale snapshot")
    served = registry.counter("cache.stale_served").value
    _expect(errors, served == 1, f"cache.stale_served == {served}, want 1")
    _expect(errors, store.staleness("k") == 10.0, "served value's staleness not tracked")

    _expect(errors, len(pending) == 1, "stale serve did not schedule one revalidation")
    if pending:
        pending.pop()()
        flaky.fail_next(1)
        _expect(errors, store.get("k") == "v2", "revalidation did not refresh the snapshot")

    clock.advance(400.0)  # beyond max_stale: the error must win now
    flaky.fail_next(1)
    try:
        store.get("k")
        errors.append("value older than max_stale was served")
    except StoreConnectionError:
        pass
    return errors


def check_health_routing() -> list[str]:
    """The UDSM must route around an open-circuited store and raise a
    typed error when no candidate is healthy."""
    errors: list[str] = []
    with UniversalDataStoreManager() as udsm:
        primary = FlakyStore(InMemoryStore(), failure_rate=0.0)
        udsm.register("cloud", primary)
        udsm.register("local", InMemoryStore(name="local"))
        udsm.protect("cloud", failure_threshold=1, recovery_timeout=3600.0)

        primary.fail_next(1)
        try:
            udsm.store("cloud").get("k")
        except StoreConnectionError:
            pass
        _expect(errors, udsm.healthy_stores() == ["local"], "open circuit still listed healthy")
        routed = udsm.route("cloud", "local")
        _expect(errors, routed is udsm.store("local"), "routing did not steer around the open circuit")
        try:
            udsm.route("cloud")
            errors.append("routing with every candidate unhealthy did not raise")
        except DataStoreError:
            pass
    return errors


CHECKS = [
    ("breaker lifecycle", check_breaker_lifecycle),
    ("deadline budget", check_deadline_budget),
    ("hedged read", check_hedged_read),
    ("serve-stale", check_serve_stale),
    ("health routing", check_health_routing),
]


def main() -> int:
    failed = False
    for label, check in CHECKS:
        problems = check()
        if problems:
            failed = True
            print(f"FAIL  {label}")
            for problem in problems:
                print(f"      - {problem}")
        else:
            print(f"ok    {label}")
    if failed:
        print("\nresilience contract violated -- see docs/resilience.md")
        return 1
    print("\nresilience contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
