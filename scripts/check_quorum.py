#!/usr/bin/env python
"""Quorum-replication contract check (``make check-quorum``).

Guards the quorum contract of ``docs/resilience.md``: an R+W>N
:class:`repro.kv.quorum.QuorumReplicatedStore` must

* converge all members after a chaos-injected partition heals via Merkle
  anti-entropy **without a full-keyspace scan** -- verified by the scan
  accounting (``keys_scanned`` bounded well below the keyspace,
  ``full_scans == 0``);
* keep serving reads at R=2/N=3 with one member down;
* fail writes **fast** with a typed :class:`repro.errors.QuorumWriteError`
  when fewer than W members are reachable (and reads with
  :class:`repro.errors.QuorumReadError` below R);
* respect ambient deadline budgets and feed the anomaly engine
  (``kv.quorum.degraded`` can preemptively enable hedging).

Every scenario drives the real store through
:class:`repro.kv.chaos.PartitionedStore` on virtual clocks -- zero real
sleeps.  Exit status 0 when every scenario holds; 1 otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import (  # noqa: E402
    DeadlineExceededError,
    KeyNotFoundError,
    QuorumReadError,
    QuorumWriteError,
)
from repro.kv import (  # noqa: E402
    InMemoryStore,
    PartitionedStore,
    QuorumReplicatedStore,
    ReplicatedStore,
    deadline_scope,
)
from repro.obs import EventLog, Observability  # noqa: E402
from repro.obs.anomaly import (  # noqa: E402
    AnomalyEngine,
    EnableHedgingAction,
    ThresholdRule,
)
from repro.obs.metrics import MetricsRegistry  # noqa: E402


class _Clock:
    """Injectable monotonic clock so no scenario really sleeps."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _expect(errors: list[str], condition: bool, message: str) -> None:
    if not condition:
        errors.append(message)


def _group(
    n: int = 3,
    *,
    r: int = 2,
    w: int = 2,
    obs: Observability | None = None,
    clock=None,
) -> tuple[QuorumReplicatedStore, list[PartitionedStore]]:
    members = [
        PartitionedStore(
            InMemoryStore(),
            name=f"member-{index}",
            **({"clock": clock} if clock is not None else {}),
        )
        for index in range(n)
    ]
    group = QuorumReplicatedStore(
        members, read_quorum=r, write_quorum=w, name="check", obs=obs
    )
    return group, members


def check_partition_heal_convergence() -> list[str]:
    """Partition -> divergent writes and deletes -> heal -> one Merkle
    round converges every member, scanning only the divergent keys."""
    errors: list[str] = []
    group, members = _group()
    keyspace = 60
    for index in range(keyspace):
        group.put(f"user-{index:02d}", {"revision": 0})
    group.drain()
    _expect(errors, group.status()["in_sync"], "members diverged with no faults")

    members[2].partition()
    updated = [f"user-{index:02d}" for index in range(6)]
    deleted = [f"user-{index:02d}" for index in (10, 11)]
    for key in updated:
        group.put(key, {"revision": 1})
    for key in deleted:
        group.delete(key)
    group.drain()
    _expect(errors, not group.status()["in_sync"], "partitioned member not divergent")
    _expect(
        errors,
        group.write_partial_failures >= len(updated) + len(deleted),
        "sloppy write failures not counted during the partition",
    )

    members[2].heal()
    report = group.anti_entropy_round()
    _expect(errors, report.converged, f"round did not converge: {report}")
    _expect(errors, group.status()["in_sync"], "tree roots still diverge after round")
    divergent = len(updated) + len(deleted)
    _expect(
        errors,
        divergent <= report.keys_scanned < keyspace,
        f"scan accounting off: {report.keys_scanned} keys scanned for "
        f"{divergent} divergent keys over a {keyspace}-key keyspace",
    )
    _expect(
        errors,
        group.full_scans == 0,
        f"anti-entropy fell back to {group.full_scans} full member scans",
    )
    _expect(
        errors,
        report.keys_repaired >= divergent,
        f"only {report.keys_repaired} repairs for {divergent} divergent keys",
    )

    # The healed member holds byte-identical envelopes (values and
    # tombstones both propagated).
    for key in updated + deleted:
        _expect(
            errors,
            members[2].get(key) == members[0].get(key),
            f"member-2 copy of {key!r} still differs after convergence",
        )
    for key in deleted:
        try:
            group.get(key)
            errors.append(f"deleted key {key!r} still readable after convergence")
        except KeyNotFoundError:
            pass

    # Idempotence: a second round finds nothing to do (and proves the
    # trees, not a scan, are doing the work: one root comparison per pair).
    second = group.anti_entropy_round()
    _expect(
        errors,
        second.buckets_divergent == 0 and second.keys_scanned == 0,
        f"second round was not a no-op: {second}",
    )
    group.close()
    return errors


def check_read_survives_member_down() -> list[str]:
    """At R=2/N=3 a single severed member must not affect reads."""
    errors: list[str] = []
    group, members = _group()
    for index in range(10):
        group.put(f"key-{index}", index)
    group.drain()
    members[0].partition()
    for index in range(10):
        value = group.get(f"key-{index}")
        _expect(errors, value == index, f"read {index} returned {value!r}")
    # A confirmed miss is still a miss (typed), not a quorum failure.
    try:
        group.get("absent")
        errors.append("missing key did not raise")
    except KeyNotFoundError:
        pass
    except QuorumReadError:
        errors.append("missing key raised QuorumReadError instead of KeyNotFound")
    group.drain()
    _expect(errors, group.failed_fast == 0, "healthy-quorum reads failed fast")
    group.close()
    return errors


def check_write_fails_fast_below_quorum() -> list[str]:
    """With 2 of 3 members unreachable (W=2), writes and reads must fail
    fast with typed quorum errors instead of hanging."""
    errors: list[str] = []
    registry = MetricsRegistry()
    obs = Observability(registry=registry)
    group, members = _group(obs=obs)
    group.put("k", "v")
    group.drain()
    members[1].partition()
    members[2].partition()
    try:
        group.put("k", "v2")
        errors.append("write below W did not raise")
    except QuorumWriteError as exc:
        _expect(errors, exc.needed == 2, f"QuorumWriteError.needed = {exc.needed}")
        _expect(errors, exc.failures == 2, f"QuorumWriteError.failures = {exc.failures}")
    try:
        group.get("k")
        errors.append("read below R did not raise")
    except QuorumReadError:
        pass
    group.drain()
    _expect(errors, group.failed_fast == 2, f"failed_fast = {group.failed_fast}")
    _expect(
        errors,
        registry.counter("kv.quorum.failed_fast").value == 2,
        "kv.quorum.failed_fast metric not emitted",
    )
    # The sloppy ack on the reachable member survives: once the partition
    # heals, anti-entropy propagates it rather than rolling it back.
    members[1].heal()
    members[2].heal()
    group.anti_entropy_round()
    _expect(
        errors,
        group.get("k") == "v2",
        "surviving partial write was not propagated after heal",
    )
    group.drain()
    group.close()
    return errors


def check_deadline_bounds_quorum_wait() -> list[str]:
    """An expired ambient deadline must abort the quorum wait with the
    typed error and the ``kv.deadline.expired`` metric."""
    errors: list[str] = []
    registry = MetricsRegistry()
    obs = Observability(registry=registry)
    clock = _Clock()
    group, members = _group(obs=obs)
    group.put("k", "v")
    group.drain()
    members[1].partition()
    members[2].partition()
    with deadline_scope(0.05, clock=clock):
        clock.advance(0.1)  # budget already spent before the fan-out waits
        for label, op in (
            ("read", lambda: group.get("k")),
            ("write", lambda: group.put("k", "v2")),
        ):
            try:
                op()
                errors.append(f"{label} past the deadline did not raise")
            except DeadlineExceededError:
                pass
            except (QuorumReadError, QuorumWriteError):
                errors.append(f"{label} raised a quorum error, not deadline")
    group.drain()
    _expect(
        errors,
        registry.counter("kv.deadline.expired").value == 2,
        "kv.deadline.expired metric not emitted",
    )
    group.close()
    return errors


def check_anomaly_trips_hedging() -> list[str]:
    """A ``kv.quorum.degraded`` burst must drive the anomaly engine's
    detection, which preemptively enables hedging on a companion
    replicated store -- and revert it once the group heals."""
    errors: list[str] = []
    registry = MetricsRegistry()
    obs = Observability(registry=registry, events=EventLog())
    clock = _Clock()
    group, members = _group(obs=obs)
    companion = ReplicatedStore(
        InMemoryStore(), [InMemoryStore()], name="companion", hedge_delay=None
    )
    engine = AnomalyEngine(obs, clock=clock)
    engine.add_rule(
        ThresholdRule(
            "quorum_degraded",
            "kv.quorum.degraded.delta",
            limit=3.0,
            trigger_after=1,
            clear_after=2,
        ),
        actions=[EnableHedgingAction(companion, hedge_delay=0.0)],
    )

    for index in range(4):  # healthy baseline
        group.put(f"key-{index}", index)
    group.drain()
    clock.advance(1.0)
    engine.poll()
    _expect(errors, companion.hedge_delay is None, "hedging engaged at baseline")

    members[2].partition()
    for index in range(4):  # every write now succeeds degraded
        group.put(f"key-{index}", index + 100)
    group.drain()
    clock.advance(1.0)
    events = engine.poll()
    _expect(
        errors,
        any(event.kind.name == "DETECTED" for event in events),
        "degraded-write burst not detected",
    )
    _expect(
        errors,
        companion.hedge_delay == 0.0,
        "detection did not enable hedging on the companion store",
    )

    members[2].heal()
    group.anti_entropy_round()
    for _ in range(3):  # calm polls past clear_after
        clock.advance(1.0)
        engine.poll()
    _expect(
        errors,
        companion.hedge_delay is None,
        "hedging not reverted after the anomaly cleared",
    )
    group.close()
    companion.close()
    return errors


CHECKS = [
    ("partition-heal convergence", check_partition_heal_convergence),
    ("read survives one member down", check_read_survives_member_down),
    ("write fails fast below quorum", check_write_fails_fast_below_quorum),
    ("deadline bounds quorum wait", check_deadline_bounds_quorum_wait),
    ("anomaly trips hedging", check_anomaly_trips_hedging),
]


def main() -> int:
    failed = False
    for label, check in CHECKS:
        problems = check()
        if problems:
            failed = True
            print(f"FAIL  {label}")
            for problem in problems:
                print(f"      - {problem}")
        else:
            print(f"ok    {label}")
    if failed:
        print("\nquorum contract violated -- see docs/resilience.md")
        return 1
    print("\nquorum contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
