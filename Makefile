PYTHON ?= python
export PYTHONPATH := src

.PHONY: test unit check-docs check-obs check-resilience check-quorum check-lsm check-serving check-anomaly check-cluster all

all: test

# The default gate: unit suite + doc snippets + instrumentation coverage
# + fault-tolerance contract + LSM durability contract + serving-plane
# smoke gate + anomaly-detection contract + cluster serving contract.
test: unit check-docs check-obs check-resilience check-quorum check-lsm check-serving check-anomaly check-cluster

unit:
	$(PYTHON) -m pytest -x -q

# Extract and smoke-execute every ```python block in docs/*.md
# (blocks tagged ```python no-run are syntax-checked only).
check-docs:
	$(PYTHON) scripts/check_docs.py

# Assert every public KeyValueStore op on the instrumented wrappers
# records a metric (see scripts/check_instrumentation.py).
check-obs:
	$(PYTHON) scripts/check_instrumentation.py

# Drive the fault-tolerance plane end to end and assert its metric
# vocabulary and typed errors (see docs/resilience.md).
check-resilience:
	$(PYTHON) scripts/check_resilience.py

# Partition a quorum member through the chaos plane, write through the
# partition, heal, and assert Merkle anti-entropy convergence without a
# full-keyspace scan, fail-fast below W, and reads surviving one member
# down -- all with zero real sleeps (see docs/resilience.md).
check-quorum:
	$(PYTHON) scripts/check_quorum.py

# Crash-simulate the LSM engine (torn WAL tails, mixed states, double
# crashes) and assert no acknowledged write is lost (see docs/lsm.md).
check-lsm:
	$(PYTHON) scripts/check_lsm.py

# Boot the async serving engine, drive a pipelined open-loop burst, and
# assert STATS move plus the 2x concurrent-connection headroom over the
# threaded engine (see docs/serving.md and scripts/check_serving.py).
check-serving:
	$(PYTHON) scripts/check_serving.py

# Inject a latency step, an error burst, and a slow leak through the chaos
# plane on a virtual clock and assert the anomaly engine detects and clears
# all three with zero false positives (see docs/anomaly.md).
check-anomaly:
	$(PYTHON) scripts/check_anomaly.py

# Boot a three-shard cluster over real sockets, write through an L1
# client, hash-route through an L3 client, add and remove shards
# mid-traffic, and assert zero lost keys, bounded key movement, and epoch
# convergence without a single client reconnect (see docs/cluster.md).
check-cluster:
	$(PYTHON) scripts/check_cluster.py
