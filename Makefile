PYTHON ?= python
export PYTHONPATH := src

.PHONY: test unit check-docs check-obs all

all: test

# The default gate: unit suite + doc snippets + instrumentation coverage.
test: unit check-docs check-obs

unit:
	$(PYTHON) -m pytest -x -q

# Extract and smoke-execute every ```python block in docs/*.md
# (blocks tagged ```python no-run are syntax-checked only).
check-docs:
	$(PYTHON) scripts/check_docs.py

# Assert every public KeyValueStore op on the instrumented wrappers
# records a metric (see scripts/check_instrumentation.py).
check-obs:
	$(PYTHON) scripts/check_instrumentation.py
