PYTHON ?= python
export PYTHONPATH := src

.PHONY: test check-docs all

all: test check-docs

test:
	$(PYTHON) -m pytest -x -q

# Extract and smoke-execute every ```python block in docs/*.md
# (blocks tagged ```python no-run are syntax-checked only).
check-docs:
	$(PYTHON) scripts/check_docs.py
